//! The AuLang command-line runner.
//!
//! ```text
//! aulang run <file.au> [--engine interp|vm|vm-traced] [--opt] [--preflight] [--input name=value]... [--seed N] [--no-trace]
//! aulang check <file.au> [--deny warnings] [--format json]
//! aulang dot <file.au>          # dynamic dependence graph (Graphviz)
//! aulang static <file.au>       # static dependence graph (Graphviz)
//! aulang fmt <file.au>          # canonical pretty-printed source
//! aulang features <file.au>     # run + Algorithm 1/2 feature extraction
//! ```
//!
//! Exit codes distinguish *what failed*: `0` success, `1` the program was
//! understood but failed (lint findings denied by `check`, preflight
//! refusals, runtime errors), `2` the invocation or source could not be
//! processed at all (usage errors, unreadable files, lex/parse errors).
//! CI can therefore tell "the program is bad" from "the command is bad".
//!
//! `run` defaults to the **bytecode VM** with tracing compiled out — the
//! fast serving tier. `--engine vm-traced` compiles in selective tracing
//! (only variables the static dependence graph says can reach an
//! extraction pair are recorded); `--engine interp` uses the tree-walking
//! interpreter, which stays the semantic oracle. `dot` and `features`
//! need the dependence graph, so they default to the interpreter and use
//! full tracing when pointed at the VM.
//!
//! `check` runs the `au-lint` static verifier and renders rustc-style
//! diagnostics (or a JSON array with `--format json`); it exits non-zero on
//! any error-severity finding, or on any finding at all under `--deny
//! warnings`. `run --preflight` gates execution behind the same verifier:
//! errors refuse to run, warnings are reported and execution proceeds.
//!
//! The runner executes the program with the full Autonomizer runtime: the
//! `au_*` primitives train/serve models in-process, and (unless
//! `--no-trace`) every assignment is recorded into the dynamic dependence
//! graph used by `dot` and `features`.
//!
//! Diagnostics go through leveled events: `-q`/`--quiet` shows errors only,
//! the default also shows run statistics, and `-v`/`--verbose` adds debug
//! detail. With the `telemetry` feature the events are routed through the
//! `au-telemetry` recorder (so they appear in exported traces as well).

use au_lang::{parse, pretty, static_analysis, Interpreter, RunStats, TraceMode, Value, Vm};
use au_trace::{extract_rl, extract_sl, AnalysisDb, RlParams};
use std::process::ExitCode;

/// Diagnostic severity: 1 = error, 2 = info, 3 = debug.
const ERROR: u8 = 1;
const INFO: u8 = 2;
const DEBUG: u8 = 3;

/// Splits the verbosity flags out of the raw argument list so they can
/// appear anywhere (before or after the subcommand) without disturbing
/// the positional `<command> <file>` parse.
fn take_verbosity(args: &mut Vec<String>) -> u8 {
    let quiet = args.iter().any(|a| a == "-q" || a == "--quiet");
    let verbose = args.iter().any(|a| a == "-v" || a == "--verbose");
    args.retain(|a| a != "-q" && a != "--quiet" && a != "-v" && a != "--verbose");
    if quiet {
        ERROR
    } else if verbose {
        DEBUG
    } else {
        INFO
    }
}

/// Emits one leveled diagnostic line. Routed through the au-telemetry
/// recorder when the feature is on (echo controlled by its verbosity
/// threshold, set once in `main`); otherwise a plain gated `eprintln!`.
fn diag(level: u8, verbosity: u8, message: &str) {
    #[cfg(feature = "telemetry")]
    {
        let _ = verbosity;
        let lvl = match level {
            ERROR => au_telemetry::Level::Error,
            INFO => au_telemetry::Level::Info,
            _ => au_telemetry::Level::Debug,
        };
        au_telemetry::event(lvl, "aulang", message);
    }
    #[cfg(not(feature = "telemetry"))]
    if level <= verbosity {
        let tag = match level {
            ERROR => "error",
            INFO => "info",
            _ => "debug",
        };
        eprintln!("[{tag}] aulang: {message}");
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let verbosity = take_verbosity(&mut args);
    #[cfg(feature = "telemetry")]
    au_telemetry::set_verbosity(match verbosity {
        ERROR => au_telemetry::Level::Error,
        INFO => au_telemetry::Level::Info,
        _ => au_telemetry::Level::Debug,
    });
    match run(&args, verbosity) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Failure(message)) => {
            diag(ERROR, verbosity, &message);
            ExitCode::FAILURE
        }
        Err(CliError::Usage(message)) => {
            diag(ERROR, verbosity, &message);
            ExitCode::from(2)
        }
    }
}

/// What went wrong, split by exit code.
enum CliError {
    /// The program was understood but failed: denied lint findings,
    /// preflight refusals, runtime errors. Exit 1.
    Failure(String),
    /// The invocation or source could not be processed: usage errors,
    /// unreadable files, lex/parse errors. Exit 2.
    Usage(String),
}

fn usage() -> String {
    "usage: aulang <run|check|dot|static|fmt|features> <file.au> [--engine interp|vm|vm-traced] [--opt] [--preflight] [--deny warnings] [--format json] [--input name=value]... [--seed N] [--no-trace] [-q|--quiet] [-v|--verbose]"
        .to_owned()
}

/// The two execution tiers behind one surface: the tree-walking
/// interpreter (semantic oracle) and the bytecode VM (serving tier).
enum Exec {
    Interp(Box<Interpreter>),
    Vm(Box<Vm>),
}

impl Exec {
    fn set_input(&mut self, name: &str, value: Value) {
        match self {
            Exec::Interp(i) => i.set_input(name, value),
            Exec::Vm(v) => v.set_input(name, value),
        }
    }

    fn set_seed(&mut self, seed: u64) {
        match self {
            Exec::Interp(i) => i.set_seed(seed),
            Exec::Vm(v) => v.set_seed(seed),
        }
    }

    fn run(&mut self) -> Result<Value, String> {
        match self {
            Exec::Interp(i) => i.run().map_err(|e| e.to_string()),
            Exec::Vm(v) => v.run().map_err(|e| e.to_string()),
        }
    }

    fn output(&self) -> &[String] {
        match self {
            Exec::Interp(i) => i.output(),
            Exec::Vm(v) => v.output(),
        }
    }

    fn stats(&self) -> RunStats {
        match self {
            Exec::Interp(i) => i.stats(),
            Exec::Vm(v) => v.stats(),
        }
    }

    fn analysis(&self) -> &AnalysisDb {
        match self {
            Exec::Interp(i) => i.analysis(),
            Exec::Vm(v) => v.analysis(),
        }
    }
}

fn run(args: &[String], verbosity: u8) -> Result<(), CliError> {
    let (command, file) = match (args.first(), args.get(1)) {
        (Some(c), Some(f)) => (c.as_str(), f.as_str()),
        _ => return Err(CliError::Usage(usage())),
    };
    let source = std::fs::read_to_string(file)
        .map_err(|e| CliError::Usage(format!("cannot read {file}: {e}")))?;
    let bad_source = |e: au_lang::LangError| CliError::Usage(e.to_string());

    match command {
        "fmt" => {
            let program = parse(&source).map_err(bad_source)?;
            print!("{}", pretty::print_program(&program));
            Ok(())
        }
        "static" => {
            let program = parse(&source).map_err(bad_source)?;
            let db = static_analysis::analyze(&program);
            print!("{}", db.to_dot());
            Ok(())
        }
        "check" => {
            let deny_warnings = args
                .windows(2)
                .any(|w| w[0] == "--deny" && w[1] == "warnings");
            let json = args
                .windows(2)
                .any(|w| w[0] == "--format" && w[1] == "json");
            let diags = au_lint::lint_source(&source).map_err(bad_source)?;
            if json {
                println!("{}", au_lint::diagnostics_to_json(&diags));
            } else if diags.is_empty() {
                diag(INFO, verbosity, &format!("{file}: no diagnostics"));
            } else {
                print!("{}", au_lint::render_all(&diags, file));
            }
            let errors = diags
                .iter()
                .filter(|d| d.severity == au_lint::Severity::Error)
                .count();
            if errors > 0 {
                Err(CliError::Failure(format!(
                    "{file}: {errors} protocol error(s)"
                )))
            } else if deny_warnings && !diags.is_empty() {
                Err(CliError::Failure(format!(
                    "{file}: {} warning(s) denied by --deny warnings",
                    diags.len()
                )))
            } else {
                Ok(())
            }
        }
        "run" | "dot" | "features" => {
            if args.iter().any(|a| a == "--preflight") {
                let diags = au_lint::lint_source(&source).map_err(bad_source)?;
                if !diags.is_empty() {
                    eprint!("{}", au_lint::render_all(&diags, file));
                }
                if diags.iter().any(|d| d.severity == au_lint::Severity::Error) {
                    return Err(CliError::Failure(format!(
                        "{file}: refusing to run (preflight errors)"
                    )));
                }
            }
            let engine = args
                .windows(2)
                .find(|w| w[0] == "--engine")
                .map(|w| w[1].as_str())
                // `run` serves from the VM by default; `dot`/`features`
                // need the dependence graph, so they default to the
                // (always fully traced) interpreter.
                .unwrap_or(if command == "run" { "vm" } else { "interp" });
            let no_trace = args.iter().any(|a| a == "--no-trace");
            let optimize = args.iter().any(|a| a == "--opt");
            let mut exec = match engine {
                "interp" => {
                    if optimize {
                        return Err(CliError::Usage(
                            "--opt applies to the bytecode VM (use --engine vm or vm-traced)"
                                .to_owned(),
                        ));
                    }
                    let mut interp = Interpreter::compile(&source).map_err(bad_source)?;
                    interp.set_tracing(!no_trace);
                    Exec::Interp(Box::new(interp))
                }
                "vm" | "vm-traced" => {
                    // Tracing is a compile-time decision in the VM: `dot`
                    // wants the full graph, `features` and `vm-traced`
                    // runs use the statically pruned selective tier, and
                    // a plain `run` compiles tracing out entirely.
                    let mode = if no_trace {
                        TraceMode::Off
                    } else if command == "dot" {
                        TraceMode::Full
                    } else if command == "features" || engine == "vm-traced" {
                        TraceMode::Selective
                    } else {
                        TraceMode::Off
                    };
                    let vm = if optimize {
                        Vm::compile_opt(&source, mode).map_err(bad_source)?
                    } else {
                        Vm::compile(&source, mode).map_err(bad_source)?
                    };
                    diag(
                        DEBUG,
                        verbosity,
                        &format!(
                            "bytecode: {} ops, {} trace ops, requested {:?}, effective {:?}",
                            vm.compiled().op_count(),
                            vm.compiled().trace_op_count(),
                            vm.trace_mode(),
                            vm.effective_trace_mode()
                        ),
                    );
                    if optimize {
                        let s = vm.compiled().opt_stats();
                        diag(
                            DEBUG,
                            verbosity,
                            &format!(
                                "optimizer: {} folded, {} branches pruned, {} dead stores, {} fused, {} trace ops elided",
                                s.folded, s.pruned_branches, s.dead_stores, s.fused, s.trace_elided
                            ),
                        );
                    }
                    Exec::Vm(Box::new(vm))
                }
                other => {
                    return Err(CliError::Usage(format!(
                        "unknown engine `{other}` (expected interp, vm, or vm-traced)"
                    )))
                }
            };
            for window in args[2..].windows(2) {
                match (window[0].as_str(), window[1].as_str()) {
                    ("--input", pair) => {
                        let (name, value) = pair.split_once('=').ok_or_else(|| {
                            CliError::Usage(format!("--input needs name=value, got `{pair}`"))
                        })?;
                        let value: f64 = value.parse().map_err(|e| {
                            CliError::Usage(format!("input {name} is not numeric: {e}"))
                        })?;
                        exec.set_input(name, Value::Num(value));
                    }
                    ("--seed", n) => {
                        let seed: u64 = n
                            .parse()
                            .map_err(|e| CliError::Usage(format!("bad --seed value: {e}")))?;
                        exec.set_seed(seed);
                    }
                    _ => {}
                }
            }
            diag(DEBUG, verbosity, &format!("running {file} ({command})"));
            let result = exec.run().map_err(CliError::Failure)?;
            for line in exec.output() {
                println!("{line}");
            }
            match command {
                "run" => {
                    println!("=> {result}");
                    let stats = exec.stats();
                    diag(
                        INFO,
                        verbosity,
                        &format!(
                            "{} statements, {} traced assignments, call depth {}",
                            stats.steps, stats.assignments, stats.max_depth
                        ),
                    );
                }
                "dot" => print!("{}", exec.analysis().to_dot()),
                "features" => {
                    let db = exec.analysis();
                    if db.targets().is_empty() {
                        diag(
                            INFO,
                            verbosity,
                            "no target variables (assign from au_write_back or call mark_target)",
                        );
                    }
                    let sl = extract_sl(db);
                    for (&target, ranked) in &sl {
                        println!(
                            "Algorithm 1: {} <- {:?}",
                            db.name(target),
                            ranked
                                .iter()
                                .map(|f| format!("{}@{}", db.name(f.var), f.distance))
                                .collect::<Vec<_>>()
                        );
                    }
                    let rl = extract_rl(db, RlParams::default());
                    for (&target, selected) in &rl {
                        println!(
                            "Algorithm 2: {} <- {:?}",
                            db.name(target),
                            selected.iter().map(|&v| db.name(v)).collect::<Vec<_>>()
                        );
                    }
                }
                _ => unreachable!("matched above"),
            }
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "unknown command `{other}`\n{}",
            usage()
        ))),
    }
}
