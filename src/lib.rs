//! **Autonomizer** — a Rust reproduction of *Programming Support for
//! Autonomizing Software* (Lee, Liu, Liu, Ma, Zhang; PLDI 2019).
//!
//! Autonomizer retrofits AI control into traditional programs: a handful of
//! `au_*` primitive calls designate *target variables* (values a model
//! should predict — tunable parameters of data-processing programs, or
//! actions of interactive programs) and the runtime does the rest —
//! collecting feature values, training supervised or Q-learning models,
//! writing predictions back into program variables, and checkpointing
//! program state across reinforcement-learning episodes.
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`core`] | `au-core` | the primitives and runtime (Fig. 8 semantics) |
//! | [`nn`] | `au-nn` | the from-scratch neural-network backend |
//! | [`trace`] | `au-trace` | dynamic dependence graphs + Algorithms 1–2 |
//! | [`lang`] | `au-lang` | AuLang: an instrumented language with the primitives |
//! | [`lint`] | `au-lint` | span-aware static verifier for the `au_*` protocol |
//! | [`image`] | `au-image` | image substrate (scenes, SSIM) |
//! | [`vision`] | `au-vision` | Canny & Rothwell SL benchmarks |
//! | [`phylo`] | `au-phylo` | Phylip-style SL benchmark |
//! | [`speech`] | `au-speech` | Sphinx-style SL benchmark |
//! | [`games`] | `au-games` | the five RL benchmarks + harness |
//!
//! # Quickstart
//!
//! ```
//! use autonomizer::core::{Engine, Mode, ModelConfig};
//!
//! // Autonomize a tiny parameterized computation: learn the ideal
//! // `threshold` for each input from the input's summary statistics.
//! let mut engine = Engine::new(Mode::Train);
//! engine.au_config("T", ModelConfig::dnn(&[16]))?;
//! for i in 0..50 {
//!     let input_mean = i as f64 / 50.0;
//!     let ideal_threshold = 0.5 + input_mean / 2.0;
//!     engine.au_extract("MEAN", &[input_mean]);
//!     engine.au_extract("TH", &[ideal_threshold]); // recorded ideal value
//!     engine.au_nn("T", "MEAN", &["TH"])?;         // trains toward it
//! }
//! // Deployment: predict the threshold for an unseen input.
//! engine.set_mode(Mode::Test);
//! engine.au_extract("MEAN", &[0.4]);
//! engine.au_nn("T", "MEAN", &["TH"])?;
//! let threshold = engine.au_write_back_scalar("TH")?;
//! assert!(threshold.is_finite());
//! # Ok::<(), autonomizer::core::AuError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use au_core as core;
pub use au_games as games;
pub use au_image as image;
pub use au_lang as lang;
pub use au_lint as lint;
pub use au_nn as nn;
pub use au_phylo as phylo;
pub use au_speech as speech;
pub use au_trace as trace;
pub use au_vision as vision;

#[cfg(feature = "prof")]
pub use au_prof as prof;
#[cfg(feature = "scope")]
pub use au_scope as scope;
#[cfg(feature = "telemetry")]
pub use au_telemetry as telemetry;

/// Everything a typical autonomization needs, in one import.
pub mod prelude {
    pub use au_core::{AuError, Engine, EngineHandle, Mode, ModelConfig};
    pub use au_games::harness::{evaluate, play_episode, run_oracle, train, FeatureSource};
    pub use au_games::{Game, StepResult};
    pub use au_trace::{extract_rl, extract_sl, select_band, AnalysisDb, DistanceBand, RlParams};
}
