//! The TR → TS (train → deploy) lifecycle across *separate processes* —
//! the paper's two executables: "In practice, we produce two versions for
//! the modes."
//!
//! This example simulates both: a training process that collects traces
//! into the database store, trains, and persists the model; and a fresh
//! deployment process whose `au_config` call (rule CONFIG-TEST) loads the
//! trained model back and serves predictions with no learning. With the
//! `monitor` feature (on by default) a third process deploys behind the
//! graceful-degradation fallback: when its sensors drift off the training
//! distribution, `au_nn` refuses with `AuError::ModelDegraded` and the
//! caller routes back to the original (pre-autonomization) code path.
//!
//! Run with: `cargo run --release --example deployment`

use autonomizer::core::{Engine, Mode, ModelConfig};
use autonomizer::phylo::{self, DistParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("autonomizer_deployment_example");
    std::fs::create_dir_all(&dir)?;

    // ---------------------------------------------------------------
    // Process 1: the training executable (TR mode).
    // ---------------------------------------------------------------
    {
        println!("[TR] training process starting");
        let mut engine = Engine::new(Mode::Train);
        // Monitoring during training persists the per-feature input
        // distribution and baseline MAE into the model's sidecar, powering
        // drift detection in the deployment processes below.
        #[cfg(feature = "monitor")]
        engine.set_monitor_config(autonomizer::core::monitor::MonitorConfig::default());
        engine.set_model_dir(&dir);
        engine.au_config(
            "PhylipNN",
            ModelConfig::dnn(&[32, 16]).with_learning_rate(3e-3),
        )?;

        // Piggyback on normal operation: each processed input contributes a
        // trace record (features + the ideal decision).
        for seed in 0..60u64 {
            let data = phylo::generate_dataset(8, 150, seed);
            engine.au_extract("SUMMARY", &phylo::distance_summary(&data.sequences));
            let (ideal, _) = phylo::ideal_params(&data);
            engine.au_extract("PARAMS", &[ideal.alpha.ln(), ideal.cutoff, ideal.pseudo]);
            engine.au_nn("PhylipNN", "SUMMARY", &["PARAMS"])?;
        }
        // The collected traces can outlive the process too.
        engine.save_db(dir.join("traces.json"))?;
        // Offline refinement over the persisted dataset, as the paper does
        // for SL ("model training is conducted offline after execution").
        let xs: Vec<Vec<f64>> = (0..60u64)
            .map(|seed| {
                let data = phylo::generate_dataset(8, 150, seed);
                phylo::distance_summary(&data.sequences)
            })
            .collect();
        let ys: Vec<Vec<f64>> = (0..60u64)
            .map(|seed| {
                let data = phylo::generate_dataset(8, 150, seed);
                let (ideal, _) = phylo::ideal_params(&data);
                vec![ideal.alpha.ln(), ideal.cutoff, ideal.pseudo]
            })
            .collect();
        let final_loss = engine.train_supervised("PhylipNN", &xs, &ys, 80)?;
        engine.save_model("PhylipNN")?;
        println!("[TR] trained (final epoch loss {final_loss:.4}); model + traces persisted");
    }

    // ---------------------------------------------------------------
    // Process 2: the deployment executable (TS mode) — a fresh engine.
    // ---------------------------------------------------------------
    {
        println!("[TS] deployment process starting");
        let mut engine = Engine::new(Mode::Test);
        engine.set_model_dir(&dir);
        // Rule CONFIG-TEST: loadModel(mdName).
        engine.au_config(
            "PhylipNN",
            ModelConfig::dnn(&[32, 16]).with_learning_rate(3e-3),
        )?;

        let mut improved = 0usize;
        let trials = 10u64;
        for seed in 500..500 + trials {
            let data = phylo::generate_dataset(8, 150, seed);
            engine.au_extract("SUMMARY", &phylo::distance_summary(&data.sequences));
            engine.au_nn("PhylipNN", "SUMMARY", &["PARAMS"])?;
            let mut params = [0.0; 3];
            engine.au_write_back("PARAMS", &mut params)?;
            let predicted = DistParams {
                alpha: params[0].exp().clamp(0.1, 100.0),
                cutoff: params[1].clamp(0.5, 10.0),
                pseudo: params[2].clamp(0.0, 5.0),
            };
            let auto_tree = phylo::infer_tree(&data.sequences, predicted);
            let default_tree = phylo::infer_tree(&data.sequences, DistParams::default());
            let auto_rf = phylo::robinson_foulds(&auto_tree, &data.true_tree);
            let default_rf = phylo::robinson_foulds(&default_tree, &data.true_tree);
            if auto_rf <= default_rf {
                improved += 1;
            }
        }
        println!(
            "[TS] predicted parameters matched or beat the defaults on {improved}/{trials} unseen inputs"
        );
        assert_eq!(
            engine.model_stats("PhylipNN").map(|s| s.train_steps),
            Some(0),
            "deployment never trains"
        );
    }

    // ---------------------------------------------------------------
    // Process 3: deployment behind the monitoring fallback (TS mode).
    // ---------------------------------------------------------------
    #[cfg(feature = "monitor")]
    {
        use autonomizer::core::monitor::MonitorConfig;
        use autonomizer::core::AuError;

        println!("[TS+monitor] fallback deployment starting");
        let mut engine = Engine::new(Mode::Test);
        engine.set_monitor_config(
            MonitorConfig::default()
                .with_fallback(true)
                .with_min_samples(4),
        );
        engine.set_model_dir(&dir);
        engine.au_config(
            "PhylipNN",
            ModelConfig::dnn(&[32, 16]).with_learning_rate(3e-3),
        )?;

        let mut model_served = 0usize;
        let mut original_path = 0usize;
        for seed in 900..912u64 {
            let data = phylo::generate_dataset(8, 150, seed);
            // A miscalibrated preprocessor: every summary statistic is
            // scaled 25x off the distribution the model trained on.
            let drifted: Vec<f64> = phylo::distance_summary(&data.sequences)
                .iter()
                .map(|v| v * 25.0)
                .collect();
            engine.au_extract("SUMMARY", &drifted);
            match engine.au_nn("PhylipNN", "SUMMARY", &["PARAMS"]) {
                Ok(_) => {
                    let mut params = [0.0; 3];
                    engine.au_write_back("PARAMS", &mut params)?;
                    model_served += 1;
                }
                Err(AuError::ModelDegraded(_)) => {
                    // The paper's hybrid mode: the original heuristic code
                    // path keeps the program functional.
                    let _tree = phylo::infer_tree(&data.sequences, DistParams::default());
                    original_path += 1;
                }
                Err(other) => return Err(other.into()),
            }
        }
        println!(
            "[TS+monitor] model served {model_served}, original code path served {original_path}"
        );
        print!("{}", engine.monitor_report());
        assert!(original_path > 0, "sustained drift must trip the fallback");
    }

    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
