//! Live observability-plane demo: a deployed engine under mixed load with
//! the au-scope server attached.
//!
//! Trains a Flappybird agent with monitoring on, deploys it, starts the
//! observability plane, and then drives traffic for `--seconds`: serving
//! threads hammer `predict`, episodes play with healthy sensors, and
//! halfway through the sensors "fail" (every reading offset far outside
//! the training distribution) so the monitor raises drift alerts you can
//! watch arrive on the dashboard.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --features scope --example live_dashboard -- --port 7878 --seconds 30
//! ```
//!
//! then open <http://127.0.0.1:7878/> — or scrape:
//!
//! ```text
//! curl http://127.0.0.1:7878/metrics
//! curl http://127.0.0.1:7878/health
//! curl -N http://127.0.0.1:7878/events
//! ```

#[cfg(feature = "scope")]
fn main() -> Result<(), Box<dyn std::error::Error>> {
    use autonomizer::core::monitor::MonitorConfig;
    use autonomizer::core::{Engine, Mode, ModelConfig};
    use autonomizer::games::harness::{
        drift_extractor, play_episode, play_episode_custom, FeatureSource,
    };
    use autonomizer::games::Flappybird;
    use autonomizer::nn::rl::DqnConfig;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::{Duration, Instant};

    let mut port: u16 = 7878;
    let mut seconds: u64 = 30;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--port" => port = args.next().ok_or("--port needs a value")?.parse()?,
            "--seconds" => seconds = args.next().ok_or("--seconds needs a value")?.parse()?,
            other => return Err(format!("unknown flag {other}").into()),
        }
    }

    autonomizer::telemetry::enable();
    autonomizer::nn::set_init_seed(46);

    let mut engine = Engine::new(Mode::Train);
    engine.set_monitor_config(MonitorConfig::default().with_drift_threshold(5.0));
    engine.au_config(
        "Flappy",
        ModelConfig::q_dnn(&[32]).with_dqn(DqnConfig {
            hidden: vec![32],
            batch_size: 16,
            replay_capacity: 2000,
            seed: 8,
            ..DqnConfig::default()
        }),
    )?;

    println!("[TR] training 15 episodes with monitoring on");
    let mut game = Flappybird::new(3);
    for _ in 0..15 {
        play_episode(
            &mut engine,
            "Flappy",
            &mut game,
            200,
            FeatureSource::Internal,
            None,
        )?;
    }
    engine.set_mode(Mode::Test);

    let handle = engine.handle();
    let server = autonomizer::scope::ScopeServer::builder()
        .engine(handle.clone())
        .bind(&format!("127.0.0.1:{port}"))
        .start()?;
    println!("observability plane on http://{}/", server.local_addr());
    println!("  metrics:  http://{}/metrics", server.local_addr());
    println!("  events:   http://{}/events", server.local_addr());

    let stop = AtomicBool::new(false);
    let deadline = Instant::now() + Duration::from_secs(seconds);
    let drift_at = Instant::now() + Duration::from_secs(seconds / 2);

    std::thread::scope(|scope| -> Result<(), Box<dyn std::error::Error>> {
        // Serving threads: steady predict traffic for the latency panels
        // (inputs shaped like Flappybird's six features).
        for t in 0..4usize {
            let h = handle.clone();
            let stop = &stop;
            scope.spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let x: Vec<f64> = (0..6)
                        .map(|j| ((i + j + t as u64) % 97) as f64 / 97.0)
                        .collect();
                    let _ = h.predict("Flappy", &x);
                    i += 1;
                    std::thread::sleep(Duration::from_millis(2));
                }
            });
        }

        // Episode loop on the main thread: healthy sensors first, drifted
        // after the halfway mark — the monitor's alerts stream to the
        // dashboard as they fire.
        let mut drifted_yet = false;
        while Instant::now() < deadline {
            let offset = if Instant::now() >= drift_at {
                50.0
            } else {
                0.0
            };
            if offset > 0.0 && !drifted_yet {
                drifted_yet = true;
                println!("[TS] sensors fail: readings now offset by +{offset}");
            }
            let mut sensors = drift_extractor(1.0, offset);
            play_episode_custom(&mut engine, "Flappy", &mut game, 100, &mut sensors, None)?;
        }
        stop.store(true, Ordering::Relaxed);
        Ok(())
    })?;

    println!("{}", engine.monitor_report());
    println!("final scrape: http://{}/metrics", server.local_addr());
    server.shutdown();
    Ok(())
}

#[cfg(not(feature = "scope"))]
fn main() {
    eprintln!("live_dashboard requires the `scope` feature:");
    eprintln!("  cargo run --release --features scope --example live_dashboard");
}
