//! Quickstart: autonomize two tiny parameterized programs end to end.
//!
//! Part 1 autonomizes the Phylip-style phylogeny program: the model learns
//! to predict the ideal distance-correction parameters per input alignment.
//! Part 2 does the same for the Sphinx-style recognizer. Both follow the
//! paper's workflow: annotate targets, let Algorithm 1 pick features, train
//! through the primitives, then deploy.
//!
//! Run with: `cargo run --release --example quickstart`

use autonomizer::core::{Engine, Mode, ModelConfig};
use autonomizer::phylo::{self, DistParams};
use autonomizer::speech::{self, DecodeParams, Recognizer, Vocabulary};
use autonomizer::trace::{extract_sl, select_band, AnalysisDb, DistanceBand};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    phylip_part()?;
    sphinx_part()?;
    Ok(())
}

fn phylip_part() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Autonomizing Phylip (distance-based phylogeny) ==");

    // 1. Feature extraction: record the program's dynamic dependences and
    //    let Algorithm 1 recommend feature variables for the targets.
    let mut db = AnalysisDb::new();
    phylo::record_dependences(&mut db);
    let features = extract_sl(&db);
    let alpha = db.id("alpha").expect("alpha is a target");
    let min_band = select_band(&features[&alpha], DistanceBand::Min);
    println!(
        "Algorithm 1 recommends for `alpha`: {:?}",
        min_band.iter().map(|&v| db.name(v)).collect::<Vec<_>>()
    );

    // 2. Training: for each input, extract the recommended features
    //    (the distance summary) and the ideal parameters, then au_NN.
    let mut engine = Engine::new(Mode::Train);
    engine.au_config(
        "PhylipNN",
        ModelConfig::dnn(&[32, 16]).with_learning_rate(3e-3),
    )?;
    for seed in 0..40u64 {
        let data = phylo::generate_dataset(8, 150, seed);
        engine.au_extract("SUMMARY", &phylo::distance_summary(&data.sequences));
        let (ideal, _) = phylo::ideal_params(&data);
        engine.au_extract("ALPHA", &[ideal.alpha]);
        engine.au_extract("CUTOFF", &[ideal.cutoff]);
        engine.au_extract("PSEUDO", &[ideal.pseudo]);
        engine.au_nn("PhylipNN", "SUMMARY", &["ALPHA", "CUTOFF", "PSEUDO"])?;
    }
    // A few more passes over fresh data to converge.
    for round in 0..4 {
        for seed in 0..40u64 {
            let data = phylo::generate_dataset(8, 150, seed + round * 1000);
            engine.au_extract("SUMMARY", &phylo::distance_summary(&data.sequences));
            let (ideal, _) = phylo::ideal_params(&data);
            engine.au_extract("ALPHA", &[ideal.alpha]);
            engine.au_extract("CUTOFF", &[ideal.cutoff]);
            engine.au_extract("PSEUDO", &[ideal.pseudo]);
            engine.au_nn("PhylipNN", "SUMMARY", &["ALPHA", "CUTOFF", "PSEUDO"])?;
        }
    }

    // 3. Deployment: predict parameters for unseen inputs; compare the
    //    resulting tree quality (Robinson-Foulds; lower is better) against
    //    the shipped defaults.
    engine.set_mode(Mode::Test);
    let mut default_total = 0.0;
    let mut predicted_total = 0.0;
    for seed in 900..910u64 {
        let data = phylo::generate_dataset(8, 150, seed);
        engine.au_extract("SUMMARY", &phylo::distance_summary(&data.sequences));
        engine.au_nn("PhylipNN", "SUMMARY", &["ALPHA", "CUTOFF", "PSEUDO"])?;
        let alpha = engine.au_write_back_scalar("ALPHA")?.clamp(0.1, 100.0);
        let cutoff = engine.au_write_back_scalar("CUTOFF")?.clamp(0.5, 10.0);
        let pseudo = engine.au_write_back_scalar("PSEUDO")?.clamp(0.0, 5.0);
        let predicted = phylo::infer_tree(
            &data.sequences,
            DistParams {
                alpha,
                cutoff,
                pseudo,
            },
        );
        let default = phylo::infer_tree(&data.sequences, DistParams::default());
        default_total += phylo::robinson_foulds(&default, &data.true_tree);
        predicted_total += phylo::robinson_foulds(&predicted, &data.true_tree);
    }
    println!("mean RF distance over 10 held-out inputs (lower is better):");
    println!("  defaults:  {:.2}", default_total / 10.0);
    println!("  predicted: {:.2}", predicted_total / 10.0);
    println!();
    Ok(())
}

fn sphinx_part() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Autonomizing Sphinx (keyword recognition) ==");
    let recognizer = Recognizer::new(Vocabulary::new(4, 20));

    let mut engine = Engine::new(Mode::Train);
    engine.au_config(
        "SphinxNN",
        ModelConfig::dnn(&[32, 16]).with_learning_rate(3e-3),
    )?;
    for round in 0..5u64 {
        for i in 0..40u64 {
            let utterance =
                speech::synthesize(recognizer.vocabulary(), (i % 4) as usize, i * 31 + round);
            let (ideal, ok) = speech::ideal_params(&recognizer, &utterance);
            if !ok {
                continue; // unrecognizable even with ideal params
            }
            engine.au_extract("SUMMARY", &utterance.summary());
            engine.au_extract("BEAM", &[ideal.beam]);
            engine.au_extract("FLOOR", &[ideal.floor]);
            engine.au_nn("SphinxNN", "SUMMARY", &["BEAM", "FLOOR"])?;
        }
    }

    engine.set_mode(Mode::Test);
    let mut default_correct = 0;
    let mut predicted_correct = 0;
    let trials = 20u64;
    for i in 0..trials {
        let utterance =
            speech::synthesize(recognizer.vocabulary(), (i % 4) as usize, 5000 + i * 17);
        engine.au_extract("SUMMARY", &utterance.summary());
        engine.au_nn("SphinxNN", "SUMMARY", &["BEAM", "FLOOR"])?;
        let beam = engine.au_write_back_scalar("BEAM")?.clamp(1.0, 40.0);
        let floor = engine.au_write_back_scalar("FLOOR")?.clamp(0.0, 1.5);
        let (word, _, _) = recognizer.recognize(&utterance, DecodeParams { beam, floor });
        if word == utterance.word {
            predicted_correct += 1;
        }
        let (word, _, _) = recognizer.recognize(&utterance, DecodeParams::default());
        if word == utterance.word {
            default_correct += 1;
        }
    }
    println!("recognition accuracy over {trials} held-out utterances:");
    println!(
        "  defaults:  {:.0}%",
        default_correct as f64 / trials as f64 * 100.0
    );
    println!(
        "  predicted: {:.0}%",
        predicted_correct as f64 / trials as f64 * 100.0
    );
    Ok(())
}
