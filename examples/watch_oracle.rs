//! Prints ASCII snapshots of the scripted oracle ("human player") working
//! through each of the five RL benchmark games — a quick visual check that
//! the simulators behave sensibly.
//!
//! Run with: `cargo run --release --example watch_oracle`

use autonomizer::games::{Arkanoid, Breakout, Flappybird, Game, Mario, Torcs};

fn watch(game: &mut dyn Game, snapshots: usize, stride: usize) {
    println!("=== {} ===", game.name());
    game.reset();
    let mut frame = 0usize;
    for shot in 0..snapshots {
        for _ in 0..stride {
            let action = game.oracle_action();
            frame += 1;
            if game.step(action).terminal {
                println!(
                    "[episode ended at frame {frame}: progress {:.0}%{}]",
                    game.progress() * 100.0,
                    if game.succeeded() { ", success" } else { "" }
                );
                return;
            }
        }
        println!(
            "frame {frame} (snapshot {}/{snapshots}), progress {:.0}%:",
            shot + 1,
            game.progress() * 100.0
        );
        print!("{}", game.render_ascii(48, 12));
    }
    println!(
        "[stopped watching at frame {frame}: progress {:.0}%]",
        game.progress() * 100.0
    );
}

fn main() {
    watch(&mut Flappybird::new(7), 3, 60);
    watch(&mut Mario::new(1), 3, 80);
    watch(&mut Arkanoid::new(2), 3, 80);
    watch(&mut Torcs::new(4), 3, 100);
    watch(&mut Breakout::new(3), 3, 80);
}
