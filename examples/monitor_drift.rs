//! Sensor drift in a deployed RL agent, caught by the online monitor.
//!
//! A Flappybird agent trains through the Autonomizer primitives with
//! monitoring on, so the engine learns the distribution of every extracted
//! feature alongside the policy. At deployment the same agent first plays
//! with healthy sensors (the monitor stays quiet), then through
//! `drift_extractor` — the harness's drifted-sensor simulation, which
//! shifts every feature the model sees while the game itself is unchanged.
//! The monitor flags the out-of-range inputs immediately and raises a
//! critical drift alert once the sliding window departs the training
//! distribution.
//!
//! Run with: `cargo run --release --example monitor_drift`

#[cfg(feature = "monitor")]
fn main() -> Result<(), Box<dyn std::error::Error>> {
    use autonomizer::core::monitor::MonitorConfig;
    use autonomizer::core::{Engine, Mode, ModelConfig};
    use autonomizer::games::harness::{
        drift_extractor, play_episode, play_episode_custom, FeatureSource,
    };
    use autonomizer::games::Flappybird;
    use autonomizer::nn::rl::DqnConfig;

    autonomizer::nn::set_init_seed(46);
    let mut engine = Engine::new(Mode::Train);
    // On-policy play naturally wanders a little off the exploratory
    // training distribution; the raised threshold keeps the *drift* alert
    // for real sensor faults, which shift inputs by many training ranges.
    engine.set_monitor_config(MonitorConfig::default().with_drift_threshold(5.0));
    engine.au_config(
        "Flappy",
        ModelConfig::q_dnn(&[32]).with_dqn(DqnConfig {
            hidden: vec![32],
            batch_size: 16,
            replay_capacity: 2000,
            seed: 8,
            ..DqnConfig::default()
        }),
    )?;

    println!("[TR] training 20 episodes with monitoring on");
    let mut game = Flappybird::new(3);
    for _ in 0..20 {
        play_episode(
            &mut engine,
            "Flappy",
            &mut game,
            200,
            FeatureSource::Internal,
            None,
        )?;
    }

    engine.set_mode(Mode::Test);
    println!("[TS] deploying with healthy sensors");
    let mut healthy = drift_extractor(1.0, 0.0);
    let out = play_episode_custom(&mut engine, "Flappy", &mut game, 150, &mut healthy, None)?;
    println!(
        "[TS] survived {} frames; {}",
        out.steps,
        engine.monitor_report()
    );

    println!("[TS] sensors fail: every reading now offset by +50");
    let mut drifted = drift_extractor(1.0, 50.0);
    let out = play_episode_custom(&mut engine, "Flappy", &mut game, 150, &mut drifted, None)?;
    println!(
        "[TS] survived {} frames; {}",
        out.steps,
        engine.monitor_report()
    );

    let monitor = engine
        .monitor("Flappy")
        .ok_or("monitor should be active after TS play")?;
    println!("alerts raised:");
    for alert in monitor.alerts() {
        println!("  {alert}");
    }
    assert!(
        !monitor.alerts().is_empty(),
        "drifted sensors must raise alerts"
    );
    Ok(())
}

#[cfg(not(feature = "monitor"))]
fn main() {
    eprintln!("monitor_drift requires the `monitor` feature (on by default):");
    eprintln!("  cargo run --release --example monitor_drift");
}
