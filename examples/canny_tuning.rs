//! Autonomizing Canny edge detection — the paper's Fig. 11 workflow.
//!
//! Two models are installed exactly as in the paper: `SigmaNN` predicts the
//! Gaussian `sigma` from the raw image, and `MinNN` predicts the hysteresis
//! thresholds `lo`/`hi` from the gradient-magnitude histogram (the feature
//! Algorithm 1 ranks first). Deployment then runs the real two-phase
//! pipeline: predict sigma → smooth → histogram → predict lo/hi →
//! hysteresis.
//!
//! Run with: `cargo run --release --example canny_tuning`

use autonomizer::core::{Engine, Mode, ModelConfig};
use autonomizer::image::scene::SceneGenerator;
use autonomizer::trace::{extract_sl, AnalysisDb};
use autonomizer::vision::canny::{self, CannyParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Algorithm 1 justifies the feature choice (Fig. 9).
    let mut db = AnalysisDb::new();
    canny::record_dependences(&mut db);
    let features = extract_sl(&db);
    let lo = db.id("lo").expect("lo is a target");
    println!(
        "Algorithm 1 ranking for `lo`: {:?}",
        features[&lo]
            .iter()
            .map(|f| (db.name(f.var), f.distance))
            .collect::<Vec<_>>()
    );

    let mut engine = Engine::new(Mode::Train);
    engine.au_config(
        "SigmaNN",
        ModelConfig::dnn(&[64, 32]).with_learning_rate(2e-3),
    )?;
    engine.au_config(
        "MinNN",
        ModelConfig::dnn(&[64, 32]).with_learning_rate(2e-3),
    )?;

    // Training: run the program on each input, extract features and the
    // per-input ideal parameters (the paper's expert/auto-tuned labels).
    println!("training on 150 synthetic scenes...");
    let mut gen = SceneGenerator::new(7);
    let training: Vec<_> = (0..150)
        .map(|_| {
            let scene = gen.generate(32, 32);
            let (ideal, _) = canny::ideal_params(&scene.image, &scene.truth);
            (scene, ideal)
        })
        .collect();
    for _epoch in 0..40 {
        for (scene, ideal) in &training {
            // SigmaNN: IMG -> SIGMA (Fig. 11 lines 16-18).
            engine.au_extract("IMG", &scene.image.to_f64());
            engine.au_extract("SIGMA", &[f64::from(ideal.sigma)]);
            engine.au_nn("SigmaNN", "IMG", &["SIGMA"])?;
            // MinNN: HIST -> LO, HI (Fig. 11 lines 3-7), with the histogram
            // computed at the ideal smoothing as the runtime would observe.
            let result = canny::canny(&scene.image, *ideal);
            engine.au_extract("HIST", &normalized(&result.hist));
            engine.au_extract("LO", &[f64::from(ideal.lo)]);
            engine.au_extract("HI", &[f64::from(ideal.hi)]);
            engine.au_nn("MinNN", "HIST", &["LO", "HI"])?;
        }
    }

    // Deployment on 10 held-out scenes.
    engine.set_mode(Mode::Test);
    let mut test_gen = SceneGenerator::new(7 + 0x9e37);
    let mut base_total = 0.0;
    let mut auto_total = 0.0;
    println!("\n{:<7} {:>10} {:>12}", "Scene", "Baseline", "Autonomized");
    for i in 0..10 {
        let scene = test_gen.generate(32, 32);

        // Phase 1: predict sigma from the raw image.
        engine.au_extract("IMG", &scene.image.to_f64());
        engine.au_nn("SigmaNN", "IMG", &["SIGMA"])?;
        let sigma = engine.au_write_back_scalar("SIGMA")?.clamp(0.3, 3.0) as f32;

        // Phase 2: smooth with the predicted sigma, histogram the
        // magnitudes, predict lo/hi.
        let probe = canny::canny(
            &scene.image,
            CannyParams {
                sigma,
                ..CannyParams::default()
            },
        );
        engine.au_extract("HIST", &normalized(&probe.hist));
        engine.au_nn("MinNN", "HIST", &["LO", "HI"])?;
        let hi = engine.au_write_back_scalar("HI")?.clamp(0.05, 0.95) as f32;
        let lo = engine
            .au_write_back_scalar("LO")?
            .clamp(0.01, f64::from(hi)) as f32;

        let auto = canny::canny(&scene.image, CannyParams { sigma, lo, hi });
        let auto_score = canny::score(&auto.edges, &scene.truth);
        let base = canny::canny(&scene.image, CannyParams::default());
        let base_score = canny::score(&base.edges, &scene.truth);
        base_total += base_score;
        auto_total += auto_score;
        println!("{:<7} {:>10.3} {:>12.3}", i + 1, base_score, auto_score);
    }
    println!(
        "{:<7} {:>10.3} {:>12.3}  ({:+.0}% over baseline; paper: ~70%)",
        "mean",
        base_total / 10.0,
        auto_total / 10.0,
        (auto_total - base_total) / base_total.abs() * 100.0
    );
    Ok(())
}

fn normalized(hist: &[f64]) -> Vec<f64> {
    let total: f64 = hist.iter().sum::<f64>().max(1.0);
    hist.iter().map(|h| h / total).collect()
}
