//! Autonomizing Mario for *software self-testing* — the Section 2 case
//! study: add a coverage-improvement reward (Fig. 2 line 38) and the AI
//! learns to explore the game's code, finding the seeded boundary-check
//! bug in the dungeon ceiling.
//!
//! Run with: `cargo run --release --example mario_selftest`

use autonomizer::core::{Engine, Mode, ModelConfig};
use autonomizer::games::harness::{self, FeatureSource};
use autonomizer::games::{Game, Mario};
use autonomizer::nn::rl::DqnConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut engine = Engine::new(Mode::Train);
    let dqn = DqnConfig {
        hidden: vec![64, 32],
        batch_size: 32,
        replay_capacity: 50_000,
        target_sync_every: 500,
        epsilon_decay: 0.9995,
        epsilon_end: 0.08, // keep exploring: testing wants novelty
        learning_rate: 1e-3,
        gamma: 0.99,
        learn_every: 2,
        seed: 13,
        ..DqnConfig::default()
    };
    engine.au_config(
        "SelfTest",
        ModelConfig::q_dnn(&[64, 32]).with_dqn(dqn.clone()),
    )?;
    // Best-checkpoint selection (the paper's train-until-good protocol):
    // persist the model whenever its greedy coverage improves.
    let model_dir = std::env::temp_dir().join("mario_selftest_example_best");
    std::fs::create_dir_all(&model_dir)?;
    engine.set_model_dir(&model_dir);
    let mut best_cov = -1.0f64;

    let mut game = Mario::new(1);
    let episodes = 1600usize;
    let mut bug_episode: Option<usize> = None;
    // Track total discoveries for the progress printout; the reward itself
    // is per-episode coverage improvement (the coverage counters reset with
    // the program state on restore, like re-running an instrumented
    // binary).
    let mut global: std::collections::BTreeSet<&'static str> = Default::default();
    for episode in 0..episodes {
        let mut covered = 0usize;
        let mut shaper = |g: &Mario| {
            // checkNewCoverage(): reward = 30 on any coverage improvement.
            // The base game reward still applies so Mario survives long
            // enough to reach the complex logic.
            for region in autonomizer::games::mario::REGIONS {
                if g.coverage().hits(region) > 0 {
                    global.insert(region);
                }
            }
            let now = g.coverage().covered();
            let bonus = if now > covered { 30.0 } else { 0.0 };
            covered = now;
            bonus
        };
        harness::play_episode(
            &mut engine,
            "SelfTest",
            &mut game,
            450,
            FeatureSource::Internal,
            Some(&mut shaper),
        )?;
        // au_restore wipes the crash flag with the rest of the program
        // state, so detect the bug from its coverage region instead.
        if bug_episode.is_none() && global.contains("oob_ceiling_bug") {
            bug_episode = Some(episode);
        }
        if (episode + 1) % 200 == 0 {
            println!(
                "episode {:>4}: {} of {} regions discovered",
                episode + 1,
                global.len(),
                autonomizer::games::mario::REGIONS.len()
            );
            // Probe the greedy policy's coverage; keep the best weights.
            engine.set_mode(Mode::Test);
            let cov = greedy_coverage(&mut engine, 600)?;
            engine.set_mode(Mode::Train);
            if cov > best_cov {
                best_cov = cov;
                engine.save_model("SelfTest")?;
            }
        }
    }

    // Measure coverage in a 30-second-equivalent window (600 frames) with
    // the best checkpoint, respawning on death.
    let mut best_engine = Engine::new(Mode::Test);
    best_engine.set_model_dir(&model_dir);
    best_engine.au_config("SelfTest", ModelConfig::q_dnn(&[64, 32]).with_dqn(dqn))?;
    let fraction = greedy_coverage(&mut best_engine, 600)?;
    let _ = std::fs::remove_dir_all(&model_dir);
    println!();
    println!(
        "coverage in the measurement window: {:.0}% of {} regions (paper: ~65%)",
        fraction * 100.0,
        autonomizer::games::mario::REGIONS.len()
    );
    match bug_episode {
        Some(e) => println!("boundary-check bug first triggered in training episode {e}"),
        None => println!("bug not reached this run (train longer or raise epsilon_end)"),
    }
    Ok(())
}

/// Plays greedily for `frames` frames (respawning on death), returning the
/// fraction of coverage regions hit across the whole window. Reports the
/// seeded boundary-check bug if the policy triggers it.
fn greedy_coverage(engine: &mut Engine, frames: usize) -> Result<f64, Box<dyn std::error::Error>> {
    let mut game = Mario::new(1);
    let mut covered: std::collections::BTreeSet<&str> = Default::default();
    let mut reward = 0.0;
    for _ in 0..frames {
        let names = game.feature_names();
        for (name, value) in names.iter().zip(game.features()) {
            engine.au_extract(name, &[value]);
        }
        let ser = engine.au_serialize(&names);
        let action = engine.au_nn_rl("SelfTest", &ser, reward, false, "output", 5)?;
        let result = game.step(action);
        reward = result.reward;
        for region in autonomizer::games::mario::REGIONS {
            if game.coverage().hits(region) > 0 {
                covered.insert(region);
            }
        }
        if result.terminal {
            if game.bug_triggered() {
                println!("!! boundary-check bug triggered during measurement window");
            }
            game.reset();
            reward = 0.0;
        }
    }
    Ok(covered.len() as f64 / autonomizer::games::mario::REGIONS.len() as f64)
}
