//! An entire autonomized game written in **AuLang** — the crate's
//! instrumented language — demonstrating that the primitives work from
//! source-level annotations with *automatic* dependence tracing, exactly
//! like the paper's C programs under Valgrind.
//!
//! The program is a miniature one-dimensional "flappy" game: a bird must
//! keep its height inside a moving corridor. The AuLang source annotates
//! the action with `au_write_back` (making it the target variable) and the
//! interpreter records every assignment into the dependence graph, so
//! Algorithm 2 can select features afterwards with no manual work.
//!
//! Run with: `cargo run --release --example aulang_flappy`

use autonomizer::lang::Interpreter;
use autonomizer::trace::{extract_rl, RlParams};

const SRC: &str = r#"
    fn reward_of(y, center) {
        let miss = abs(y - center);
        if (miss < 0.2) { return 1; }
        return 0 - 1;
    }

    fn main() {
        au_config("Bird", "DNN", "QLearn", 2, 32, 16);
        mark_target("action");
        let y = 0.5;
        let vy = 0;
        let center = 0.5;
        let t = 0;
        let score = 0;
        let reward = 0;
        let action = 0;
        while (t < 4000) {
            // corridor drifts sinusoidally
            center = 0.5 + 0.25 * sin(t / 30.0);
            // physics: the chosen action data-flows into the velocity,
            // exactly like Fig. 10's right -> speed -> player.x chain.
            vy = vy + 0.004 - 0.026 * action;
            y = y + vy;
            if (y < 0) { y = 0; vy = 0; }
            if (y > 1) { y = 1; vy = 0; }

            au_extract("Y", y);
            au_extract("VY", vy * 20);
            au_extract("C", center);
            au_extract("REL", y - center);
            let ser = au_serialize("Y", "VY", "C", "REL");
            action = au_nn_rl("Bird", ser, reward, false, "output", 2);

            reward = reward_of(y, center);
            score = score + reward;
            t = t + 1;
        }
        return score;
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut interp = Interpreter::compile(SRC)?;
    // Keep engine artifacts (saved models, flight-recorder dumps) out of
    // the working tree: point the engine at a temp directory up front.
    let model_dir = std::env::temp_dir().join("aulang_flappy_example");
    std::fs::create_dir_all(&model_dir)?;
    interp.engine_mut().set_model_dir(&model_dir);
    autonomizer::nn::set_init_seed(9);
    let score = interp.run()?;
    println!(
        "autonomized AuLang bird: cumulative reward {} over 4000 frames",
        score
    );
    println!(
        "interpreter stats: {} statements, {} traced assignments",
        interp.stats().steps,
        interp.stats().assignments
    );

    // The dependence graph was recorded automatically while the program
    // ran; Algorithm 2 can now justify the feature choice.
    let db = interp.analysis();
    let features = extract_rl(
        db,
        RlParams {
            epsilon1: 0.0,
            epsilon2: 0.0001,
        },
    );
    for (&target, selected) in &features {
        println!(
            "Algorithm 2: features for `{}`: {:?}",
            db.name(target),
            selected.iter().map(|&v| db.name(v)).collect::<Vec<_>>()
        );
    }

    // A pure-physics baseline for comparison: never flap.
    let mut y = 0.5f64;
    let mut vy = 0.0f64;
    let mut baseline = 0.0;
    for t in 0..4000 {
        let center = 0.5 + 0.25 * f64::sin(f64::from(t) / 30.0);
        vy += 0.004;
        y = (y + vy).clamp(0.0, 1.0);
        if y == 0.0 || y == 1.0 {
            vy = 0.0;
        }
        baseline += if (y - center).abs() < 0.2 { 1.0 } else { -1.0 };
    }
    println!("never-flap baseline: cumulative reward {baseline}");
    Ok(())
}
