//! Autonomizing Mario to play by itself — the paper's Fig. 2 running
//! example, written against the primitives directly.
//!
//! The game loop extracts the positions of Mario and the minions
//! (`au_extract`), serializes them (`au_serialize`), asks the Q-learning
//! model for the next action (`au_NN` with reward/terminal), writes it back
//! into `actionKey` (`au_write_back`), and rolls the program state back to
//! the checkpoint whenever Mario dies (`au_checkpoint`/`au_restore`) — the
//! model state survives the rollback and keeps learning.
//!
//! Run with: `cargo run --release --example mario_selfplay`

use autonomizer::core::{Engine, Mode, ModelConfig};
use autonomizer::games::{Game, Mario};
use autonomizer::nn::rl::DqnConfig;
use autonomizer::trace::{extract_rl, AnalysisDb, RlParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Algorithm 2 picks the feature variables (Fig. 10): profile a little
    // oracle play, then extract.
    let mut probe = Mario::new(1);
    let mut db = AnalysisDb::new();
    probe.record_dependences(&mut db);
    for _ in 0..300 {
        probe.record_frame(&mut db);
        let a = probe.oracle_action();
        if probe.step(a).terminal {
            probe.reset();
        }
    }
    let features = extract_rl(&db, RlParams::default());
    let action_key = db.id("actionKey").expect("target annotated");
    let names: Vec<String> = features[&action_key]
        .iter()
        .map(|&v| db.name(v).to_owned())
        .collect();
    println!("Algorithm 2 selected features: {names:?}");

    // initGame(): au_config("Mario", DNN, QLearn, 2, 256, 64) — we scale the
    // hidden layers down to keep the example fast on a laptop.
    let mut engine = Engine::new(Mode::Train);
    engine.au_config(
        "Mario",
        ModelConfig::q_dnn(&[64, 32]).with_dqn(DqnConfig {
            hidden: vec![64, 32],
            batch_size: 32,
            replay_capacity: 50_000,
            target_sync_every: 500,
            epsilon_decay: 0.9995,
            epsilon_end: 0.02,
            learning_rate: 1e-3,
            gamma: 0.99,
            learn_every: 2,
            seed: 7,
            ..DqnConfig::default()
        }),
    )?;

    let mut game = Mario::new(1);
    let episodes = 2000usize; // budget; training stops at the 80% bar below
    let max_frames = 450usize;
    let mut best_progress: f64 = 0.0;
    for episode in 0..episodes {
        game.reset();
        // au_checkpoint(): snapshot ⟨σ, π⟩ once per episode (Fig. 2 line 27).
        let checkpoint = engine.checkpoint_with(&game);
        let mut reward = 0.0;
        let mut terminated = false;
        for _frame in 0..max_frames {
            // Feature extraction (Fig. 2 lines 9-22), using the variables
            // Algorithm 2 selected.
            let all = game.features();
            let feature_names = game.feature_names();
            for name in &names {
                let idx = feature_names
                    .iter()
                    .position(|n| n == name)
                    .expect("selected features exist");
                engine.au_extract(name, &[all[idx]]);
            }
            let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
            let ser = engine.au_serialize(&name_refs);

            // au_NN + au_write_back + act (lines 40-46).
            let action = engine.au_nn_rl("Mario", &ser, reward, terminated, "output", 5)?;
            if terminated {
                // Line 48: au_restore() — program state rolls back, the
                // model keeps what it learned.
                game = engine.restore_with(&checkpoint);
                break;
            }
            let mut action_key = [0.0f64; 5];
            engine.au_write_back("output", &mut action_key)?;
            let result = game.step(action);
            reward = result.reward;
            terminated = result.terminal;
            if terminated {
                best_progress = best_progress.max(game.progress());
            }
        }
        if (episode + 1) % 50 == 0 {
            // Greedy probe (the paper's stopping rule: quit when the score
            // is within 20% of the players').
            engine.set_mode(Mode::Test);
            let probe = greedy_run(&mut engine, &names, max_frames)?;
            engine.set_mode(Mode::Train);
            println!(
                "episode {:>4}: greedy progress {:.0}% (best episode {:.0}%)",
                episode + 1,
                probe * 100.0,
                best_progress * 100.0
            );
            if probe >= 0.8 {
                println!("reached the 80% bar; stopping training");
                break;
            }
        }
    }

    // Deployment: play greedily.
    engine.set_mode(Mode::Test);
    let progress = greedy_run(&mut engine, &names, max_frames)?;
    println!(
        "deployed run: progress {:.0}%{}",
        progress * 100.0,
        if progress >= 1.0 {
            " — flag reached!"
        } else {
            ""
        }
    );
    Ok(())
}

/// One greedy episode on a fresh game; returns the progress reached.
fn greedy_run(
    engine: &mut Engine,
    names: &[String],
    max_frames: usize,
) -> Result<f64, Box<dyn std::error::Error>> {
    let mut game = Mario::new(1);
    let mut reward = 0.0;
    for _ in 0..max_frames {
        let all = game.features();
        let feature_names = game.feature_names();
        for name in names {
            let idx = feature_names
                .iter()
                .position(|n| n == name)
                .expect("exists");
            engine.au_extract(name, &[all[idx]]);
        }
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let ser = engine.au_serialize(&name_refs);
        let action = engine.au_nn_rl("Mario", &ser, reward, false, "output", 5)?;
        let result = game.step(action);
        reward = result.reward;
        if result.terminal {
            break;
        }
    }
    Ok(game.progress())
}
