//! Autonomizing TORCS-style driving — the paper's Section 6.3 case study.
//!
//! Algorithm 2 extracts the steering features from profiled traces (pruning
//! the duplicated `roll` and the near-constant `accX`), then a Q-learning
//! model is trained through the primitives until the car drives the whole
//! track.
//!
//! Run with: `cargo run --release --example torcs_driving`

use autonomizer::core::{Engine, Mode, ModelConfig};
use autonomizer::games::harness::{self, FeatureSource};
use autonomizer::games::{Game, Torcs};
use autonomizer::nn::rl::DqnConfig;
use autonomizer::trace::{extract_rl_detailed, AnalysisDb, RlParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Feature extraction with the paper's thresholds (ε₁ = 0, ε₂ = 0.01).
    let mut probe = Torcs::new(4);
    let mut db = AnalysisDb::new();
    probe.record_dependences(&mut db);
    for _ in 0..150 {
        probe.record_frame(&mut db);
        let a = probe.oracle_action();
        if probe.step(a).terminal {
            break;
        }
    }
    let detailed = extract_rl_detailed(&db, RlParams::default());
    let steer = db.id("steer").expect("steer is the target");
    let extraction = &detailed[&steer];
    println!(
        "candidates: {:?}",
        extraction
            .candidates
            .iter()
            .map(|&v| db.name(v))
            .collect::<Vec<_>>()
    );
    println!(
        "pruned duplicates (eps1): {:?}",
        extraction
            .pruned_redundant
            .iter()
            .map(|&v| db.name(v))
            .collect::<Vec<_>>()
    );
    println!(
        "pruned unchanging (eps2): {:?}",
        extraction
            .pruned_unchanging
            .iter()
            .map(|&v| db.name(v))
            .collect::<Vec<_>>()
    );
    println!(
        "selected: {:?}",
        extraction
            .selected
            .iter()
            .map(|&v| db.name(v))
            .collect::<Vec<_>>()
    );

    // Train the steering model through the primitives.
    let mut engine = Engine::new(Mode::Train);
    engine.au_config(
        "Torcs",
        ModelConfig::q_dnn(&[64, 32]).with_dqn(DqnConfig {
            hidden: vec![64, 32],
            learn_every: 4,
            epsilon_decay: 0.998,
            seed: 4,
            ..DqnConfig::default()
        }),
    )?;
    let mut game = Torcs::new(4);
    println!("\ntraining...");
    for block in 0..8 {
        harness::train(
            &mut engine,
            "Torcs",
            &mut game,
            25,
            450,
            FeatureSource::Internal,
        )?;
        let eval = harness::evaluate(
            &mut engine,
            "Torcs",
            &mut game,
            5,
            450,
            FeatureSource::Internal,
        )?;
        println!(
            "after {:>3} episodes: progress {:.0}%  finished {:.0}%",
            (block + 1) * 25,
            eval.recent_progress(5) * 100.0,
            eval.recent_success(5) * 100.0
        );
    }

    // Reference: the scripted "human player".
    let oracle = harness::run_oracle(&mut game, 450);
    println!(
        "\nplayers reference: progress {:.0}% ({}); the trained model aims to match it",
        oracle.progress * 100.0,
        if oracle.succeeded {
            "finished"
        } else {
            "crashed"
        }
    );
    Ok(())
}
