//! Rolling shadow-accuracy tracking.

use std::collections::VecDeque;

/// Rolling window of per-prediction absolute errors.
///
/// While ground-truth labels still flow through `au_extract` in TS mode the
/// engine can score every served prediction against the label that arrives
/// for the same extraction — *shadow accuracy*: the model is serving, the
/// original signal is still being watched.
#[derive(Debug)]
pub struct RollingQuality {
    errors: VecDeque<f64>,
    capacity: usize,
    total: u64,
    nan_count: u64,
}

impl RollingQuality {
    /// Creates an empty window holding up to `capacity` errors.
    pub fn new(capacity: usize) -> Self {
        RollingQuality {
            errors: VecDeque::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
            total: 0,
            nan_count: 0,
        }
    }

    /// Scores one prediction against its ground truth and returns the
    /// recorded error. The error is the mean absolute element-wise
    /// difference over the overlapping prefix; a non-finite prediction (or
    /// truth) records `f64::INFINITY` — it must drag the rolling MAE up, not
    /// silently vanish as NaN would.
    pub fn observe(&mut self, prediction: &[f64], truth: &[f64]) -> f64 {
        let n = prediction.len().min(truth.len());
        let err = if n == 0 {
            f64::INFINITY
        } else {
            let sum: f64 = prediction
                .iter()
                .zip(truth.iter())
                .map(|(p, t)| (p - t).abs())
                .sum();
            sum / n as f64
        };
        let recorded = if err.is_finite() { err } else { f64::INFINITY };
        if !recorded.is_finite() {
            self.nan_count += 1;
        }
        if self.errors.len() == self.capacity {
            self.errors.pop_front();
        }
        self.errors.push_back(recorded);
        self.total += 1;
        recorded
    }

    /// Mean absolute error over the current window; `None` before any
    /// observation. Infinite if the window contains a non-finite error.
    pub fn rolling_mae(&self) -> Option<f64> {
        if self.errors.is_empty() {
            return None;
        }
        Some(self.errors.iter().sum::<f64>() / self.errors.len() as f64)
    }

    /// Errors currently in the window (bounded by the capacity).
    pub fn samples(&self) -> usize {
        self.errors.len()
    }

    /// Total scored observations, including those evicted from the window.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Non-finite predictions/labels scored so far.
    pub fn nan_count(&self) -> u64 {
        self.nan_count
    }

    /// Empties the rolling window; the lifetime `total`/`nan_count`
    /// counters are kept. Used when a degraded model is re-armed.
    pub fn reset_window(&mut self) {
        self.errors.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mae_over_known_errors() {
        let mut q = RollingQuality::new(8);
        assert_eq!(q.rolling_mae(), None, "empty window has no MAE");
        q.observe(&[1.0], &[0.0]);
        q.observe(&[0.0], &[0.5]);
        let mae = q.rolling_mae().unwrap();
        assert!((mae - 0.75).abs() < 1e-12, "mae {mae}");
        assert_eq!(q.samples(), 2);
    }

    #[test]
    fn window_smaller_than_batch_keeps_latest() {
        let mut q = RollingQuality::new(2);
        q.observe(&[10.0], &[0.0]); // error 10, will be evicted
        q.observe(&[1.0], &[0.0]); // error 1
        q.observe(&[3.0], &[0.0]); // error 3
        assert_eq!(q.samples(), 2);
        assert_eq!(q.total(), 3);
        let mae = q.rolling_mae().unwrap();
        assert!(
            (mae - 2.0).abs() < 1e-12,
            "only the last two survive: {mae}"
        );
    }

    #[test]
    fn nan_prediction_records_infinity() {
        let mut q = RollingQuality::new(4);
        q.observe(&[0.5], &[0.5]);
        let e = q.observe(&[f64::NAN], &[0.5]);
        assert!(e.is_infinite());
        assert_eq!(q.nan_count(), 1);
        assert!(
            q.rolling_mae().unwrap().is_infinite(),
            "NaN must not vanish"
        );
    }

    #[test]
    fn vector_predictions_use_mean_absolute_error() {
        let mut q = RollingQuality::new(4);
        let e = q.observe(&[1.0, 2.0, 3.0], &[0.0, 2.0, 5.0]);
        assert!((e - 1.0).abs() < 1e-12, "(1 + 0 + 2) / 3 = 1: {e}");
    }

    #[test]
    fn empty_prediction_counts_as_failure() {
        let mut q = RollingQuality::new(4);
        let e = q.observe(&[], &[1.0]);
        assert!(e.is_infinite());
        assert_eq!(q.nan_count(), 1);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut q = RollingQuality::new(0);
        q.observe(&[1.0], &[0.0]);
        q.observe(&[2.0], &[0.0]);
        assert_eq!(q.samples(), 1);
        assert!((q.rolling_mae().unwrap() - 2.0).abs() < 1e-12);
    }
}
