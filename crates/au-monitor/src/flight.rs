//! Flight recorder: a bounded ring buffer of recent prediction records.

use std::collections::VecDeque;
use std::io::{self, Write};

/// One recorded prediction: everything needed to replay or debug the call
/// after an incident.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecord {
    /// Monotonic sequence number (1-based, never resets; matches the
    /// `seq` on alerts raised for the same observation).
    pub seq: u64,
    /// Telemetry span id of the serving call, `0` when tracing is off.
    pub span_id: u64,
    /// Model input features as served.
    pub features: Vec<f64>,
    /// Model output as served.
    pub prediction: Vec<f64>,
    /// Ground-truth label when one flowed through the store (shadow mode).
    pub outcome: Option<Vec<f64>>,
    /// Drift score at the time of the call (`0.0` without a baseline).
    pub drift_score: f64,
}

/// Bounded ring buffer of [`FlightRecord`]s for one model. Old records are
/// evicted as new ones arrive, so a dump always shows the moments *leading
/// up to* an alert — the aviation black-box discipline.
#[derive(Debug)]
pub struct FlightRecorder {
    records: VecDeque<FlightRecord>,
    capacity: usize,
    seq: u64,
}

impl FlightRecorder {
    /// Creates a recorder holding up to `capacity` records.
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            records: VecDeque::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
            seq: 0,
        }
    }

    /// Appends one record, evicting the oldest when at capacity.
    pub fn record(
        &mut self,
        span_id: u64,
        features: Vec<f64>,
        prediction: Vec<f64>,
        outcome: Option<Vec<f64>>,
        drift_score: f64,
    ) {
        self.seq += 1;
        if self.records.len() == self.capacity {
            self.records.pop_front();
        }
        self.records.push_back(FlightRecord {
            seq: self.seq,
            span_id,
            features,
            prediction,
            outcome,
            drift_score,
        });
    }

    /// Records currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing has been recorded (or everything was evicted —
    /// impossible in practice since eviction implies insertion).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total records ever written, including evicted ones.
    pub fn total(&self) -> u64 {
        self.seq
    }

    /// The held records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &FlightRecord> {
        self.records.iter()
    }

    /// Dumps the held records as JSON Lines, oldest first. Non-finite
    /// numbers are written as `null` (JSON has no NaN/Infinity), which is
    /// itself a signal: a null in a dumped prediction *is* the incident.
    pub fn write_jsonl<W: Write>(&self, w: &mut W) -> io::Result<()> {
        for r in &self.records {
            write!(
                w,
                "{{\"seq\":{},\"span_id\":{},\"features\":",
                r.seq, r.span_id
            )?;
            write_num_array(w, &r.features)?;
            write!(w, ",\"prediction\":")?;
            write_num_array(w, &r.prediction)?;
            write!(w, ",\"outcome\":")?;
            match &r.outcome {
                Some(o) => write_num_array(w, o)?,
                None => write!(w, "null")?,
            }
            write!(w, ",\"drift_score\":")?;
            write_num(w, r.drift_score)?;
            writeln!(w, "}}")?;
        }
        Ok(())
    }
}

fn write_num<W: Write>(w: &mut W, v: f64) -> io::Result<()> {
    if v.is_finite() {
        write!(w, "{v}")
    } else {
        write!(w, "null")
    }
}

fn write_num_array<W: Write>(w: &mut W, vals: &[f64]) -> io::Result<()> {
    write!(w, "[")?;
    for (i, v) in vals.iter().enumerate() {
        if i > 0 {
            write!(w, ",")?;
        }
        write_num(w, *v)?;
    }
    write!(w, "]")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut fr = FlightRecorder::new(3);
        for i in 0..5u64 {
            fr.record(i, vec![i as f64], vec![0.0], None, 0.0);
        }
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.total(), 5);
        let seqs: Vec<u64> = fr.records().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![3, 4, 5], "oldest evicted, order kept");
    }

    #[test]
    fn jsonl_dump_is_one_object_per_line() {
        let mut fr = FlightRecorder::new(4);
        fr.record(7, vec![0.25, 0.5], vec![1.0], Some(vec![0.9]), 0.125);
        fr.record(8, vec![0.1, 0.2], vec![0.5], None, 0.0);
        let mut buf = Vec::new();
        fr.write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"span_id\":7"));
        assert!(lines[0].contains("\"features\":[0.25,0.5]"));
        assert!(lines[0].contains("\"outcome\":[0.9]"));
        assert!(lines[0].contains("\"drift_score\":0.125"));
        assert!(lines[1].contains("\"outcome\":null"));
        assert!(lines[1].starts_with('{') && lines[1].ends_with('}'));
    }

    #[test]
    fn non_finite_values_dump_as_null() {
        let mut fr = FlightRecorder::new(2);
        fr.record(1, vec![f64::NAN], vec![f64::INFINITY], None, f64::NAN);
        let mut buf = Vec::new();
        fr.write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("\"features\":[null]"));
        assert!(text.contains("\"prediction\":[null]"));
        assert!(text.contains("\"drift_score\":null"));
        assert!(!text.contains("NaN") && !text.contains("inf"));
    }
}
