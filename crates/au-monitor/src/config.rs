//! Monitoring thresholds and policy.

/// Thresholds and policy for one model's monitor.
///
/// The defaults are deliberately conservative: a model must shift its
/// windowed input distribution by a quarter of the training range, or
/// triple its training-time error, before a critical alert fires.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorConfig {
    /// Observations kept in the rolling quality (error) window.
    pub quality_window: usize,
    /// Observations kept in the per-feature drift window.
    pub drift_window: usize,
    /// Minimum observations in a window before windowed alerts may fire
    /// (per-row out-of-range checks are immediate).
    pub min_samples: usize,
    /// Critical quality alert when rolling MAE exceeds this multiple of the
    /// training baseline MAE.
    pub mae_degradation_factor: f64,
    /// Critical drift alert when the population-stability-style score
    /// (mean + spread shift, in training-range units) exceeds this.
    pub drift_threshold: f64,
    /// Fraction of the training range an input may exceed the learned
    /// `[min, max]` by before it counts as out-of-range.
    pub range_tolerance: f64,
    /// Flight-recorder ring buffer capacity (records per model).
    pub flight_capacity: usize,
    /// When `true`, a critical alert marks the model *degraded*: the engine
    /// refuses further predictions with `AuError::ModelDegraded` so the
    /// caller can fall back to the original (pre-autonomization) code path.
    pub fallback: bool,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            quality_window: 64,
            drift_window: 64,
            min_samples: 16,
            mae_degradation_factor: 3.0,
            drift_threshold: 0.25,
            range_tolerance: 0.05,
            flight_capacity: 256,
            fallback: false,
        }
    }
}

impl MonitorConfig {
    /// Enables or disables the graceful-degradation fallback policy.
    #[must_use]
    pub fn with_fallback(mut self, fallback: bool) -> Self {
        self.fallback = fallback;
        self
    }

    /// Overrides the drift score threshold.
    #[must_use]
    pub fn with_drift_threshold(mut self, threshold: f64) -> Self {
        self.drift_threshold = threshold;
        self
    }

    /// Overrides the MAE degradation factor.
    #[must_use]
    pub fn with_mae_factor(mut self, factor: f64) -> Self {
        self.mae_degradation_factor = factor;
        self
    }

    /// Overrides both window sizes.
    #[must_use]
    pub fn with_windows(mut self, quality: usize, drift: usize) -> Self {
        self.quality_window = quality;
        self.drift_window = drift;
        self
    }

    /// Overrides the minimum samples before windowed alerts fire.
    #[must_use]
    pub fn with_min_samples(mut self, min: usize) -> Self {
        self.min_samples = min;
        self
    }

    /// Overrides the flight-recorder capacity.
    #[must_use]
    pub fn with_flight_capacity(mut self, capacity: usize) -> Self {
        self.flight_capacity = capacity;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_override_fields() {
        let cfg = MonitorConfig::default()
            .with_fallback(true)
            .with_drift_threshold(0.5)
            .with_mae_factor(10.0)
            .with_windows(8, 4)
            .with_min_samples(2)
            .with_flight_capacity(16);
        assert!(cfg.fallback);
        assert_eq!(cfg.drift_threshold, 0.5);
        assert_eq!(cfg.mae_degradation_factor, 10.0);
        assert_eq!(cfg.quality_window, 8);
        assert_eq!(cfg.drift_window, 4);
        assert_eq!(cfg.min_samples, 2);
        assert_eq!(cfg.flight_capacity, 16);
    }
}
