//! Online prediction-quality monitoring for deployed Autonomizer models.
//!
//! The paper's TS mode replaces human/heuristic control with a trained
//! network — and from that moment the reproduction had no way to tell
//! whether the model was still trustworthy: Tables 2–3 accuracy is measured
//! offline only. This crate is the runtime answer, in four parts:
//!
//! - **Shadow/online accuracy** ([`RollingQuality`]) — while ground-truth
//!   labels still flow through `au_extract` in TS mode, a rolling window of
//!   per-prediction errors tracks live MAE and compares it against the
//!   training-time baseline persisted with the model.
//! - **Feature drift detection** ([`DriftDetector`]) — per-feature training
//!   distributions ([`FeatureBaseline`], built with the same min–max-scaled
//!   trace statistics Algorithm 2 uses via `au-trace`) are compared against
//!   a sliding window of at-inference inputs: inputs outside the learned
//!   range are flagged immediately, and a population-stability-style score
//!   catches windowed mean/variance shifts.
//! - **Flight recorder** ([`FlightRecorder`]) — a bounded ring buffer of
//!   recent `(features, prediction, outcome, span-id)` records per model,
//!   dumped to JSONL on alert or on demand.
//! - **Alerting + graceful degradation** ([`Alert`], [`MonitorConfig`]) —
//!   leveled alerts are raised on rising edges (no per-frame spam); with the
//!   fallback policy enabled a critical alert marks the model *degraded* so
//!   the engine can route callers back to the original code path (the
//!   paper's hybrid mode) instead of serving silent bad predictions.
//!
//! [`ModelMonitor`] ties the four together for one model; the Autonomizer
//! engine (`au-core` with the `monitor` feature) owns one per deployed
//! model and feeds it from the `au_nn`/`au_nn_rl` hot paths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alert;
mod config;
mod drift;
mod flight;
mod quality;

pub use alert::{Alert, AlertKind, AlertLevel};
pub use config::MonitorConfig;
pub use drift::{stability_score, BaselineBuilder, DriftDetector, DriftReading, FeatureBaseline};
pub use flight::{FlightRecord, FlightRecorder};
pub use quality::RollingQuality;
// Re-exported so dependents can build baselines without naming `au-trace`.
pub use au_trace::TraceSummary;

use std::fmt;

/// Live monitoring state for one deployed model: drift detector, rolling
/// quality window, flight recorder, and the alert ledger.
#[derive(Debug)]
pub struct ModelMonitor {
    config: MonitorConfig,
    drift: Option<DriftDetector>,
    baseline_mae: Option<f64>,
    quality: RollingQuality,
    flight: FlightRecorder,
    alerts: Vec<Alert>,
    /// Alert kinds currently firing — alerts are emitted on the rising edge
    /// only and re-arm when the condition clears.
    active: Vec<AlertKind>,
    last_drift: Option<DriftReading>,
    degraded: bool,
    observations: u64,
}

impl ModelMonitor {
    /// Creates a monitor with no training baseline: drift detection stays
    /// inert, but quality tracking (against labels) and flight recording
    /// work from the first observation.
    pub fn new(config: MonitorConfig) -> Self {
        let quality = RollingQuality::new(config.quality_window);
        let flight = FlightRecorder::new(config.flight_capacity);
        ModelMonitor {
            config,
            drift: None,
            baseline_mae: None,
            quality,
            flight,
            alerts: Vec::new(),
            active: Vec::new(),
            last_drift: None,
            degraded: false,
            observations: 0,
        }
    }

    /// Attaches the training-time baselines: the per-feature input
    /// distribution and (when known) the training-set MAE.
    pub fn with_baseline(mut self, baseline: FeatureBaseline, baseline_mae: Option<f64>) -> Self {
        self.drift = Some(DriftDetector::new(baseline, &self.config));
        self.baseline_mae = baseline_mae;
        self
    }

    /// The configuration this monitor runs under.
    pub fn config(&self) -> &MonitorConfig {
        &self.config
    }

    /// Training-time baseline MAE, when known.
    pub fn baseline_mae(&self) -> Option<f64> {
        self.baseline_mae
    }

    /// Observes one served prediction. `outcome` carries the ground-truth
    /// label when one still flows through the database store (shadow
    /// accuracy); `span_id` correlates the flight record with telemetry.
    ///
    /// Returns the alerts newly raised by this observation (rising edges
    /// only). When the configuration enables `fallback`, any critical alert
    /// also marks the model degraded.
    pub fn observe(
        &mut self,
        features: &[f64],
        prediction: &[f64],
        outcome: Option<&[f64]>,
        span_id: u64,
    ) -> Vec<Alert> {
        self.observations += 1;
        let reading = self.drift.as_mut().map(|d| d.observe(features));

        if let Some(truth) = outcome {
            self.quality.observe(prediction, truth);
        }

        // Evaluate every alert condition, then reconcile with the active
        // set so each condition alerts once per excursion.
        let mut firing: Vec<(AlertKind, AlertLevel, String)> = Vec::new();

        if prediction.iter().any(|v| !v.is_finite()) {
            firing.push((
                AlertKind::NaNPrediction,
                AlertLevel::Critical,
                "model produced a non-finite prediction".to_owned(),
            ));
        }
        if let Some(r) = &reading {
            if r.out_of_range > 0 {
                firing.push((
                    AlertKind::OutOfRange,
                    AlertLevel::Warn,
                    format!(
                        "{} feature(s) outside the learned training range (worst: #{})",
                        r.out_of_range,
                        r.worst_feature.unwrap_or(0)
                    ),
                ));
            }
            if r.samples >= self.config.min_samples && r.score > self.config.drift_threshold {
                firing.push((
                    AlertKind::Drift,
                    AlertLevel::Critical,
                    format!(
                        "input drift score {:.3} exceeds threshold {:.3} (feature #{}, window {})",
                        r.score,
                        self.config.drift_threshold,
                        r.worst_feature.unwrap_or(0),
                        r.samples
                    ),
                ));
            }
        }
        if let (Some(mae), Some(base)) = (self.quality.rolling_mae(), self.baseline_mae) {
            let floor = base.max(1e-6);
            if self.quality.samples() >= self.config.min_samples
                && mae > self.config.mae_degradation_factor * floor
            {
                firing.push((
                    AlertKind::QualityDrop,
                    AlertLevel::Critical,
                    format!(
                        "rolling MAE {mae:.4} exceeds {}x the training baseline {base:.4}",
                        self.config.mae_degradation_factor
                    ),
                ));
            }
        }

        let mut raised = Vec::new();
        let firing_kinds: Vec<AlertKind> = firing.iter().map(|(k, _, _)| *k).collect();
        for (kind, level, message) in firing {
            if !self.active.contains(&kind) {
                self.active.push(kind);
                let alert = Alert {
                    level,
                    kind,
                    message,
                    seq: self.observations,
                };
                if level == AlertLevel::Critical && self.config.fallback {
                    self.degraded = true;
                }
                self.alerts.push(alert.clone());
                raised.push(alert);
            }
        }
        // Re-arm conditions that have cleared.
        self.active.retain(|k| firing_kinds.contains(k));

        let drift_score = reading.as_ref().map_or(0.0, |r| r.score);
        self.last_drift = reading;
        self.flight.record(
            span_id,
            features.to_vec(),
            prediction.to_vec(),
            outcome.map(<[f64]>::to_vec),
            drift_score,
        );
        raised
    }

    /// Whether a critical alert has tripped the fallback policy. A degraded
    /// model should not serve predictions until [`ModelMonitor::clear_degraded`].
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Re-arms a degraded model (e.g. after the caller retrained or decided
    /// to trust it again). The drift and quality windows are emptied so the
    /// stale samples that tripped the alert cannot immediately re-trip it;
    /// windowed conditions stay quiet until fresh traffic refills
    /// `min_samples`.
    pub fn clear_degraded(&mut self) {
        self.degraded = false;
        self.active.clear();
        if let Some(d) = self.drift.as_mut() {
            d.reset();
        }
        self.quality.reset_window();
    }

    /// Every alert raised so far, in order.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// The flight recorder (read access; dump with
    /// [`FlightRecorder::write_jsonl`]).
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// The rolling quality window.
    pub fn quality(&self) -> &RollingQuality {
        &self.quality
    }

    /// The most recent drift reading, when a baseline is attached and at
    /// least one observation happened.
    pub fn last_drift(&self) -> Option<&DriftReading> {
        self.last_drift.as_ref()
    }

    /// Point-in-time summary of this monitor.
    pub fn report(&self) -> MonitorReport {
        MonitorReport {
            observations: self.observations,
            rolling_mae: self.quality.rolling_mae(),
            baseline_mae: self.baseline_mae,
            quality_samples: self.quality.samples(),
            nan_predictions: self.quality.nan_count(),
            drift_score: self.last_drift.as_ref().map(|r| r.score),
            has_baseline: self.drift.is_some(),
            alerts_warn: self
                .alerts
                .iter()
                .filter(|a| a.level == AlertLevel::Warn)
                .count(),
            alerts_critical: self
                .alerts
                .iter()
                .filter(|a| a.level == AlertLevel::Critical)
                .count(),
            flight_records: self.flight.len(),
            degraded: self.degraded,
        }
    }
}

/// Point-in-time summary of one model's monitoring state, as produced by
/// [`ModelMonitor::report`].
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorReport {
    /// Predictions observed in TS mode.
    pub observations: u64,
    /// Rolling mean absolute error over the quality window, when labels
    /// have flowed.
    pub rolling_mae: Option<f64>,
    /// Training-time baseline MAE, when persisted with the model.
    pub baseline_mae: Option<f64>,
    /// Observations currently in the quality window.
    pub quality_samples: usize,
    /// Non-finite predictions seen.
    pub nan_predictions: u64,
    /// Most recent drift score, when a baseline is attached.
    pub drift_score: Option<f64>,
    /// Whether a training feature baseline is attached.
    pub has_baseline: bool,
    /// Warn-level alerts raised so far.
    pub alerts_warn: usize,
    /// Critical alerts raised so far.
    pub alerts_critical: usize,
    /// Records currently held by the flight recorder.
    pub flight_records: usize,
    /// Whether the fallback policy has marked the model degraded.
    pub degraded: bool,
}

impl fmt::Display for MonitorReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "observations={}", self.observations)?;
        match (self.rolling_mae, self.baseline_mae) {
            (Some(mae), Some(base)) => {
                write!(f, " mae={mae:.4} (baseline {base:.4})")?;
            }
            (Some(mae), None) => write!(f, " mae={mae:.4}")?,
            (None, Some(base)) => write!(f, " mae=- (baseline {base:.4})")?,
            (None, None) => {}
        }
        if let Some(score) = self.drift_score {
            write!(f, " drift={score:.3}")?;
        } else if !self.has_baseline {
            write!(f, " drift=n/a(no baseline)")?;
        }
        write!(
            f,
            " alerts={}w/{}c flight={} degraded={}",
            self.alerts_warn, self.alerts_critical, self.flight_records, self.degraded
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline_from(traces: &[Vec<f64>]) -> FeatureBaseline {
        FeatureBaseline::from_rows(traces)
    }

    fn clean_rows(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                let x = i as f64 / n as f64;
                vec![x, 1.0 - x, 0.5]
            })
            .collect()
    }

    #[test]
    fn clean_stream_stays_silent() {
        let rows = clean_rows(64);
        let mut m = ModelMonitor::new(MonitorConfig::default())
            .with_baseline(baseline_from(&rows), Some(0.05));
        // Serve the training rows in a strided order so each sliding window
        // stays representative of the whole distribution (a monotonic sweep
        // would make every window genuinely mean-shifted).
        for i in 0..rows.len() {
            let row = &rows[(i * 13) % rows.len()];
            let alerts = m.observe(row, &[0.5], Some(&[0.52]), i as u64);
            assert!(alerts.is_empty(), "clean stream alerted: {alerts:?}");
        }
        assert!(!m.is_degraded());
        assert_eq!(m.report().alerts_critical, 0);
    }

    #[test]
    fn shifted_stream_raises_drift_and_degrades_with_fallback() {
        let rows = clean_rows(64);
        let cfg = MonitorConfig::default().with_fallback(true);
        let mut m = ModelMonitor::new(cfg).with_baseline(baseline_from(&rows), Some(0.05));
        // Feed enough clearly shifted rows to fill the min-sample window.
        let mut saw_drift = false;
        for i in 0..64u64 {
            let alerts = m.observe(&[8.0, -7.0, 9.5], &[0.5], None, i);
            saw_drift |= alerts.iter().any(|a| a.kind == AlertKind::Drift);
        }
        assert!(saw_drift, "shifted inputs must raise a drift alert");
        assert!(m.is_degraded(), "critical alert with fallback degrades");
        // Out-of-range fired immediately too (values outside [0,1]).
        assert!(m.alerts().iter().any(|a| a.kind == AlertKind::OutOfRange));
    }

    #[test]
    fn alerts_fire_on_rising_edge_only() {
        let rows = clean_rows(64);
        let mut m =
            ModelMonitor::new(MonitorConfig::default()).with_baseline(baseline_from(&rows), None);
        let mut out_of_range_alerts = 0usize;
        for i in 0..32u64 {
            let alerts = m.observe(&[5.0, 5.0, 5.0], &[0.0], None, i);
            out_of_range_alerts += alerts
                .iter()
                .filter(|a| a.kind == AlertKind::OutOfRange)
                .count();
        }
        assert_eq!(out_of_range_alerts, 1, "no per-frame alert spam");
        // Once the condition clears and re-trips, it may fire again.
        for i in 32..96u64 {
            let x = (i % 10) as f64 / 10.0;
            m.observe(&[x, 1.0 - x, 0.5], &[0.0], None, i);
        }
        let again = m.observe(&[5.0, 5.0, 5.0], &[0.0], None, 97);
        assert!(
            again.iter().any(|a| a.kind == AlertKind::OutOfRange),
            "condition re-arms after clearing"
        );
    }

    #[test]
    fn quality_drop_against_baseline_raises_alert() {
        let mut m = ModelMonitor::new(MonitorConfig::default());
        m.baseline_mae = Some(0.01);
        let mut saw = false;
        for i in 0..32u64 {
            let alerts = m.observe(&[0.1], &[1.0], Some(&[0.0]), i);
            saw |= alerts.iter().any(|a| a.kind == AlertKind::QualityDrop);
        }
        assert!(saw, "rolling MAE 1.0 vs baseline 0.01 must alert");
    }

    #[test]
    fn nan_prediction_is_critical_without_any_baseline() {
        let cfg = MonitorConfig::default().with_fallback(true);
        let mut m = ModelMonitor::new(cfg);
        let alerts = m.observe(&[0.1], &[f64::NAN], None, 1);
        assert!(alerts
            .iter()
            .any(|a| a.kind == AlertKind::NaNPrediction && a.level == AlertLevel::Critical));
        assert!(m.is_degraded());
        m.clear_degraded();
        assert!(!m.is_degraded());
    }

    #[test]
    fn report_and_flight_recorder_track_observations() {
        let rows = clean_rows(32);
        let mut m = ModelMonitor::new(MonitorConfig::default().with_flight_capacity(8))
            .with_baseline(baseline_from(&rows), Some(0.1));
        for (i, row) in rows.iter().enumerate() {
            m.observe(row, &[0.4], Some(&[0.5]), i as u64);
        }
        let r = m.report();
        assert_eq!(r.observations, 32);
        assert_eq!(r.flight_records, 8, "ring buffer bounded");
        assert!(r.rolling_mae.is_some());
        assert!(r.has_baseline);
        let text = r.to_string();
        assert!(text.contains("observations=32"), "{text}");
        assert!(text.contains("degraded=false"), "{text}");
    }
}
