//! Leveled monitoring alerts.

use std::fmt;

/// Alert severity. `Warn` flags suspicious inputs; `Critical` means the
/// model's predictions should no longer be trusted (and, with the fallback
/// policy, are no longer served).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AlertLevel {
    /// Suspicious but survivable (e.g. a single out-of-range input).
    Warn,
    /// The model is misbehaving: sustained drift, quality collapse, or
    /// non-finite output.
    Critical,
}

impl AlertLevel {
    /// Lower-case name used in exports and log lines.
    pub fn as_str(self) -> &'static str {
        match self {
            AlertLevel::Warn => "warn",
            AlertLevel::Critical => "critical",
        }
    }
}

/// What tripped the alert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertKind {
    /// An at-inference input fell outside the learned per-feature range.
    OutOfRange,
    /// The windowed input distribution shifted past the stability threshold.
    Drift,
    /// Rolling shadow-accuracy MAE exceeded its budget over the baseline.
    QualityDrop,
    /// The model produced a NaN or infinite prediction.
    NaNPrediction,
}

impl AlertKind {
    /// Lower-case name used in exports and log lines.
    pub fn as_str(self) -> &'static str {
        match self {
            AlertKind::OutOfRange => "out_of_range",
            AlertKind::Drift => "drift",
            AlertKind::QualityDrop => "quality_drop",
            AlertKind::NaNPrediction => "nan_prediction",
        }
    }
}

/// One raised alert. `seq` is the monitor's observation count when the
/// condition tripped — it matches the flight recorder's sequence numbers so
/// an alert can be lined up with the offending records.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// Severity.
    pub level: AlertLevel,
    /// Condition that tripped.
    pub kind: AlertKind,
    /// Human-readable detail.
    pub message: String,
    /// Observation sequence number at which the condition tripped.
    pub seq: u64,
}

impl fmt::Display for Alert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} at obs {}: {}",
            self.level.as_str(),
            self.kind.as_str(),
            self.seq,
            self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_level_kind_and_seq() {
        let a = Alert {
            level: AlertLevel::Critical,
            kind: AlertKind::Drift,
            message: "score 0.9".into(),
            seq: 42,
        };
        let s = a.to_string();
        assert!(s.contains("critical"));
        assert!(s.contains("drift"));
        assert!(s.contains("42"));
        assert!(s.contains("score 0.9"));
    }

    #[test]
    fn levels_are_ordered() {
        assert!(AlertLevel::Warn < AlertLevel::Critical);
    }
}
