//! Feature-drift detection against training-time input distributions.
//!
//! The baseline machinery deliberately reuses `au-trace`'s Algorithm 2
//! statistics ([`au_trace::summarize`], [`au_trace::variance`]): the same
//! min–max-scaled view of a trace that prunes redundant RL features during
//! training is what the detector compares at-inference windows against.

use au_trace::{summarize, TraceSummary};
use std::collections::VecDeque;

use crate::config::MonitorConfig;

/// Per-feature training distribution snapshot persisted with a model.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureBaseline {
    /// One summary per input feature, in feature order.
    pub features: Vec<TraceSummary>,
    /// Training rows the summaries were computed over.
    pub count: u64,
}

impl FeatureBaseline {
    /// Builds a baseline from training rows (each row one model input
    /// vector). Returns an all-zero baseline for an empty dataset.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let mut builder = BaselineBuilder::new();
        for row in rows {
            builder.observe(row);
        }
        builder.finish().unwrap_or(FeatureBaseline {
            features: Vec::new(),
            count: 0,
        })
    }

    /// Number of input features the baseline describes.
    pub fn width(&self) -> usize {
        self.features.len()
    }
}

/// Incremental (Welford) baseline accumulator — the engine feeds it every
/// training-mode input row so `save_model` can persist the distribution
/// without retaining the rows.
#[derive(Debug, Clone, Default)]
pub struct BaselineBuilder {
    count: u64,
    means: Vec<f64>,
    m2s: Vec<f64>,
    mins: Vec<f64>,
    maxs: Vec<f64>,
}

impl BaselineBuilder {
    /// Creates an empty builder; the feature width is fixed by the first
    /// observed row.
    pub fn new() -> Self {
        BaselineBuilder::default()
    }

    /// Rows observed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Folds one training input row into the running statistics. Rows of a
    /// different width than the first are ignored (a model's input width is
    /// fixed once built, so this only guards pathological callers).
    pub fn observe(&mut self, row: &[f64]) {
        if row.is_empty() {
            return;
        }
        if self.count == 0 {
            self.means = vec![0.0; row.len()];
            self.m2s = vec![0.0; row.len()];
            self.mins = vec![f64::INFINITY; row.len()];
            self.maxs = vec![f64::NEG_INFINITY; row.len()];
        } else if row.len() != self.means.len() {
            return;
        }
        self.count += 1;
        let n = self.count as f64;
        for (i, &v) in row.iter().enumerate() {
            let delta = v - self.means[i];
            self.means[i] += delta / n;
            self.m2s[i] += delta * (v - self.means[i]);
            self.mins[i] = self.mins[i].min(v);
            self.maxs[i] = self.maxs[i].max(v);
        }
    }

    /// Finalizes the accumulated statistics; `None` before any row.
    pub fn finish(&self) -> Option<FeatureBaseline> {
        if self.count == 0 {
            return None;
        }
        let n = self.count as f64;
        let features = (0..self.means.len())
            .map(|i| TraceSummary {
                min: self.mins[i],
                max: self.maxs[i],
                mean: self.means[i],
                var: self.m2s[i] / n,
            })
            .collect();
        Some(FeatureBaseline {
            features,
            count: self.count,
        })
    }
}

/// Population-stability-style score of a window of recent values against a
/// training summary, in *training-range units*: the absolute shift of the
/// windowed mean plus the absolute shift of the windowed standard
/// deviation, each divided by the training range (the same normalization
/// `min_max_scale` applies to Algorithm 2 traces).
///
/// A constant training feature (zero range) scores `1.0` as soon as any
/// windowed value deviates from it, and `0.0` otherwise. An empty window
/// scores `0.0`.
pub fn stability_score(base: &TraceSummary, window: &[f64]) -> f64 {
    if window.is_empty() {
        return 0.0;
    }
    let w = summarize(window);
    score_from_moments(base, w.mean, w.var)
}

/// [`stability_score`] from precomputed windowed moments — the hot-path
/// form [`DriftDetector::observe`] uses so scoring a window is O(1) instead
/// of a full re-summarization per observation.
fn score_from_moments(base: &TraceSummary, mean: f64, var: f64) -> f64 {
    let range = base.range();
    if range <= 0.0 {
        // A window deviating from a constant must move the mean or open up
        // variance; either moment betrays it without scanning the values.
        let deviates = (mean - base.mean).abs() > 1e-9 || var > 1e-18;
        return if deviates { 1.0 } else { 0.0 };
    }
    let shift = (mean - base.mean).abs() / range;
    let spread = (var.sqrt() - base.var.sqrt()).abs() / range;
    shift + spread
}

/// Bounded value window with O(1) running moments. The sum/sum-of-squares
/// pair drifts numerically as values enter and leave, so it is recomputed
/// from the retained values every [`SlidingStats::REFRESH_EVERY`] pushes.
#[derive(Debug)]
struct SlidingStats {
    values: VecDeque<f64>,
    sum: f64,
    sumsq: f64,
    pushes: u32,
}

impl SlidingStats {
    const REFRESH_EVERY: u32 = 4096;

    fn new(capacity: usize) -> Self {
        SlidingStats {
            values: VecDeque::with_capacity(capacity),
            sum: 0.0,
            sumsq: 0.0,
            pushes: 0,
        }
    }

    fn push(&mut self, v: f64, capacity: usize) {
        if self.values.len() >= capacity {
            if let Some(old) = self.values.pop_front() {
                self.sum -= old;
                self.sumsq -= old * old;
            }
        }
        self.values.push_back(v);
        self.sum += v;
        self.sumsq += v * v;
        self.pushes += 1;
        if self.pushes >= Self::REFRESH_EVERY {
            self.pushes = 0;
            self.sum = self.values.iter().sum();
            self.sumsq = self.values.iter().map(|v| v * v).sum();
        }
    }

    fn clear(&mut self) {
        self.values.clear();
        self.sum = 0.0;
        self.sumsq = 0.0;
        self.pushes = 0;
    }

    fn len(&self) -> usize {
        self.values.len()
    }

    fn mean(&self) -> f64 {
        self.sum / self.values.len() as f64
    }

    /// Population variance, matching `au_trace::variance` up to rounding.
    fn var(&self) -> f64 {
        let n = self.values.len() as f64;
        let mean = self.sum / n;
        (self.sumsq / n - mean * mean).max(0.0)
    }
}

/// One drift evaluation, returned by [`DriftDetector::observe`].
#[derive(Debug, Clone, PartialEq)]
pub struct DriftReading {
    /// Worst per-feature stability score over the current window
    /// (`0.0` until the window holds at least two values).
    pub score: f64,
    /// Index of the feature with the worst score.
    pub worst_feature: Option<usize>,
    /// Features of *this* row outside the tolerated training range
    /// (including NaN inputs). Checked immediately, not windowed.
    pub out_of_range: usize,
    /// Values currently in the window.
    pub samples: usize,
}

/// Sliding-window drift detector for one model's input features.
#[derive(Debug)]
pub struct DriftDetector {
    baseline: FeatureBaseline,
    windows: Vec<SlidingStats>,
    window: usize,
    range_tolerance: f64,
}

impl DriftDetector {
    /// Creates a detector over `baseline` with the config's window size and
    /// range tolerance.
    pub fn new(baseline: FeatureBaseline, config: &MonitorConfig) -> Self {
        let window = config.drift_window.max(1);
        let windows = baseline
            .features
            .iter()
            .map(|_| SlidingStats::new(window))
            .collect();
        DriftDetector {
            baseline,
            windows,
            window,
            range_tolerance: config.range_tolerance,
        }
    }

    /// The training baseline this detector compares against.
    pub fn baseline(&self) -> &FeatureBaseline {
        &self.baseline
    }

    /// Empties the sliding windows (the baseline is kept). Used when a
    /// degraded model is re-armed so stale poisoned samples cannot trip the
    /// detector again before fresh traffic refills the windows.
    pub fn reset(&mut self) {
        for w in &mut self.windows {
            w.clear();
        }
    }

    /// Folds one at-inference input row into the windows and scores the
    /// result. Rows of a different width than the baseline count every
    /// extra/missing feature as out-of-range.
    pub fn observe(&mut self, row: &[f64]) -> DriftReading {
        let mut out_of_range = row.len().abs_diff(self.baseline.width());
        for (i, &v) in row.iter().enumerate().take(self.baseline.width()) {
            let base = &self.baseline.features[i];
            let slack = self.range_tolerance * base.range();
            let outside =
                v.is_nan() || v < base.min - slack - 1e-12 || v > base.max + slack + 1e-12;
            if outside {
                out_of_range += 1;
            }
            // NaN inputs would poison the windowed mean; they are already
            // flagged as out-of-range above.
            self.windows[i].push(if v.is_nan() { base.mean } else { v }, self.window);
        }

        let mut score = 0.0;
        let mut worst = None;
        let samples = self.windows.first().map_or(0, SlidingStats::len);
        if samples >= 2 {
            for (i, w) in self.windows.iter().enumerate() {
                // The running moments reproduce `summarize`'s mean/variance
                // (the Algorithm 2 statistic) without rescanning the window.
                let s = score_from_moments(&self.baseline.features[i], w.mean(), w.var());
                if s > score {
                    score = s;
                    worst = Some(i);
                }
            }
        }
        DriftReading {
            score,
            worst_feature: worst,
            out_of_range,
            samples,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use au_trace::variance;

    fn base_unit() -> FeatureBaseline {
        // Feature 0 uniform-ish over [0,1], feature 1 constant.
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 99.0, 7.0]).collect();
        FeatureBaseline::from_rows(&rows)
    }

    #[test]
    fn builder_matches_batch_summaries() {
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let b = FeatureBaseline::from_rows(&rows);
        let col0: Vec<f64> = rows.iter().map(|r| r[0]).collect();
        let s0 = summarize(&col0);
        assert!((b.features[0].mean - s0.mean).abs() < 1e-9);
        assert!((b.features[0].var - s0.var).abs() < 1e-6);
        assert_eq!(b.features[0].min, s0.min);
        assert_eq!(b.features[0].max, s0.max);
        assert_eq!(b.count, 50);
        // The variance reuse really is au-trace's population variance.
        assert!((s0.var - variance(&col0)).abs() < 1e-12);
    }

    #[test]
    fn in_range_traffic_scores_low() {
        let base = base_unit();
        let mut d = DriftDetector::new(base, &MonitorConfig::default());
        let mut last = None;
        for i in 0..64 {
            last = Some(d.observe(&[(i % 20) as f64 / 19.0, 7.0]));
        }
        let r = last.unwrap();
        assert_eq!(r.out_of_range, 0);
        assert!(r.score < 0.25, "in-range score {}", r.score);
    }

    #[test]
    fn shifted_traffic_scores_high() {
        let base = base_unit();
        let mut d = DriftDetector::new(base, &MonitorConfig::default());
        let mut last = None;
        for _ in 0..64 {
            last = Some(d.observe(&[5.0, 7.0]));
        }
        let r = last.unwrap();
        assert!(r.score > 1.0, "shifted score {}", r.score);
        assert_eq!(r.worst_feature, Some(0));
        assert_eq!(r.out_of_range, 1, "5.0 is outside [0,1]");
    }

    #[test]
    fn constant_feature_drift_is_binary() {
        let base = base_unit();
        // Constant feature 1 == 7.0 in training; any change is full drift.
        let mut d = DriftDetector::new(base.clone(), &MonitorConfig::default());
        for i in 0..32 {
            d.observe(&[i as f64 / 31.0, 7.0]);
        }
        let steady = d.observe(&[0.5, 7.0]);
        assert_eq!(steady.score.min(0.999), steady.score, "no drift yet");
        let moved = d.observe(&[0.5, 7.5]);
        assert!(
            moved.score >= 1.0,
            "constant feature moved: {}",
            moved.score
        );
        assert_eq!(moved.worst_feature, Some(1));
    }

    #[test]
    fn empty_window_and_single_sample_score_zero() {
        assert_eq!(stability_score(&summarize(&[0.0, 1.0]), &[]), 0.0);
        let base = base_unit();
        let mut d = DriftDetector::new(base, &MonitorConfig::default());
        let first = d.observe(&[0.5, 7.0]);
        assert_eq!(first.score, 0.0, "one sample cannot establish drift");
        assert_eq!(first.samples, 1);
    }

    #[test]
    fn nan_and_width_mismatch_count_out_of_range() {
        let base = base_unit();
        let mut d = DriftDetector::new(base, &MonitorConfig::default());
        let r = d.observe(&[f64::NAN, 7.0]);
        assert_eq!(r.out_of_range, 1);
        let r = d.observe(&[0.5]);
        assert_eq!(r.out_of_range, 1, "missing feature flagged");
        let r = d.observe(&[0.5, 7.0, 9.0]);
        assert_eq!(r.out_of_range, 1, "extra feature flagged");
    }

    #[test]
    fn incremental_moments_match_batch_stability_score() {
        let base = base_unit();
        let cfg = MonitorConfig::default().with_windows(64, 8);
        let mut d = DriftDetector::new(base.clone(), &cfg);
        let mut fed: Vec<f64> = Vec::new();
        for i in 0..40 {
            let v = ((i * 7) % 11) as f64 / 10.0;
            fed.push(v);
            let r = d.observe(&[v, 7.0]);
            if r.samples < 2 {
                continue;
            }
            let start = fed.len().saturating_sub(8);
            // Feature 1 is a constant window over a constant baseline
            // (score 0), so the batch recomputation over feature 0's
            // window must reproduce the detector's running-moment score.
            let expect = stability_score(&base.features[0], &fed[start..]);
            assert!(
                (r.score - expect).abs() < 1e-9,
                "incremental {} vs batch {expect} at step {i}",
                r.score
            );
        }
    }

    #[test]
    fn window_is_bounded() {
        let base = base_unit();
        let cfg = MonitorConfig::default().with_windows(64, 8);
        let mut d = DriftDetector::new(base, &cfg);
        let mut last = None;
        for i in 0..100 {
            last = Some(d.observe(&[(i % 10) as f64 / 9.0, 7.0]));
        }
        assert_eq!(last.unwrap().samples, 8);
    }
}
