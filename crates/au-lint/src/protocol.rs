//! Protocol lints: a flow-sensitive walk of the AST enforcing the Fig. 8
//! primitive contract.
//!
//! Flow-sensitive facts (AU001, AU002, AU004, AU005, AU010) are tracked
//! along an interprocedural walk starting at `main`: *may*-configured
//! models and *may*-extracted lists merge by union at branch joins (a
//! primitive reachable on some path counts as done — erring toward no
//! false positives), while the *must*-checkpoint fact merges by
//! intersection (a restore is only safe if every path checkpointed). Loop
//! bodies are walked twice — a silent pre-pass lets facts established late
//! in the body license uses early in the body on iterations ≥ 2 — and
//! user-function calls descend into the callee with the caller's state (a
//! visited stack cuts recursion).
//!
//! Whole-program facts (AU003, AU006, AU009) come from a flow-insensitive
//! scan: write-back keys must be produced *somewhere*, extracted lists
//! consumed *somewhere*, configured models used *somewhere* — including in
//! dead code, since reachability does not change what names exist.

use crate::{RawDiag, Severity};
use au_lang::{Expr, ExprKind, Program, Span, Stmt, StmtKind};
use std::collections::{BTreeMap, BTreeSet};

/// Runs every protocol lint over `program`.
pub(crate) fn protocol_lints(program: &Program) -> Vec<RawDiag> {
    let mut diags = global_lints(program);
    let mut walker = Walker {
        program,
        diags: Vec::new(),
        reported: BTreeSet::new(),
        reporting: true,
        stack: Vec::new(),
    };
    if let Some(main) = program.function("main") {
        let mut state = State::default();
        walker.walk_block(&main.body, &mut state, true);
    }
    diags.extend(walker.diags);
    diags
}

/// The string literal at `args[i]`, if present.
fn str_arg(args: &[Expr], i: usize) -> Option<&str> {
    match args.get(i).map(|a| &a.kind) {
        Some(ExprKind::Str(s)) => Some(s),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// Flow-insensitive whole-program lints: AU003, AU006, AU009
// ---------------------------------------------------------------------

#[derive(Default)]
struct GlobalFacts {
    /// Extracted list name → first extraction site.
    extracts: BTreeMap<String, Span>,
    /// List names consumed anywhere: prediction features, training labels
    /// (wb names), serialize arguments, write-back keys.
    consumed: BTreeSet<String>,
    /// Write-back names produced by predictions.
    wb_names: BTreeSet<String>,
    /// `au_config` sites in source order.
    configs: Vec<(String, Span)>,
    /// Model names used by some prediction.
    models_used: BTreeSet<String>,
    /// `au_write_back`/`au_write_back_n` sites.
    write_backs: Vec<(String, Span)>,
}

fn global_lints(program: &Program) -> Vec<RawDiag> {
    let mut facts = GlobalFacts::default();
    for func in &program.functions {
        scan_stmts(&func.body, &mut facts);
    }
    let mut diags = Vec::new();
    for (key, span) in &facts.write_backs {
        if !facts.wb_names.contains(key) && !facts.extracts.contains_key(key) {
            diags.push(RawDiag {
                code: "AU003",
                severity: Severity::Error,
                span: *span,
                message: format!(
                    "write-back of `{key}`, but no prediction or extraction ever \
                     produces a list named `{key}` — this fails at runtime"
                ),
            });
        }
    }
    for (name, span) in &facts.extracts {
        if !facts.consumed.contains(name) {
            diags.push(RawDiag {
                code: "AU006",
                severity: Severity::Warning,
                span: *span,
                message: format!(
                    "extracted list `{name}` is never consumed by a prediction, \
                     serialization, or write-back — dead extraction"
                ),
            });
        }
    }
    for (model, span) in &facts.configs {
        if !facts.models_used.contains(model) {
            diags.push(RawDiag {
                code: "AU009",
                severity: Severity::Warning,
                span: *span,
                message: format!(
                    "model `{model}` is configured but never used in any \
                     `au_nn`/`au_nn_rl` prediction"
                ),
            });
        }
    }
    diags
}

fn scan_stmts(stmts: &[Stmt], facts: &mut GlobalFacts) {
    for stmt in stmts {
        match &stmt.kind {
            StmtKind::Let { init: e, .. }
            | StmtKind::Assign { value: e, .. }
            | StmtKind::Expr(e)
            | StmtKind::Return(Some(e)) => scan_expr(e, facts),
            StmtKind::AssignIndex { index, value, .. } => {
                scan_expr(index, facts);
                scan_expr(value, facts);
            }
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                scan_expr(cond, facts);
                scan_stmts(then_body, facts);
                scan_stmts(else_body, facts);
            }
            StmtKind::While { cond, body } => {
                scan_expr(cond, facts);
                scan_stmts(body, facts);
            }
            StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue => {}
        }
    }
}

fn scan_expr(expr: &Expr, facts: &mut GlobalFacts) {
    if let ExprKind::Call { name, args } = &expr.kind {
        match name.as_str() {
            "au_config" => {
                if let Some(model) = str_arg(args, 0) {
                    facts.configs.push((model.to_owned(), expr.span));
                }
            }
            "au_extract" => {
                if let Some(list) = str_arg(args, 0) {
                    facts.extracts.entry(list.to_owned()).or_insert(expr.span);
                }
            }
            "au_nn" => {
                if let Some(model) = str_arg(args, 0) {
                    facts.models_used.insert(model.to_owned());
                }
                if let Some(ext) = str_arg(args, 1) {
                    facts.consumed.insert(ext.to_owned());
                }
                for i in 2..args.len() {
                    if let Some(wb) = str_arg(args, i) {
                        facts.wb_names.insert(wb.to_owned());
                        // Training reads the wb list as labels, so naming a
                        // list as wb also consumes an extraction of it.
                        facts.consumed.insert(wb.to_owned());
                    }
                }
            }
            "au_nn_rl" => {
                if let Some(model) = str_arg(args, 0) {
                    facts.models_used.insert(model.to_owned());
                }
                if let Some(ext) = str_arg(args, 1) {
                    facts.consumed.insert(ext.to_owned());
                }
                if let Some(wb) = str_arg(args, 4) {
                    facts.wb_names.insert(wb.to_owned());
                    facts.consumed.insert(wb.to_owned());
                }
            }
            "au_serialize" => {
                for i in 0..args.len() {
                    if let Some(list) = str_arg(args, i) {
                        facts.consumed.insert(list.to_owned());
                    }
                }
            }
            "au_write_back" | "au_write_back_n" => {
                if let Some(key) = str_arg(args, 0) {
                    facts.write_backs.push((key.to_owned(), expr.span));
                    facts.consumed.insert(key.to_owned());
                }
            }
            _ => {}
        }
    }
    // Recurse into subexpressions regardless of call kind.
    match &expr.kind {
        ExprKind::Array(items) => items.iter().for_each(|e| scan_expr(e, facts)),
        ExprKind::Index(a, b) => {
            scan_expr(a, facts);
            scan_expr(b, facts);
        }
        ExprKind::Call { args, .. } => args.iter().for_each(|e| scan_expr(e, facts)),
        ExprKind::Binary { lhs, rhs, .. } => {
            scan_expr(lhs, facts);
            scan_expr(rhs, facts);
        }
        ExprKind::Unary { expr, .. } => scan_expr(expr, facts),
        _ => {}
    }
}

// ---------------------------------------------------------------------
// Flow-sensitive walk: AU001, AU002, AU004, AU005, AU010
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Default)]
struct State {
    /// Models that *may* be configured at this point.
    configured: BTreeSet<String>,
    /// Lists that *may* be in the Engine store π at this point (extracted
    /// or produced by a prior prediction).
    extracted: BTreeSet<String>,
    /// Whether a checkpoint is guaranteed on *every* path to this point.
    checkpointed: bool,
}

struct Walker<'a> {
    program: &'a Program,
    diags: Vec<RawDiag>,
    /// Dedup key set: (code, span) — a callee reached from two call sites
    /// reports each violation once.
    reported: BTreeSet<(&'static str, usize, usize)>,
    /// When false (loop pre-pass), findings are suppressed but state still
    /// accumulates.
    reporting: bool,
    /// Call stack of user-function names, to cut recursion.
    stack: Vec<String>,
}

impl<'a> Walker<'a> {
    fn report(&mut self, code: &'static str, severity: Severity, span: Span, message: String) {
        if !self.reporting {
            return;
        }
        if self.reported.insert((code, span.start, span.end)) {
            self.diags.push(RawDiag {
                code,
                severity,
                span,
                message,
            });
        }
    }

    /// Walks a block; returns true if the block definitely diverges
    /// (reaches a `return`/`break`/`continue` while live).
    fn walk_block(&mut self, stmts: &[Stmt], st: &mut State, reachable: bool) -> bool {
        let mut live = reachable;
        let mut diverged = false;
        for stmt in stmts {
            if self.walk_stmt(stmt, st, live) && live {
                live = false;
                diverged = true;
            }
        }
        diverged
    }

    /// Walks one statement; returns true if it diverges (`return`,
    /// `break`, `continue`).
    fn walk_stmt(&mut self, stmt: &Stmt, st: &mut State, reachable: bool) -> bool {
        match &stmt.kind {
            StmtKind::Let { init: e, .. }
            | StmtKind::Assign { value: e, .. }
            | StmtKind::Expr(e) => {
                self.walk_expr(e, st, reachable);
                false
            }
            StmtKind::AssignIndex { index, value, .. } => {
                self.walk_expr(index, st, reachable);
                self.walk_expr(value, st, reachable);
                false
            }
            StmtKind::Return(e) => {
                if let Some(e) = e {
                    self.walk_expr(e, st, reachable);
                }
                true
            }
            StmtKind::Break | StmtKind::Continue => true,
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                self.walk_expr(cond, st, reachable);
                match &cond.kind {
                    // Literal conditions decide reachability exactly — the
                    // desugared `for` wrapper (`if (true)`) falls out here
                    // with no loss of precision.
                    ExprKind::Bool(true) => {
                        let diverges = self.walk_block(then_body, st, reachable);
                        let mut dead = st.clone();
                        self.walk_block(else_body, &mut dead, false);
                        diverges
                    }
                    ExprKind::Bool(false) => {
                        let mut dead = st.clone();
                        self.walk_block(then_body, &mut dead, false);
                        self.walk_block(else_body, st, reachable)
                    }
                    _ => {
                        let mut then_st = st.clone();
                        let mut else_st = st.clone();
                        let then_div = self.walk_block(then_body, &mut then_st, reachable);
                        let else_div = self.walk_block(else_body, &mut else_st, reachable);
                        // Join: may-facts union, must-fact intersection. A
                        // diverging branch imposes nothing on the join.
                        st.configured.extend(then_st.configured.iter().cloned());
                        st.configured.extend(else_st.configured.iter().cloned());
                        st.extracted.extend(then_st.extracted.iter().cloned());
                        st.extracted.extend(else_st.extracted.iter().cloned());
                        st.checkpointed = match (then_div, else_div) {
                            (false, false) => then_st.checkpointed && else_st.checkpointed,
                            (false, true) => then_st.checkpointed,
                            (true, false) => else_st.checkpointed,
                            (true, true) => st.checkpointed,
                        };
                        then_div && else_div
                    }
                }
            }
            StmtKind::While { cond, body } => {
                self.walk_expr(cond, st, reachable);
                if matches!(cond.kind, ExprKind::Bool(false)) {
                    let mut dead = st.clone();
                    self.walk_block(body, &mut dead, false);
                    return false;
                }
                // Silent pre-pass: facts established anywhere in the body
                // hold at the body's head from iteration 2 on.
                let entry_checkpointed = st.checkpointed;
                let was_reporting = self.reporting;
                self.reporting = false;
                let mut pre = st.clone();
                self.walk_block(body, &mut pre, reachable);
                self.reporting = was_reporting;
                st.configured.extend(pre.configured);
                st.extracted.extend(pre.extracted);
                st.checkpointed = entry_checkpointed;
                // Reporting pass.
                let mut body_st = st.clone();
                self.walk_block(body, &mut body_st, reachable);
                st.configured = body_st.configured;
                st.extracted = body_st.extracted;
                // The body may run zero times: only entry facts are
                // guaranteed after the loop.
                st.checkpointed = entry_checkpointed;
                false
            }
        }
    }

    fn walk_expr(&mut self, expr: &Expr, st: &mut State, reachable: bool) {
        match &expr.kind {
            ExprKind::Call { name, args } => {
                // Arguments first (nested calls take effect before the
                // outer call, matching evaluation order).
                for arg in args {
                    self.walk_expr(arg, st, reachable);
                }
                self.handle_call(name, args, expr.span, st, reachable);
            }
            ExprKind::Array(items) => {
                for item in items {
                    self.walk_expr(item, st, reachable);
                }
            }
            ExprKind::Index(a, b) => {
                self.walk_expr(a, st, reachable);
                self.walk_expr(b, st, reachable);
            }
            ExprKind::Binary { lhs, rhs, .. } => {
                self.walk_expr(lhs, st, reachable);
                self.walk_expr(rhs, st, reachable);
            }
            ExprKind::Unary { expr, .. } => self.walk_expr(expr, st, reachable),
            _ => {}
        }
    }

    fn handle_call(
        &mut self,
        name: &str,
        args: &[Expr],
        span: Span,
        st: &mut State,
        reachable: bool,
    ) {
        match name {
            "au_config" => {
                if let Some(model) = str_arg(args, 0) {
                    if reachable && st.configured.contains(model) {
                        self.report(
                            "AU010",
                            Severity::Warning,
                            span,
                            format!(
                                "`au_config` on model `{model}` that may already be \
                                 configured — reconfiguring resets its trained state"
                            ),
                        );
                    }
                    st.configured.insert(model.to_owned());
                }
            }
            "au_extract" => {
                if let Some(list) = str_arg(args, 0) {
                    st.extracted.insert(list.to_owned());
                }
            }
            "au_nn" | "au_nn_rl" => {
                if reachable {
                    if let Some(model) = str_arg(args, 0) {
                        if !st.configured.contains(model) {
                            self.report(
                                "AU001",
                                Severity::Error,
                                span,
                                format!(
                                    "`{name}` on model `{model}`, but no `au_config` \
                                     for `{model}` can execute before this point"
                                ),
                            );
                        }
                    }
                    if let Some(ext) = str_arg(args, 1) {
                        if !st.extracted.contains(ext) {
                            self.report(
                                "AU002",
                                Severity::Error,
                                span,
                                format!(
                                    "`{name}` consumes feature list `{ext}`, but no \
                                     `au_extract(\"{ext}\", …)` can execute before \
                                     this point"
                                ),
                            );
                        }
                    }
                }
                // Predictions put their write-back lists into π.
                if name == "au_nn" {
                    for i in 2..args.len() {
                        if let Some(wb) = str_arg(args, i) {
                            st.extracted.insert(wb.to_owned());
                        }
                    }
                } else if let Some(wb) = str_arg(args, 4) {
                    st.extracted.insert(wb.to_owned());
                }
            }
            "au_serialize" => {
                if !reachable {
                    self.report(
                        "AU005",
                        Severity::Warning,
                        span,
                        "`au_serialize` in unreachable code — the serialized \
                         features can never be produced at runtime"
                            .to_owned(),
                    );
                }
            }
            "au_checkpoint" => {
                st.checkpointed = true;
            }
            "au_restore" => {
                if reachable && !st.checkpointed {
                    self.report(
                        "AU004",
                        Severity::Error,
                        span,
                        "`au_restore` is not preceded by `au_checkpoint` on every \
                         path to this point"
                            .to_owned(),
                    );
                }
            }
            _ => {
                // User-defined function: descend with the caller's state.
                if !name.starts_with("au_") {
                    if let Some(callee) = self.program.function(name) {
                        if !self.stack.iter().any(|f| f == name) {
                            self.stack.push(name.to_owned());
                            self.walk_block(&callee.body, st, reachable);
                            self.stack.pop();
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use au_lang::parse;

    fn codes(src: &str) -> Vec<String> {
        let program = parse(src).unwrap();
        let mut diags = protocol_lints(&program);
        diags.sort_by_key(|d| (d.span.start, d.code));
        diags.into_iter().map(|d| d.code.to_owned()).collect()
    }

    #[test]
    fn config_in_branch_counts_as_may_configured() {
        let src = r#"
fn main() {
    let x = 1;
    if (x > 0) { au_config("M", "DNN", "AdamOpt", 1, 8); }
    au_extract("F", x);
    au_extract("Y", x);
    au_nn("M", "F", "Y");
    return 0;
}
"#;
        assert_eq!(codes(src), Vec::<String>::new());
    }

    #[test]
    fn extract_late_in_loop_licenses_early_predict() {
        // Iteration 2 sees the extraction from iteration 1: no AU002.
        let src = r#"
fn main() {
    au_config("M", "DNN", "AdamOpt", 1, 8);
    au_extract("F", 0);
    au_extract("Y", 0);
    let i = 0;
    while (i < 3) {
        au_nn("M", "F", "Y");
        au_extract("F", i);
        au_extract("Y", i);
        i = i + 1;
    }
    return 0;
}
"#;
        assert_eq!(codes(src), Vec::<String>::new());
    }

    #[test]
    fn checkpoint_in_one_branch_is_not_enough() {
        let src = r#"
fn main() {
    let x = 1;
    if (x > 0) { au_checkpoint(); } else { let y = 2; }
    au_restore();
    return 0;
}
"#;
        assert_eq!(codes(src), vec!["AU004"]);
    }

    #[test]
    fn checkpoint_in_both_branches_is_enough() {
        let src = r#"
fn main() {
    let x = 1;
    if (x > 0) { au_checkpoint(); } else { au_checkpoint(); }
    au_restore();
    return 0;
}
"#;
        assert_eq!(codes(src), Vec::<String>::new());
    }

    #[test]
    fn checkpoint_before_loop_covers_restore_inside() {
        let src = r#"
fn main() {
    au_checkpoint();
    let i = 0;
    while (i < 3) {
        au_restore();
        i = i + 1;
    }
    return 0;
}
"#;
        assert_eq!(codes(src), Vec::<String>::new());
    }

    #[test]
    fn checkpoint_only_inside_loop_does_not_cover_restore_after() {
        let src = r#"
fn main() {
    let i = 0;
    while (i < 3) {
        au_checkpoint();
        i = i + 1;
    }
    au_restore();
    return 0;
}
"#;
        assert_eq!(codes(src), vec!["AU004"]);
    }

    #[test]
    fn serialize_after_return_is_unreachable() {
        let src = r#"
fn main() {
    au_extract("A", 1);
    return 0;
    au_serialize("A");
}
"#;
        assert_eq!(codes(src), vec!["AU005"]);
    }

    #[test]
    fn serialize_under_literal_false_is_unreachable() {
        let src = r#"
fn main() {
    au_extract("A", 1);
    if (false) { au_serialize("A"); }
    let s = au_serialize("A");
    return 0;
}
"#;
        assert_eq!(codes(src), vec!["AU005"]);
    }

    #[test]
    fn lints_descend_into_called_functions() {
        let src = r#"
fn helper() {
    au_nn("M", "F", "Y");
    return 0;
}
fn main() {
    let r = helper();
    return r;
}
"#;
        // M never configured, F never extracted — both errors fire inside
        // the callee.
        assert_eq!(codes(src), vec!["AU001", "AU002"]);
    }

    #[test]
    fn uncalled_functions_are_not_flow_checked() {
        let src = r#"
fn dead() {
    au_restore();
    return 0;
}
fn main() {
    return 0;
}
"#;
        assert_eq!(codes(src), Vec::<String>::new());
    }

    #[test]
    fn recursion_terminates() {
        let src = r#"
fn f(n) {
    if (n < 1) { return 0; }
    return f(n - 1);
}
fn main() {
    return f(3);
}
"#;
        assert_eq!(codes(src), Vec::<String>::new());
    }

    #[test]
    fn dynamic_names_are_skipped() {
        // Model name is not a string literal: no AU001 (cannot resolve).
        let src = r#"
fn main() {
    let m = "M";
    au_extract("F", 1);
    au_extract("Y", 1);
    au_nn(m, "F", "Y");
    return 0;
}
"#;
        assert_eq!(codes(src), Vec::<String>::new());
    }
}
