//! Dependence lints: AU007/AU008 on the static program-dependence graph.
//!
//! These lints reuse [`au_lang::static_analysis::analyze`] — the same
//! over-approximated PDG that feeds the `static_vs_dynamic` ablation — and
//! augment it with **π-list pseudo-variables**: each engine-store list `E`
//! becomes a graph node `π:E`, with edges from the variables an
//! `au_extract("E", …)` reads, between the feature and write-back lists of
//! a prediction, and from a consumed list to the variable an
//! `au_write_back`/`au_serialize` result is assigned to. The augmentation
//! makes dataflow *through the engine* visible to the graph, so a feature
//! that genuinely feeds a prediction whose result reaches a target is never
//! flagged.
//!
//! Because the static graph over-approximates the dynamic one, "no static
//! relation" implies "no dynamic relation": these warnings are conservative
//! in the sound direction.

use crate::{RawDiag, Severity};
use au_lang::{static_analysis, Expr, ExprKind, Program, Span, Stmt, StmtKind};
use au_trace::AnalysisDb;
use std::collections::{BTreeMap, BTreeSet};

/// Name of the pseudo-variable for engine-store list `list`.
fn pi(list: &str) -> String {
    format!("\u{3c0}:{list}")
}

/// Runs AU007/AU008 over `program`.
pub(crate) fn dependence_lints(program: &Program) -> Vec<RawDiag> {
    let mut db = static_analysis::analyze(program);
    let mut facts = PiFacts::default();
    for func in &program.functions {
        collect_stmts(&func.body, &mut facts);
    }
    facts.add_pi_edges(&mut db);

    let mut diags = Vec::new();

    // Targets usable for relatedness checks: exclude any target fed by a
    // write-back key no extraction or prediction produces — that program
    // already gets AU003, and warning that features are "unrelated" to a
    // broken target would be cascade noise.
    let usable_targets: Vec<(&String, Span)> = facts
        .targets
        .iter()
        .filter(|t| t.keys.iter().all(|k| facts.produced.contains(k)))
        .filter_map(|t| db.id(&t.var).map(|_| (&t.var, t.span)))
        .collect();

    // AU007: an extracted feature variable with no static dependence
    // relation to any target can never influence a prediction outcome.
    if !usable_targets.is_empty() {
        let target_deps: Vec<(&String, BTreeSet<au_trace::VarId>)> = usable_targets
            .iter()
            .map(|(name, _)| (*name, db.dependents(db.id(name).unwrap())))
            .collect();
        for (feat, span) in &facts.feature_vars {
            let Some(w) = db.id(feat) else { continue };
            if usable_targets.iter().any(|(t, _)| *t == feat) {
                continue;
            }
            let dep_w = db.dependents(w);
            let related = target_deps.iter().any(|(t_name, dep_v)| {
                let v = db.id(t_name).unwrap();
                dep_w.contains(&v) || dep_v.contains(&w) || !dep_w.is_disjoint(dep_v)
            });
            if !related {
                diags.push(RawDiag {
                    code: "AU007",
                    severity: Severity::Warning,
                    span: *span,
                    message: format!(
                        "extracted feature `{feat}` has no static dependence \
                         relation to any write-back target — it cannot influence \
                         a prediction outcome"
                    ),
                });
            }
        }
    }

    // AU008: a write-back target unrelated to every program input predicts
    // from features that cannot vary with the program's inputs.
    let inputs: Vec<au_trace::VarId> = db.inputs().iter().copied().collect();
    if !inputs.is_empty() {
        let input_deps: Vec<BTreeSet<au_trace::VarId>> =
            inputs.iter().map(|&i| db.dependents(i)).collect();
        for (t_name, span) in &usable_targets {
            let v = db.id(t_name).unwrap();
            let dep_v = db.dependents(v);
            let related = inputs.iter().zip(&input_deps).any(|(&i, dep_i)| {
                dep_i.contains(&v) || dep_v.contains(&i) || !dep_i.is_disjoint(&dep_v)
            });
            if !related {
                diags.push(RawDiag {
                    code: "AU008",
                    severity: Severity::Warning,
                    span: *span,
                    message: format!(
                        "write-back target `{t_name}` has no static dependence \
                         relation to any program input — the prediction cannot \
                         react to the program's inputs"
                    ),
                });
            }
        }
    }

    diags
}

/// One `x = …au_write_back/au_nn_rl/au_serialize(…)…` site.
struct TargetSite {
    var: String,
    span: Span,
    /// Engine-store keys the right-hand side consumes.
    keys: Vec<String>,
}

#[derive(Default)]
struct PiFacts {
    /// List name → variables read by its extraction expression.
    extract_srcs: BTreeMap<String, BTreeSet<String>>,
    /// Feature variable → span of its first occurrence inside an
    /// `au_extract` argument.
    feature_vars: BTreeMap<String, Span>,
    /// (feature list, write-back lists) per prediction: π:E → π:W edges.
    pred_edges: Vec<(String, Vec<String>)>,
    /// Lists produced somewhere (extractions + prediction write-backs).
    produced: BTreeSet<String>,
    /// Assignments whose value flows out of the engine store.
    targets: Vec<TargetSite>,
}

impl PiFacts {
    fn add_pi_edges(&self, db: &mut AnalysisDb) {
        for (list, srcs) in &self.extract_srcs {
            for src in srcs {
                db.record_edge(src, &pi(list));
            }
        }
        for (ext, wbs) in &self.pred_edges {
            for wb in wbs {
                db.record_edge(&pi(ext), &pi(wb));
            }
        }
        for site in &self.targets {
            for key in &site.keys {
                db.record_edge(&pi(key), &site.var);
            }
        }
    }
}

fn str_arg(args: &[Expr], i: usize) -> Option<&str> {
    match args.get(i).map(|a| &a.kind) {
        Some(ExprKind::Str(s)) => Some(s),
        _ => None,
    }
}

fn collect_stmts(stmts: &[Stmt], facts: &mut PiFacts) {
    for stmt in stmts {
        match &stmt.kind {
            StmtKind::Let { name, init: e } | StmtKind::Assign { name, value: e } => {
                let mut keys = Vec::new();
                collect_store_reads(e, &mut keys);
                if !keys.is_empty() {
                    facts.targets.push(TargetSite {
                        var: name.clone(),
                        span: stmt.span,
                        keys,
                    });
                }
                collect_expr(e, facts);
            }
            StmtKind::AssignIndex { index, value, .. } => {
                collect_expr(index, facts);
                collect_expr(value, facts);
            }
            StmtKind::Expr(e) | StmtKind::Return(Some(e)) => collect_expr(e, facts),
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                collect_expr(cond, facts);
                collect_stmts(then_body, facts);
                collect_stmts(else_body, facts);
            }
            StmtKind::While { cond, body } => {
                collect_expr(cond, facts);
                collect_stmts(body, facts);
            }
            StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue => {}
        }
    }
}

/// Engine-store keys whose contents flow into this expression's value.
fn collect_store_reads(expr: &Expr, keys: &mut Vec<String>) {
    match &expr.kind {
        ExprKind::Call { name, args } => {
            match name.as_str() {
                "au_write_back" | "au_write_back_n" => {
                    if let Some(key) = str_arg(args, 0) {
                        keys.push(key.to_owned());
                    }
                }
                "au_nn_rl" => {
                    if let Some(wb) = str_arg(args, 4) {
                        keys.push(wb.to_owned());
                    }
                }
                "au_serialize" => {
                    for i in 0..args.len() {
                        if let Some(list) = str_arg(args, i) {
                            keys.push(list.to_owned());
                        }
                    }
                }
                _ => {}
            }
            for arg in args {
                collect_store_reads(arg, keys);
            }
        }
        ExprKind::Array(items) => items.iter().for_each(|e| collect_store_reads(e, keys)),
        ExprKind::Index(a, b) => {
            collect_store_reads(a, keys);
            collect_store_reads(b, keys);
        }
        ExprKind::Binary { lhs, rhs, .. } => {
            collect_store_reads(lhs, keys);
            collect_store_reads(rhs, keys);
        }
        ExprKind::Unary { expr, .. } => collect_store_reads(expr, keys),
        _ => {}
    }
}

fn collect_expr(expr: &Expr, facts: &mut PiFacts) {
    if let ExprKind::Call { name, args } = &expr.kind {
        match name.as_str() {
            "au_extract" => {
                if let Some(list) = str_arg(args, 0) {
                    facts.produced.insert(list.to_owned());
                    let srcs = facts.extract_srcs.entry(list.to_owned()).or_default();
                    for arg in args.iter().skip(1) {
                        vars_with_spans(arg, srcs, &mut facts.feature_vars);
                    }
                }
            }
            "au_nn" => {
                if let Some(ext) = str_arg(args, 1) {
                    let wbs: Vec<String> = (2..args.len())
                        .filter_map(|i| str_arg(args, i).map(str::to_owned))
                        .collect();
                    facts.produced.extend(wbs.iter().cloned());
                    facts.pred_edges.push((ext.to_owned(), wbs));
                }
            }
            "au_nn_rl" => {
                if let Some(ext) = str_arg(args, 1) {
                    let wbs: Vec<String> =
                        str_arg(args, 4).map(str::to_owned).into_iter().collect();
                    facts.produced.extend(wbs.iter().cloned());
                    facts.pred_edges.push((ext.to_owned(), wbs));
                }
            }
            _ => {}
        }
    }
    match &expr.kind {
        ExprKind::Array(items) => items.iter().for_each(|e| collect_expr(e, facts)),
        ExprKind::Index(a, b) => {
            collect_expr(a, facts);
            collect_expr(b, facts);
        }
        ExprKind::Call { args, .. } => args.iter().for_each(|e| collect_expr(e, facts)),
        ExprKind::Binary { lhs, rhs, .. } => {
            collect_expr(lhs, facts);
            collect_expr(rhs, facts);
        }
        ExprKind::Unary { expr, .. } => collect_expr(expr, facts),
        _ => {}
    }
}

/// Collects variable names in `expr` into `srcs`, remembering each name's
/// first span for AU007 report sites.
fn vars_with_spans(expr: &Expr, srcs: &mut BTreeSet<String>, spans: &mut BTreeMap<String, Span>) {
    match &expr.kind {
        ExprKind::Var(name) => {
            srcs.insert(name.clone());
            spans.entry(name.clone()).or_insert(expr.span);
        }
        ExprKind::Array(items) => items.iter().for_each(|e| vars_with_spans(e, srcs, spans)),
        ExprKind::Index(a, b) => {
            vars_with_spans(a, srcs, spans);
            vars_with_spans(b, srcs, spans);
        }
        ExprKind::Call { args, .. } => args.iter().for_each(|e| vars_with_spans(e, srcs, spans)),
        ExprKind::Binary { lhs, rhs, .. } => {
            vars_with_spans(lhs, srcs, spans);
            vars_with_spans(rhs, srcs, spans);
        }
        ExprKind::Unary { expr, .. } => vars_with_spans(expr, srcs, spans),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use au_lang::parse;

    fn codes(src: &str) -> Vec<String> {
        let program = parse(src).unwrap();
        let mut diags = dependence_lints(&program);
        diags.sort_by_key(|d| (d.span.start, d.code));
        diags.into_iter().map(|d| d.code.to_owned()).collect()
    }

    #[test]
    fn feature_feeding_a_prediction_is_related_via_pi() {
        let src = r#"
fn main() {
    au_config("M", "DNN", "AdamOpt", 1, 8);
    let x = input("x", 1);
    au_extract("F", x);
    au_extract("Y", x * 2);
    au_nn("M", "F", "Y");
    let t = 0;
    t = au_write_back("Y");
    return t;
}
"#;
        assert_eq!(codes(src), Vec::<String>::new());
    }

    #[test]
    fn unrelated_feature_fires_au007() {
        let src = r#"
fn main() {
    au_config("M", "DNN", "AdamOpt", 1, 8);
    au_config("M2", "DNN", "AdamOpt", 1, 8);
    let x = input("x", 1);
    let junk = 5;
    au_extract("F", x);
    au_extract("G", junk);
    au_extract("Y", x * 2);
    au_extract("Z", x * 3);
    au_nn("M", "F", "Y");
    au_nn("M2", "G", "Z");
    let t = 0;
    t = au_write_back("Y");
    return t;
}
"#;
        assert_eq!(codes(src), vec!["AU007"]);
    }

    #[test]
    fn input_independent_target_fires_au008() {
        let src = r#"
fn main() {
    au_config("M", "DNN", "AdamOpt", 1, 8);
    let u = input("u", 1);
    let w = 3;
    au_extract("F", w);
    au_extract("Y", w * 2);
    au_nn("M", "F", "Y");
    let t = 0;
    t = au_write_back("Y");
    return t + u;
}
"#;
        assert_eq!(codes(src), vec!["AU008"]);
    }

    #[test]
    fn unknown_write_back_key_suppresses_cascade() {
        // `t` reads a key nothing produces: AU003 territory. Without
        // suppression every feature would also trip AU007.
        let src = r#"
fn main() {
    au_config("M", "DNN", "AdamOpt", 1, 8);
    let x = input("x", 1);
    au_extract("F", x);
    au_extract("Y", x * 2);
    au_nn("M", "F", "Y");
    let t = 0;
    t = au_write_back("Z");
    return t;
}
"#;
        assert_eq!(codes(src), Vec::<String>::new());
    }

    #[test]
    fn serialize_links_lists_to_their_blob() {
        let src = r#"
fn main() {
    let x = input("x", 1);
    au_extract("F", x);
    let blob = au_serialize("F");
    return blob;
}
"#;
        // No targets at all: AU007/AU008 have nothing to check.
        assert_eq!(codes(src), Vec::<String>::new());
    }

    #[test]
    fn no_inputs_means_no_au008() {
        let src = r#"
fn main() {
    au_config("M", "DNN", "AdamOpt", 1, 8);
    let w = 3;
    au_extract("F", w);
    au_extract("Y", w * 2);
    au_nn("M", "F", "Y");
    let t = 0;
    t = au_write_back("Y");
    return t;
}
"#;
        assert_eq!(codes(src), Vec::<String>::new());
    }
}
