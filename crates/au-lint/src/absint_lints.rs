//! Abstract-interpretation lints: AU011–AU015 on `au_lang::absint` facts.
//!
//! Where the dependence lints (AU007/AU008) reason about *graph shape*,
//! these lints reason about *values*: [`au_lang::absint::analyze`] runs a
//! flow-sensitive interprocedural abstract interpretation (constant
//! propagation, intervals, liveness) and every fact it exports holds on
//! **every** concrete execution. That soundness direction is what makes
//! these reportable as lints rather than heuristics:
//!
//! - **AU011** — a dead store to a variable that appears in an
//!   `au_extract` feature vector: the stored value is overwritten before
//!   any read, so it can never reach the extraction.
//! - **AU012** — a feature variable that is provably constant: a
//!   zero-variance feature is dead weight in θ (Algorithm 2's ε₂ pass
//!   would discard it dynamically; this catches it statically).
//!   Suppressed where AU007 already fired on the same site — a feature
//!   with no dependence path to any target is the stronger finding.
//! - **AU013** — `au_checkpoint`/`au_restore` in unreachable code: the
//!   paper's Fig. 8 semantics only fire when the call executes.
//! - **AU014** — a division whose divisor interval provably contains
//!   zero (always, or possibly): the quotient poisons every dependent
//!   trace value with `inf`/`NaN`.
//! - **AU015** — a loop-invariant assignment inside a loop: under
//!   tracing, every iteration re-records the identical assignment event,
//!   inflating the dependence database for no information gain.

use crate::{RawDiag, Severity};
use au_lang::absint;
use au_lang::{Expr, ExprKind, Program, Span, Stmt, StmtKind};
use std::collections::{BTreeMap, BTreeSet};

/// Runs AU011–AU015 over `program`. `au007_spans` holds the (start, end)
/// spans AU007 fired on, so AU012 can yield to the stronger finding.
pub(crate) fn absint_lints(
    program: &Program,
    au007_spans: &BTreeSet<(usize, usize)>,
) -> Vec<RawDiag> {
    let analysis = absint::analyze(program);
    let mut facts = Sites::default();
    for f in &program.functions {
        collect_stmts(&f.body, &mut facts);
    }
    let mut diags = Vec::new();

    // AU011: dead store to an extracted variable. Liveness is syntactic,
    // so this fires even when the value analysis bails out.
    for d in &analysis.dead_stores {
        if facts.feature_vars.contains_key(&d.name) {
            diags.push(RawDiag {
                code: "AU011",
                severity: Severity::Warning,
                span: d.span,
                message: format!(
                    "dead store to extracted variable `{}` — the value is \
                     overwritten before any read, so it can never reach an \
                     `au_extract`",
                    d.name
                ),
            });
        }
    }

    // AU012: statically-constant feature in an extraction vector.
    for (name, span) in &facts.feature_vars {
        if au007_spans.contains(&(span.start, span.end)) {
            continue; // AU007 is the stronger finding for this site
        }
        if let Some(v) = analysis.constants.get(name) {
            diags.push(RawDiag {
                code: "AU012",
                severity: Severity::Warning,
                span: *span,
                message: format!(
                    "feature `{name}` is provably `{v}` on every execution — \
                     a constant feature carries no information for the model"
                ),
            });
        }
    }

    // AU013: checkpoint/restore that can never execute.
    for (call, span) in &facts.ckpt_calls {
        if analysis
            .unreachable
            .iter()
            .any(|u| u.start <= span.start && span.end <= u.end)
        {
            diags.push(RawDiag {
                code: "AU013",
                severity: Severity::Warning,
                span: *span,
                message: format!(
                    "`{call}` is unreachable — σ/π snapshot semantics only \
                     apply on paths that execute"
                ),
            });
        }
    }

    // AU014: division by a possibly-zero divisor.
    for d in &analysis.div_zero {
        let detail = if d.lo == 0.0 && d.hi == 0.0 {
            "the divisor is provably zero".to_owned()
        } else {
            format!(
                "the divisor's value range [{}, {}] contains zero",
                d.lo, d.hi
            )
        };
        diags.push(RawDiag {
            code: "AU014",
            severity: Severity::Warning,
            span: d.span,
            message: format!(
                "possible division by zero: {detail} — the quotient would \
                 poison dependent trace values with inf/NaN"
            ),
        });
    }

    // AU015: loop-invariant instrumentation.
    for li in &analysis.loop_invariant {
        diags.push(RawDiag {
            code: "AU015",
            severity: Severity::Warning,
            span: li.span,
            message: format!(
                "assignment to `{}` is loop-invariant — every iteration \
                 re-records an identical trace event; hoist it out of the \
                 loop",
                li.name
            ),
        });
    }

    diags
}

/// Syntactic sites the value facts are matched against.
#[derive(Default)]
struct Sites {
    /// Feature variable → first span inside an `au_extract` argument
    /// (the same anchoring convention AU007 uses, so suppression by span
    /// works).
    feature_vars: BTreeMap<String, Span>,
    /// `au_checkpoint`/`au_restore` call sites.
    ckpt_calls: Vec<(&'static str, Span)>,
}

fn collect_stmts(stmts: &[Stmt], facts: &mut Sites) {
    for stmt in stmts {
        match &stmt.kind {
            StmtKind::Let { init: e, .. }
            | StmtKind::Assign { value: e, .. }
            | StmtKind::Expr(e)
            | StmtKind::Return(Some(e)) => collect_expr(e, facts),
            StmtKind::AssignIndex { index, value, .. } => {
                collect_expr(index, facts);
                collect_expr(value, facts);
            }
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                collect_expr(cond, facts);
                collect_stmts(then_body, facts);
                collect_stmts(else_body, facts);
            }
            StmtKind::While { cond, body } => {
                collect_expr(cond, facts);
                collect_stmts(body, facts);
            }
            StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue => {}
        }
    }
}

fn collect_expr(expr: &Expr, facts: &mut Sites) {
    if let ExprKind::Call { name, args } = &expr.kind {
        match name.as_str() {
            "au_extract" => {
                for arg in args.iter().skip(1) {
                    feature_vars(arg, &mut facts.feature_vars);
                }
            }
            "au_checkpoint" => facts.ckpt_calls.push(("au_checkpoint", expr.span)),
            "au_restore" => facts.ckpt_calls.push(("au_restore", expr.span)),
            _ => {}
        }
    }
    match &expr.kind {
        ExprKind::Array(items) => items.iter().for_each(|e| collect_expr(e, facts)),
        ExprKind::Index(a, b) => {
            collect_expr(a, facts);
            collect_expr(b, facts);
        }
        ExprKind::Call { args, .. } => args.iter().for_each(|e| collect_expr(e, facts)),
        ExprKind::Binary { lhs, rhs, .. } => {
            collect_expr(lhs, facts);
            collect_expr(rhs, facts);
        }
        ExprKind::Unary { expr, .. } => collect_expr(expr, facts),
        _ => {}
    }
}

/// Variable names in `expr`, each with its first span (AU007's anchoring).
fn feature_vars(expr: &Expr, out: &mut BTreeMap<String, Span>) {
    match &expr.kind {
        ExprKind::Var(name) => {
            out.entry(name.clone()).or_insert(expr.span);
        }
        ExprKind::Array(items) => items.iter().for_each(|e| feature_vars(e, out)),
        ExprKind::Index(a, b) => {
            feature_vars(a, out);
            feature_vars(b, out);
        }
        ExprKind::Call { args, .. } => args.iter().for_each(|e| feature_vars(e, out)),
        ExprKind::Binary { lhs, rhs, .. } => {
            feature_vars(lhs, out);
            feature_vars(rhs, out);
        }
        ExprKind::Unary { expr, .. } => feature_vars(expr, out),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use au_lang::parse;

    fn codes(src: &str) -> Vec<String> {
        let program = parse(src).unwrap();
        let mut diags = absint_lints(&program, &BTreeSet::new());
        diags.sort_by_key(|d| (d.span.start, d.code));
        diags.into_iter().map(|d| d.code.to_owned()).collect()
    }

    #[test]
    fn dead_store_to_extracted_variable_fires_au011() {
        let src = r#"
fn main() {
    let x = input("x", 1);
    let f = x * 2;
    f = x * 3;
    au_extract("F", f);
    return 0;
}
"#;
        assert_eq!(codes(src), vec!["AU011"]);
    }

    #[test]
    fn dead_store_to_unextracted_variable_is_quiet_here() {
        // A dead store to a non-feature variable is not this family's
        // business (no extraction is affected).
        let src = r#"
fn main() {
    let x = input("x", 1);
    let junk = x * 2;
    junk = x * 3;
    return junk;
}
"#;
        assert_eq!(codes(src), Vec::<String>::new());
    }

    #[test]
    fn constant_feature_fires_au012() {
        let src = r#"
fn main() {
    let x = input("x", 1);
    let k = 5;
    au_extract("F", [x, k]);
    au_extract("Y", x * 2);
    return 0;
}
"#;
        assert_eq!(codes(src), vec!["AU012"]);
    }

    #[test]
    fn au012_yields_to_au007_on_the_same_site() {
        let src = r#"
fn main() {
    let x = input("x", 1);
    let k = 5;
    au_extract("F", [x, k]);
    au_extract("Y", x * 2);
    return 0;
}
"#;
        let program = parse(src).unwrap();
        // Pretend AU007 fired on `k`'s site inside the vector.
        let k_at = src.find("x, k]").unwrap() + 3;
        let mut au007 = BTreeSet::new();
        au007.insert((k_at, k_at + 1));
        let diags = absint_lints(&program, &au007);
        assert!(
            diags.iter().all(|d| d.code != "AU012"),
            "AU012 must yield: {diags:?}"
        );
    }

    #[test]
    fn unreachable_checkpoint_fires_au013() {
        let src = r#"
fn main() {
    let x = input("x", 1);
    if (false) {
        au_checkpoint();
    }
    return x;
}
"#;
        assert_eq!(codes(src), vec!["AU013"]);
    }

    #[test]
    fn possible_division_by_zero_fires_au014() {
        let src = r#"
fn main() {
    let x = input("x", 1);
    let d = 0;
    if (x > 0) {
        d = 1;
    }
    return x / d;
}
"#;
        assert_eq!(codes(src), vec!["AU014"]);
    }

    #[test]
    fn loop_invariant_assignment_fires_au015() {
        let src = r#"
fn main() {
    let x = input("x", 1);
    let i = 0;
    let y = 0;
    while (i < 10) {
        y = x * 2;
        i = i + 1;
    }
    return y;
}
"#;
        assert_eq!(codes(src), vec!["AU015"]);
    }

    #[test]
    fn clean_pipeline_is_quiet() {
        let src = r#"
fn main() {
    au_config("M", "DNN", "AdamOpt", 1, 8);
    let x = input("x", 1);
    au_extract("F", x);
    au_extract("Y", x * 2);
    au_nn("M", "F", "Y");
    let t = 0;
    t = au_write_back("Y");
    return t;
}
"#;
        assert_eq!(codes(src), Vec::<String>::new());
    }
}
