//! au-lint — a span-aware static verifier for the AuLang autonomization
//! protocol.
//!
//! The paper's operational semantics (Fig. 8) imposes an implicit contract
//! on the seven `au_*` primitives: models must be configured before
//! prediction, feature lists extracted before they are consumed,
//! checkpoint/restore balanced, and write-back keys must name something the
//! Engine will actually have produced. Today a violation only surfaces as a
//! runtime error deep inside the Engine; this crate surfaces it at compile
//! time, with `rustc`-style rendered diagnostics pointing at the offending
//! source span.
//!
//! Three lint families:
//!
//! - **protocol lints** (`AU001`–`AU006`, `AU009`, `AU010`): a
//!   flow-sensitive dataflow walk of the AST tracking may-configured
//!   models, may-extracted feature lists, and must-checkpoint state;
//! - **dependence lints** (`AU007`, `AU008`): reuse the static
//!   program-dependence graph from `au_lang::static_analysis`, augmented
//!   with π-list pseudo-variables that model dataflow *through* the Engine
//!   (extract → predict → write-back), to prove Algorithm 1's feature
//!   criterion `dep(w) ∩ dep(v) ≠ ∅` can never hold for an extracted
//!   feature or that a target is statically unreachable from every input;
//! - **abstract-interpretation lints** (`AU011`–`AU015`): value facts from
//!   `au_lang::absint` (interprocedural constant propagation, intervals,
//!   liveness) matched against instrumentation sites — dead stores to
//!   extracted variables, provably-constant features, unreachable
//!   checkpoint/restore, possible division by zero, and loop-invariant
//!   trace instrumentation.
//!
//! Entry points: [`lint_source`] / [`lint_program`] to collect
//! [`Diagnostic`]s, [`render`] / [`render_all`] for human output,
//! `serde_json` on [`Diagnostic`] for machine output, and [`preflight`] for
//! the interpreter's opt-in pre-run gate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod absint_lints;
mod depgraph;
mod protocol;

use au_lang::{parse, Interpreter, LangError, Program, Span};
use serde::{Deserialize, Serialize};

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Suspicious but runnable (dead extraction, unused model, …).
    Warning,
    /// The program will fail or misbehave at runtime.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// A single lint finding, locatable in the source both by 1-based
/// line/column and by byte offsets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Stable lint code (`AU001`…`AU015`).
    pub code: String,
    /// Severity of the finding.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
    /// 1-based source line of the span start.
    pub line: usize,
    /// 1-based column (in bytes) of the span start.
    pub column: usize,
    /// Byte offset of the start of the offending span.
    pub start: usize,
    /// Byte offset one past the end of the offending span.
    pub end: usize,
    /// The full source line containing the span start.
    pub snippet: String,
}

/// The lint registry: code, severity, and one-line description of every
/// lint this crate can emit (see `docs/linting.md`).
pub const LINTS: &[(&str, Severity, &str)] = &[
    (
        "AU001",
        Severity::Error,
        "prediction on a model that is never configured before this point",
    ),
    (
        "AU002",
        Severity::Error,
        "prediction whose feature list is not extracted before this point",
    ),
    (
        "AU003",
        Severity::Error,
        "write-back key that no prediction or extraction ever produces",
    ),
    (
        "AU004",
        Severity::Error,
        "au_restore not preceded by au_checkpoint on every path",
    ),
    (
        "AU005",
        Severity::Warning,
        "au_serialize in unreachable code",
    ),
    (
        "AU006",
        Severity::Warning,
        "extracted feature list that nothing ever consumes",
    ),
    (
        "AU007",
        Severity::Warning,
        "extracted feature variable with no static dependence relation to any target",
    ),
    (
        "AU008",
        Severity::Warning,
        "prediction target statically independent of every program input",
    ),
    (
        "AU009",
        Severity::Warning,
        "model configured but never used in any prediction",
    ),
    (
        "AU010",
        Severity::Warning,
        "au_config on a model that may already be configured",
    ),
    (
        "AU011",
        Severity::Warning,
        "dead store to an extracted variable — the value can never reach au_extract",
    ),
    (
        "AU012",
        Severity::Warning,
        "extracted feature that is provably constant on every execution",
    ),
    (
        "AU013",
        Severity::Warning,
        "au_checkpoint/au_restore in unreachable code",
    ),
    (
        "AU014",
        Severity::Warning,
        "division whose divisor may be zero on some execution",
    ),
    (
        "AU015",
        Severity::Warning,
        "loop-invariant assignment re-traced on every iteration",
    ),
];

/// A not-yet-located finding produced by the lint passes.
#[derive(Debug, Clone)]
pub(crate) struct RawDiag {
    pub code: &'static str,
    pub severity: Severity,
    pub span: Span,
    pub message: String,
}

/// Byte-offset → line/column mapping for one source file.
pub(crate) struct LineIndex {
    /// Byte offset of the start of each line (line 1 starts at `starts[0]`).
    starts: Vec<usize>,
}

impl LineIndex {
    pub(crate) fn new(src: &str) -> Self {
        let mut starts = vec![0];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                starts.push(i + 1);
            }
        }
        LineIndex { starts }
    }

    /// 1-based (line, column) of a byte offset.
    pub(crate) fn line_col(&self, offset: usize) -> (usize, usize) {
        let line = self.starts.partition_point(|&s| s <= offset);
        let col = offset - self.starts[line - 1] + 1;
        (line, col)
    }

    /// The text of a 1-based line, without its trailing newline.
    pub(crate) fn line_text<'s>(&self, src: &'s str, line: usize) -> &'s str {
        let start = self.starts[line - 1];
        let end = self
            .starts
            .get(line)
            .map(|&e| e.saturating_sub(1))
            .unwrap_or(src.len());
        &src[start.min(src.len())..end.max(start).min(src.len())]
    }
}

/// Lints a parsed program against its source text.
///
/// Returns findings sorted by source position then code, deduplicated by
/// (code, span) — a function called from two sites reports each of its
/// violations once.
pub fn lint_program(program: &Program, src: &str) -> Vec<Diagnostic> {
    let mut raw = protocol::protocol_lints(program);
    raw.extend(depgraph::dependence_lints(program));
    // AU012 yields to AU007 at the same site: "no dependence path to any
    // target" subsumes "constant" for an extracted feature.
    let au007_spans = raw
        .iter()
        .filter(|d| d.code == "AU007")
        .map(|d| (d.span.start, d.span.end))
        .collect();
    raw.extend(absint_lints::absint_lints(program, &au007_spans));
    raw.sort_by(|a, b| (a.span.start, a.span.end, a.code).cmp(&(b.span.start, b.span.end, b.code)));
    raw.dedup_by(|a, b| a.code == b.code && a.span == b.span);
    let index = LineIndex::new(src);
    raw.into_iter()
        .map(|d| {
            let (line, column) = index.line_col(d.span.start);
            Diagnostic {
                code: d.code.to_owned(),
                severity: d.severity,
                message: d.message,
                line,
                column,
                start: d.span.start,
                end: d.span.end,
                snippet: index.line_text(src, line).to_owned(),
            }
        })
        .collect()
}

/// Parses and lints AuLang source.
///
/// # Errors
///
/// Returns the parse/lex error if `src` is not a valid program; lint
/// findings are not errors.
pub fn lint_source(src: &str) -> Result<Vec<Diagnostic>, LangError> {
    let program = parse(src)?;
    Ok(lint_program(&program, src))
}

/// Renders one diagnostic in rustc style:
///
/// ```text
/// error[AU001]: `au_nn` on model `M` that is never configured
///   --> game.au:4:5
///    |
///  4 |     au_nn("M", "F", "Y");
///    |     ^^^^^^^^^^^^^^^^^^^^
/// ```
pub fn render(diag: &Diagnostic, filename: &str) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "{}[{}]: {}", diag.severity, diag.code, diag.message);
    let _ = writeln!(out, "  --> {filename}:{}:{}", diag.line, diag.column);
    let gutter = diag.line.to_string().len();
    let _ = writeln!(out, "{:gutter$} |", "");
    let _ = writeln!(out, "{} | {}", diag.line, diag.snippet);
    // Caret-underline the span portion that falls on the snippet line.
    let span_on_line = (diag.end - diag.start)
        .max(1)
        .min(diag.snippet.len().saturating_sub(diag.column - 1).max(1));
    let _ = writeln!(
        out,
        "{:gutter$} | {:pad$}{}",
        "",
        "",
        "^".repeat(span_on_line),
        pad = diag.column - 1
    );
    out
}

/// Renders all diagnostics plus a closing summary line. Returns an empty
/// string when there is nothing to report.
pub fn render_all(diags: &[Diagnostic], filename: &str) -> String {
    if diags.is_empty() {
        return String::new();
    }
    let mut out = String::new();
    for d in diags {
        out.push_str(&render(d, filename));
        out.push('\n');
    }
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags.len() - errors;
    out.push_str(&format!(
        "{filename}: {errors} error(s), {warnings} warning(s)\n"
    ));
    out
}

/// Serializes diagnostics as a JSON array (machine-readable `--format json`
/// output). The schema is documented in `docs/linting.md` and round-trips
/// through [`diagnostics_from_json`].
pub fn diagnostics_to_json(diags: &[Diagnostic]) -> String {
    serde_json::to_string(&diags.to_vec()).expect("diagnostics serialize infallibly")
}

/// Parses the JSON produced by [`diagnostics_to_json`].
///
/// # Errors
///
/// Returns the underlying deserialization error message.
pub fn diagnostics_from_json(json: &str) -> Result<Vec<Diagnostic>, String> {
    serde_json::from_str(json).map_err(|e| e.to_string())
}

/// Why [`preflight`] refused to hand out an interpreter.
#[derive(Debug)]
pub enum PreflightError {
    /// The source failed to lex/parse.
    Lang(LangError),
    /// Error-severity lints fired; all findings (including warnings) are
    /// included for reporting.
    Lint(Vec<Diagnostic>),
}

impl std::fmt::Display for PreflightError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PreflightError::Lang(e) => write!(f, "{e}"),
            PreflightError::Lint(diags) => {
                let errors = diags
                    .iter()
                    .filter(|d| d.severity == Severity::Error)
                    .count();
                write!(f, "preflight found {errors} protocol error(s)")
            }
        }
    }
}

impl std::error::Error for PreflightError {}

impl From<LangError> for PreflightError {
    fn from(e: LangError) -> Self {
        PreflightError::Lang(e)
    }
}

/// Compiles `src` into an [`Interpreter`] only if it passes the verifier:
/// the opt-in pre-flight gate for the interpreter (`aulang run
/// --preflight`).
///
/// Returns the ready interpreter together with any warning-severity
/// findings (the caller decides whether to surface them).
///
/// # Errors
///
/// [`PreflightError::Lang`] on parse failure; [`PreflightError::Lint`]
/// (carrying every finding) if any error-severity lint fires.
pub fn preflight(src: &str) -> Result<(Interpreter, Vec<Diagnostic>), PreflightError> {
    let program = parse(src)?;
    let diags = lint_program(&program, src);
    if diags.iter().any(|d| d.severity == Severity::Error) {
        return Err(PreflightError::Lint(diags));
    }
    Ok((Interpreter::with_program(program), diags))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_index_maps_offsets() {
        let src = "ab\ncde\nf";
        let idx = LineIndex::new(src);
        assert_eq!(idx.line_col(0), (1, 1));
        assert_eq!(idx.line_col(3), (2, 1));
        assert_eq!(idx.line_col(5), (2, 3));
        assert_eq!(idx.line_col(7), (3, 1));
        assert_eq!(idx.line_text(src, 1), "ab");
        assert_eq!(idx.line_text(src, 2), "cde");
        assert_eq!(idx.line_text(src, 3), "f");
    }

    #[test]
    fn clean_program_yields_no_diagnostics() {
        let src = r#"
fn main() {
    au_config("M", "DNN", "AdamOpt", 1, 8);
    let x = input("x", 1);
    au_extract("F", x);
    au_extract("Y", x * 2);
    au_nn("M", "F", "Y");
    let t = 0;
    t = au_write_back("Y");
    return t;
}
"#;
        let diags = lint_source(src).unwrap();
        assert!(diags.is_empty(), "unexpected diagnostics: {diags:?}");
    }

    #[test]
    fn render_points_at_the_span() {
        let src = "fn main() {\n    au_restore();\n    return 0;\n}\n";
        let diags = lint_source(src).unwrap();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "AU004");
        let text = render(&diags[0], "t.au");
        assert!(text.contains("error[AU004]"), "{text}");
        assert!(text.contains("--> t.au:2:5"), "{text}");
        assert!(text.contains("au_restore()"), "{text}");
        assert!(text.contains("^^^^"), "{text}");
    }

    #[test]
    fn json_round_trips() {
        let src = "fn main() {\n    au_restore();\n    return 0;\n}\n";
        let diags = lint_source(src).unwrap();
        let json = diagnostics_to_json(&diags);
        let back = diagnostics_from_json(&json).unwrap();
        assert_eq!(diags, back);
    }

    #[test]
    fn preflight_blocks_errors_and_passes_clean_programs() {
        let bad = "fn main() {\n    au_restore();\n    return 0;\n}\n";
        match preflight(bad) {
            Err(PreflightError::Lint(diags)) => {
                assert!(diags.iter().any(|d| d.code == "AU004"));
            }
            other => panic!("expected lint failure, got {other:?}"),
        }

        let good = "fn main() { let x = 1; return x + 1; }";
        let (mut interp, warnings) = preflight(good).unwrap();
        assert!(warnings.is_empty());
        assert_eq!(interp.run().unwrap().as_num(), Some(2.0));
    }

    #[test]
    fn preflight_allows_warnings_through() {
        // Dead extraction is a warning, not an error: run is permitted.
        let src = "fn main() { au_extract(\"J\", 1); return 0; }";
        let (_, warnings) = preflight(src).unwrap();
        assert_eq!(warnings.len(), 1);
        assert_eq!(warnings[0].code, "AU006");
    }

    #[test]
    fn lint_registry_is_consistent() {
        assert_eq!(LINTS.len(), 15);
        for (i, (code, _, _)) in LINTS.iter().enumerate() {
            assert_eq!(*code, format!("AU{:03}", i + 1));
        }
    }
}
