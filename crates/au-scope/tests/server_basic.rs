//! Endpoint smoke tests against a private (leaked) recorder — no engine
//! attached, so these exercise the plane's telemetry-only half and run
//! identically with `--no-default-features`.

use au_telemetry::Recorder;
use serde::Value;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One full GET round trip; returns the raw response (head + body).
fn get(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").expect("send");
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("read");
    out
}

fn body_of(response: &str) -> &str {
    response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .unwrap_or(response)
}

fn leaked_recorder() -> &'static Recorder {
    let rec: &'static Recorder = Box::leak(Box::new(Recorder::new()));
    rec.enable();
    rec
}

fn server_over(rec: &'static Recorder) -> au_scope::ScopeServer {
    au_scope::ScopeServer::builder()
        .recorder(rec)
        .bind("127.0.0.1:0")
        .start()
        .expect("start scope server")
}

#[test]
fn metrics_exposes_counters_gauges_and_histograms() {
    let rec = leaked_recorder();
    rec.counter("au_core.predictions_served").add(7);
    rec.gauge("au_core.last_loss").set(0.25);
    rec.histogram("au_core.predict").record(1_500);
    let server = server_over(rec);

    let resp = get(server.local_addr(), "/metrics");
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
    let body = body_of(&resp);
    assert!(
        body.contains("# TYPE au_core_predictions_served_total counter"),
        "{body}"
    );
    assert!(
        body.contains("au_core_predictions_served_total 7"),
        "{body}"
    );
    assert!(body.contains("# TYPE au_core_last_loss gauge"), "{body}");
    assert!(body.contains("au_core_last_loss 0.25"), "{body}");
    assert!(
        body.contains("# TYPE au_core_predict_seconds histogram"),
        "{body}"
    );
    assert!(
        body.contains("au_core_predict_seconds_bucket{le=\"+Inf\"} 1"),
        "{body}"
    );
    assert!(body.contains("au_core_predict_seconds_count 1"), "{body}");
    // Plane meta series are always present.
    assert!(body.contains("au_scope_uptime_seconds"), "{body}");
    assert!(body.contains("au_telemetry_spans_total"), "{body}");
}

#[test]
fn health_and_snapshot_are_valid_json() {
    let rec = leaked_recorder();
    rec.counter("c").add(3);
    rec.histogram("h").record(10);
    let server = server_over(rec);

    let health = get(server.local_addr(), "/health");
    assert!(health.starts_with("HTTP/1.1 200"), "{health}");
    let parsed: Value = serde_json::from_str(body_of(&health)).expect("health parses");
    assert_eq!(
        parsed.field("status").unwrap(),
        &Value::Str("ok".to_owned())
    );
    assert!(parsed.field("engine").is_ok(), "engine key present");

    let snap = get(server.local_addr(), "/snapshot.json");
    let parsed: Value = serde_json::from_str(body_of(&snap)).expect("snapshot parses");
    let counters = parsed.field("counters").expect("counters");
    assert_eq!(counters.field("c").unwrap().as_f64().unwrap(), 3.0);
    let h = parsed.field("histograms").unwrap().field("h").expect("h");
    assert_eq!(h.field("count").unwrap().as_f64().unwrap(), 1.0);
}

#[test]
fn dashboard_unknown_path_and_bad_method() {
    let rec = leaked_recorder();
    let server = server_over(rec);
    let addr = server.local_addr();

    let home = get(addr, "/");
    assert!(home.starts_with("HTTP/1.1 200"), "{home}");
    assert!(home.contains("text/html"), "{home}");
    assert!(body_of(&home).contains("au-scope"), "dashboard body");

    let missing = get(addr, "/nope");
    assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(stream, "POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    assert!(out.starts_with("HTTP/1.1 405"), "{out}");
}

#[test]
fn events_streams_spans_and_alerts() {
    let rec = leaked_recorder();
    let server = server_over(rec);

    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    write!(stream, "GET /events HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .unwrap();

    // Activity after the stream connects must show up as SSE frames.
    {
        let _s = rec.span("demo_span");
        std::thread::sleep(Duration::from_millis(1));
    }
    rec.alert(au_telemetry::Level::Warn, "demo", "drift above threshold");

    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let mut data = Vec::new();
    let mut buf = [0u8; 4096];
    while std::time::Instant::now() < deadline {
        let text = String::from_utf8_lossy(&data);
        if text.contains("event: span") && text.contains("event: alert") {
            break;
        }
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => data.extend_from_slice(&buf[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(e) => panic!("sse read failed: {e}"),
        }
    }
    let text = String::from_utf8_lossy(&data);
    assert!(text.contains("text/event-stream"), "{text}");
    assert!(text.contains("event: hello"), "{text}");
    assert!(text.contains("event: span"), "{text}");
    assert!(text.contains("\"name\":\"demo_span\""), "{text}");
    assert!(text.contains("event: alert"), "{text}");
    assert!(text.contains("drift above threshold"), "{text}");

    server.shutdown();
    server.shutdown(); // idempotent
}
