//! The au-prof acceptance test: run a real workload (batched predictions
//! fanning out across au-par, plus a mid-flight retrain) against a live
//! ScopeServer, then fetch `/profile.json` and `/flamegraph` and check the
//! attribution is *exact*: for every completed trace the signed exclusive
//! times sum to the root's inclusive time, and every collapsed stack
//! resolves segment-by-segment to real span names.
//!
//! Uses the process-global recorder (the real deployment shape), so this
//! file holds exactly one test.

#![cfg(feature = "engine")]

use au_core::{Engine, Mode, ModelConfig};
use serde::Value;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

const BATCH_ROWS: usize = 48;
const TRAIN_ROWS: usize = 16;

fn get(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").expect("send");
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("read");
    out
}

fn body_of(response: &str) -> &str {
    response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .unwrap_or(response)
}

fn deployed_engine() -> Engine {
    let mut e = Engine::new(Mode::Train);
    e.au_config("prof", ModelConfig::dnn(&[16]).with_learning_rate(0.05))
        .expect("config");
    let xs: Vec<Vec<f64>> = (0..32).map(|i| vec![f64::from(i) / 32.0]).collect();
    let ys: Vec<Vec<f64>> = xs.iter().map(|x| vec![2.0 * x[0]]).collect();
    e.train_supervised("prof", &xs, &ys, 10).expect("train");
    e.set_mode(Mode::Test);
    e
}

#[test]
fn profile_endpoints_attribute_a_live_workload_exactly() {
    let rec = au_telemetry::global();
    rec.reset();
    au_telemetry::enable();

    let mut engine = deployed_engine();
    let handle = engine.handle();
    let server = au_scope::ScopeServer::builder()
        .engine(handle.clone())
        .bind("127.0.0.1:0")
        .start()
        .expect("start scope server");
    let addr = server.local_addr();

    // The workload. Batched predictions fan out across au-par (worker
    // spans parent under the batch span — overlapping children, the case
    // that forces signed exclusive time), and the monitored retrain
    // produces nested predict spans under its train_supervised span.
    let batch: Vec<Vec<f64>> = (0..BATCH_ROWS).map(|i| vec![i as f64 / 64.0]).collect();
    for _ in 0..4 {
        handle.predict_batch("prof", &batch).expect("predict_batch");
    }
    handle.set_monitor_config(au_core::monitor::MonitorConfig::default());
    engine.set_mode(Mode::Train);
    let xs: Vec<Vec<f64>> = (0..TRAIN_ROWS).map(|i| vec![i as f64 / 16.0]).collect();
    let ys: Vec<Vec<f64>> = xs.iter().map(|x| vec![x[0] * 0.5]).collect();
    engine
        .train_supervised("prof", &xs, &ys, 2)
        .expect("retrain");
    engine.set_mode(Mode::Test);
    for i in 0..25 {
        handle
            .predict("prof", &[f64::from(i) / 25.0])
            .expect("predict");
    }

    // ---- /profile.json ----
    let resp = get(addr, "/profile.json");
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
    assert!(resp.contains("application/json"), "{resp}");
    let profile: Value = serde_json::from_str(body_of(&resp)).expect("profile parses");

    let first_traces = profile.field("traces").unwrap().as_f64().unwrap();
    assert!(first_traces > 0.0, "no traces attributed");
    assert_eq!(
        profile.field("dropped_spans").unwrap().as_f64().unwrap(),
        0.0
    );

    // Every span name the engine emits shows up with sane stats.
    let Value::Object(names) = profile.field("names").unwrap() else {
        panic!("names not an object");
    };
    let name_set: std::collections::HashSet<&str> = names.iter().map(|(k, _)| k.as_str()).collect();
    for expected in ["predict", "predict_batch", "train_supervised"] {
        assert!(name_set.contains(expected), "missing span name {expected}");
    }
    for (name, stat) in names {
        let calls = stat.field("calls").unwrap().as_f64().unwrap();
        let inclusive = stat.field("inclusive_ns").unwrap().as_f64().unwrap();
        assert!(calls >= 1.0, "{name}: zero calls");
        assert!(inclusive >= 0.0, "{name}: negative inclusive");
    }

    // Every collapsed stack resolves, segment by segment, to real names.
    let Value::Array(stacks) = profile.field("stacks").unwrap() else {
        panic!("stacks not a list");
    };
    assert!(!stacks.is_empty(), "no collapsed stacks");
    let mut nested_stacks = 0usize;
    for entry in stacks {
        let Value::Str(stack) = entry.field("stack").unwrap() else {
            panic!("stack not a string");
        };
        for segment in stack.split(';') {
            assert!(
                name_set.contains(segment),
                "stack {stack:?} has unknown segment {segment:?}"
            );
        }
        if stack.contains(';') {
            nested_stacks += 1;
        }
    }
    assert!(nested_stacks > 0, "workload produced no nested stacks");

    // The telescoping identity, on live data: per trace, signed exclusive
    // times sum *exactly* to the root's inclusive time.
    let Value::Array(recents) = profile.field("recent_traces").unwrap() else {
        panic!("recent_traces not a list");
    };
    assert!(!recents.is_empty(), "no recent traces");
    for t in recents {
        let inclusive = t.field("inclusive_ns").unwrap().as_f64().unwrap();
        let exclusive_sum = t.field("exclusive_sum_ns").unwrap().as_f64().unwrap();
        assert_eq!(
            inclusive, exclusive_sum,
            "telescoping identity violated for trace {t:?}"
        );
        assert!(t.field("spans").unwrap().as_f64().unwrap() >= 1.0);
    }

    // ---- /flamegraph ----
    let fg = get(addr, "/flamegraph");
    assert!(fg.starts_with("HTTP/1.1 200"), "{fg}");
    assert!(fg.contains("image/svg+xml"), "{fg}");
    let svg = body_of(&fg);
    assert!(svg.starts_with("<svg"), "not an svg: {}", &svg[..60]);
    assert!(svg.contains("predict"), "flamegraph misses workload spans");
    assert!(!svg.contains("<script"), "flamegraph must be static");

    // ---- incremental: more work, more traces, identity still exact ----
    for i in 0..10 {
        handle
            .predict("prof", &[f64::from(i) / 10.0])
            .expect("predict");
    }
    let again: Value =
        serde_json::from_str(body_of(&get(addr, "/profile.json"))).expect("second profile");
    let second_traces = again.field("traces").unwrap().as_f64().unwrap();
    assert!(
        second_traces >= first_traces + 10.0,
        "profiler did not fold the new traces: {second_traces} vs {first_traces}"
    );
    let Value::Array(recents) = again.field("recent_traces").unwrap() else {
        panic!("recent_traces not a list");
    };
    for t in recents {
        assert_eq!(
            t.field("inclusive_ns").unwrap().as_f64().unwrap(),
            t.field("exclusive_sum_ns").unwrap().as_f64().unwrap(),
        );
    }

    au_telemetry::disable();
    server.shutdown();
}
