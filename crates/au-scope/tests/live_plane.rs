//! The live-plane acceptance test: a deployed engine serves 8 threads ×
//! 125 predictions while one thread scrapes `/metrics` and another tails
//! `/events`, concurrently. Afterwards the scraped state must agree with
//! the work actually done — counter totals match, and every span the SSE
//! stream delivered has a parent resolving to a span in the same trace.
//!
//! Uses the process-global recorder (the real deployment shape), so this
//! file holds exactly one test.

#![cfg(feature = "engine")]

use au_core::{Engine, Mode, ModelConfig};
use serde::Value;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;
use std::time::Duration;

const THREADS: usize = 8;
const PER_THREAD: usize = 125;
const BATCH_ROWS: usize = 32;
/// Rows in the mid-flight training pass; with monitoring on, the baseline
/// pass predicts each row once *inside* the `train_supervised` span,
/// producing the nested spans the parent-link check needs.
const MID_TRAIN_ROWS: usize = 16;

fn get(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").expect("send");
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("read");
    out
}

fn body_of(response: &str) -> &str {
    response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .unwrap_or(response)
}

/// Extracts the value of an un-labeled metric line from an exposition body.
fn metric_value(body: &str, metric: &str) -> Option<f64> {
    body.lines()
        .find(|l| l.starts_with(metric) && l.as_bytes().get(metric.len()) == Some(&b' '))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

fn deployed_engine() -> Engine {
    let mut e = Engine::new(Mode::Train);
    e.au_config("live", ModelConfig::dnn(&[16]).with_learning_rate(0.05))
        .expect("config");
    let xs: Vec<Vec<f64>> = (0..32).map(|i| vec![f64::from(i) / 32.0]).collect();
    let ys: Vec<Vec<f64>> = xs.iter().map(|x| vec![2.0 * x[0]]).collect();
    e.train_supervised("live", &xs, &ys, 10).expect("train");
    e.set_mode(Mode::Test);
    e
}

#[test]
fn concurrent_serving_scraping_and_streaming_agree() {
    let rec = au_telemetry::global();
    rec.reset();
    au_telemetry::enable();

    let mut engine = deployed_engine();
    let handle = engine.handle();
    let server = au_scope::ScopeServer::builder()
        .engine(handle.clone())
        .bind("127.0.0.1:0")
        .start()
        .expect("start scope server");
    let addr = server.local_addr();

    let stop = AtomicBool::new(false);
    let mut sse_bytes = Vec::new();
    let mut scrapes = 0u32;

    thread::scope(|scope| {
        // SSE tail: connect before any serving so every serving span
        // completes after the stream's offsets were seeded.
        let sse_out = &mut sse_bytes;
        let stop_ref = &stop;
        let sse = scope.spawn(move || {
            let mut stream = TcpStream::connect(addr).expect("sse connect");
            write!(stream, "GET /events HTTP/1.1\r\nHost: t\r\n\r\n").expect("sse send");
            stream
                .set_read_timeout(Some(Duration::from_millis(50)))
                .unwrap();
            let mut buf = [0u8; 16 * 1024];
            loop {
                match stream.read(&mut buf) {
                    Ok(0) => break,
                    Ok(n) => sse_out.extend_from_slice(&buf[..n]),
                    Err(e)
                        if matches!(
                            e.kind(),
                            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                        ) =>
                    {
                        if stop_ref.load(Ordering::Relaxed) {
                            break;
                        }
                    }
                    Err(_) => break,
                }
            }
        });

        // Give the SSE handler a moment to seed its offsets before spans
        // start completing.
        thread::sleep(Duration::from_millis(150));

        // Concurrent scraper: every exposition fetched mid-flight must be
        // well-formed.
        let scrape_count = &mut scrapes;
        let scraper = scope.spawn(move || {
            while !stop_ref.load(Ordering::Relaxed) {
                let resp = get(addr, "/metrics");
                assert!(resp.starts_with("HTTP/1.1 200"), "scrape failed: {resp}");
                assert!(body_of(&resp).contains("# TYPE"), "malformed exposition");
                *scrape_count += 1;
                thread::sleep(Duration::from_millis(20));
            }
        });

        // The workload: 8 threads × 125 predictions through handle clones.
        let workers: Vec<_> = (0..THREADS)
            .map(|t| {
                let h = handle.clone();
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        let x = [f64::from((t * PER_THREAD + i) as u32 % 128) / 128.0];
                        h.predict("live", &x).expect("predict");
                    }
                })
            })
            .collect();

        // Mixed load on the main thread while workers run: one batched
        // call (fans out across au-par, exercising context propagation)
        // and one training pass (produces *nested* spans for the parent-
        // link check below).
        let batch: Vec<Vec<f64>> = (0..BATCH_ROWS).map(|i| vec![i as f64 / 64.0]).collect();
        handle.predict_batch("live", &batch).expect("predict_batch");
        // Monitoring makes the training pass below predict each row once
        // for its quality baseline — nested `predict` spans under the
        // `train_supervised` span.
        handle.set_monitor_config(au_core::monitor::MonitorConfig::default());
        engine.set_mode(Mode::Train);
        let xs: Vec<Vec<f64>> = (0..MID_TRAIN_ROWS).map(|i| vec![i as f64 / 16.0]).collect();
        let ys: Vec<Vec<f64>> = xs.iter().map(|x| vec![x[0] * 0.5]).collect();
        engine
            .train_supervised("live", &xs, &ys, 2)
            .expect("mid-flight train");
        engine.set_mode(Mode::Test);

        for w in workers {
            w.join().expect("worker");
        }
        // Let the SSE poll loop drain everything the workload produced
        // (poll period is 100ms; two periods is enough for the tail).
        thread::sleep(Duration::from_millis(400));
        stop.store(true, Ordering::Relaxed);
        scraper.join().expect("scraper");
        sse.join().expect("sse reader");
    });

    assert!(scrapes > 0, "scraper never completed a fetch");
    // Worker predicts + the batched call + the monitoring baseline pass
    // (one predict per mid-flight training row).
    let expected_served = (THREADS * PER_THREAD + BATCH_ROWS + MID_TRAIN_ROWS) as f64;

    // 1. Final exposition: counter totals match the work done.
    let final_metrics = get(addr, "/metrics");
    let body = body_of(&final_metrics);
    assert_eq!(
        metric_value(body, "au_core_predictions_served_total"),
        Some(expected_served),
        "{body}"
    );
    assert!(
        metric_value(body, "au_core_predict_seconds_count") >= Some((THREADS * PER_THREAD) as f64),
        "predict histogram undercounts"
    );
    assert!(body.contains("au_engine_mode 1"), "engine gauge missing");

    // 2. /health agrees with the engine.
    let health: Value = serde_json::from_str(body_of(&get(addr, "/health"))).expect("health");
    let engine_info = health.field("engine").expect("engine block");
    assert_eq!(
        engine_info.field("mode").unwrap(),
        &Value::Str("TS".to_owned())
    );
    let Value::Array(models) = engine_info.field("models").unwrap() else {
        panic!("models not a list");
    };
    assert!(
        models.contains(&Value::Str("live".to_owned())),
        "{models:?}"
    );
    let Value::Array(shards) = engine_info.field("registry_shards").unwrap() else {
        panic!("shards not a list");
    };
    let total_models: f64 = shards.iter().map(|v| v.as_f64().unwrap()).sum();
    assert_eq!(total_models, 1.0, "one model across all shards");

    // 3. /snapshot.json sees the same counter total.
    let snap: Value = serde_json::from_str(body_of(&get(addr, "/snapshot.json"))).expect("snap");
    assert_eq!(
        snap.field("counters")
            .unwrap()
            .field("au_core.predictions_served")
            .unwrap()
            .as_f64()
            .unwrap(),
        expected_served
    );

    // 4. Every span the SSE stream delivered: parent links resolve to a
    //    span in the same trace, and all the serving spans arrived.
    let text = String::from_utf8_lossy(&sse_bytes);
    assert!(text.contains("event: hello"), "no hello frame");
    let spans: Vec<Value> = text
        .lines()
        .zip(text.lines().skip(1))
        .filter(|(ev, _)| *ev == "event: span")
        .filter_map(|(_, data)| data.strip_prefix("data: "))
        .map(|json| serde_json::from_str(json).expect("span json"))
        .collect();
    let predict_spans = spans
        .iter()
        .filter(|s| s.field("name").unwrap() == &Value::Str("predict".to_owned()))
        .count();
    assert_eq!(
        predict_spans,
        THREADS * PER_THREAD + MID_TRAIN_ROWS,
        "SSE stream missed predict spans"
    );
    let ids: std::collections::HashMap<u64, u64> = spans
        .iter()
        .map(|s| {
            (
                s.field("span").unwrap().as_f64().unwrap() as u64,
                s.field("trace").unwrap().as_f64().unwrap() as u64,
            )
        })
        .collect();
    let mut linked = 0usize;
    for s in &spans {
        let parent = s.field("parent").unwrap().as_f64().unwrap() as u64;
        if parent == 0 {
            continue; // trace root
        }
        let trace = s.field("trace").unwrap().as_f64().unwrap() as u64;
        let parent_trace = ids.get(&parent).unwrap_or_else(|| {
            panic!("span {s:?} has dangling parent {parent}");
        });
        assert_eq!(*parent_trace, trace, "parent in a different trace: {s:?}");
        linked += 1;
    }
    assert!(
        linked > 0,
        "workload produced no nested spans; parent-link check vacuous"
    );

    server.shutdown();
}
