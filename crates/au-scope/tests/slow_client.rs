//! A stalled SSE client must not wedge the plane. The `/events` writer
//! buffers at most one burst in process and relies on the per-connection
//! socket timeout to abandon a client that stops reading: while one
//! connection is stalled with full socket buffers, every other endpoint
//! keeps answering, and the stalled connection itself is closed once a
//! write blocks past the configured timeout rather than pinned forever.

use au_telemetry::Recorder;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Spans carry a fat payload so each SSE burst moves megabytes: the
/// kernel will happily autotune loopback buffers into the tens of MB, so
/// a stalled client only blocks the writer once that much has been
/// queued. The flood thread resets the recorder each cycle to keep the
/// process-side span buffer bounded while the stream keeps producing.
const PAD_BYTES: usize = 4096;
const SPANS_PER_CYCLE: usize = 512;

fn get(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").expect("send");
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("read");
    out
}

fn leaked_recorder() -> &'static Recorder {
    let rec: &'static Recorder = Box::leak(Box::new(Recorder::new()));
    rec.enable();
    rec
}

#[test]
fn stalled_sse_client_does_not_wedge_the_plane() {
    let rec = leaked_recorder();
    let server = au_scope::ScopeServer::builder()
        .recorder(rec)
        .io_timeout(Duration::from_millis(250))
        .bind("127.0.0.1:0")
        .start()
        .expect("start scope server");
    let addr = server.local_addr();

    // Open an SSE stream, read just the response head + hello frame, then
    // stop reading entirely — the classic stuck downstream.
    let mut stalled = TcpStream::connect(addr).expect("connect sse");
    write!(stalled, "GET /events HTTP/1.1\r\nHost: test\r\n\r\n").expect("send");
    stalled
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut head = [0u8; 256];
    let n = stalled.read(&mut head).expect("read hello");
    assert!(n > 0, "no hello frame");
    assert!(
        std::str::from_utf8(&head[..n])
            .unwrap_or("")
            .starts_with("HTTP/1.1 200"),
        "sse stream refused"
    );

    // Keep the recorder producing faster than the stream can drain for as
    // long as the test runs, so the writer is guaranteed to fill both
    // kernel socket buffers and block. Memory stays bounded: each cycle
    // is ~2 MB of spans and the reset drops the previous cycle.
    let stop_flood = Arc::new(AtomicBool::new(false));
    let flood = {
        let stop = Arc::clone(&stop_flood);
        std::thread::spawn(move || {
            let pad = "x".repeat(PAD_BYTES);
            while !stop.load(Ordering::Relaxed) {
                // Reset FIRST, then record, then sleep past the stream's
                // poll interval: the buffer sits full while the writer
                // samples it, so every poll moves a whole burst.
                rec.reset();
                for _ in 0..SPANS_PER_CYCLE {
                    let _g = rec.span_with("flood", &[("pad", pad.clone())]);
                }
                std::thread::sleep(Duration::from_millis(100));
            }
        })
    };

    // While the stalled connection jams up, the plane must keep serving:
    // each scrape runs on its own handler thread and shares nothing
    // blocking with the SSE writer.
    for _ in 0..5 {
        let started = Instant::now();
        let resp = get(addr, "/metrics");
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "metrics scrape took {:?} behind a stalled client",
            started.elapsed()
        );
        std::thread::sleep(Duration::from_millis(100));
    }

    // Leave the client stalled long enough for the buffers to fill at
    // stream rate and the 250 ms write timeout to trip.
    std::thread::sleep(Duration::from_secs(4));

    // Now drain. If the server abandoned the connection, only the bytes
    // already queued in the kernel arrive, ending in EOF or a reset. If
    // the timeout path were broken the revived stream would keep feeding
    // the flood forever and the deadline below would expire.
    stalled
        .set_read_timeout(Some(Duration::from_millis(500)))
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut sink = [0u8; 64 * 1024];
    let closed = loop {
        if Instant::now() > deadline {
            break false;
        }
        match stalled.read(&mut sink) {
            Ok(0) => break true,
            Ok(_) => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(_) => break true, // reset/aborted both mean "abandoned"
        }
    };
    assert!(closed, "server never abandoned the stalled SSE connection");

    // And the plane is still healthy afterwards.
    stop_flood.store(true, Ordering::Relaxed);
    flood.join().expect("flood thread");
    let resp = get(addr, "/metrics");
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
    server.shutdown();
}
