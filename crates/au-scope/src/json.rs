//! A tiny push-style JSON writer.
//!
//! The plane renders JSON by hand rather than pulling a serialization
//! framework into the telemetry dependency tree: every payload here is a
//! flat composition of objects, arrays, strings, and numbers, and the
//! writer keeps the escaping rules in exactly one place.

/// Appends `s` as a JSON string literal (with quotes) onto `out`.
pub(crate) fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends an `f64` as a JSON number; non-finite values (which JSON cannot
/// represent) become `null`.
pub(crate) fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// Appends `"key":` (for building objects field by field).
pub(crate) fn push_key(out: &mut String, key: &str) {
    push_str(out, key);
    out.push(':');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_escape_controls_and_quotes() {
        let mut out = String::new();
        push_str(&mut out, "a\"b\\c\nd\te\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut out = String::new();
            push_f64(&mut out, v);
            assert_eq!(out, "null");
        }
        let mut out = String::new();
        push_f64(&mut out, 1.5);
        assert_eq!(out, "1.5");
    }
}
