//! `/health` and `/snapshot.json`: JSON views of the plane.
//!
//! `/health` is the small, cheap endpoint a load balancer or smoke test
//! polls; `/snapshot.json` is the full dump the dashboard fetches once at
//! load before tailing `/events`.

use crate::json::{push_f64, push_key, push_str};
use crate::Plane;
use std::fmt::Write as _;

/// Renders the `/health` payload: plane liveness plus (with an engine
/// attached) mode, model counts, degraded set, and registry shard
/// occupancy.
pub(crate) fn health_json(plane: &Plane) -> String {
    let mut out = String::with_capacity(256);
    out.push('{');
    push_key(&mut out, "status");
    push_str(&mut out, "ok");
    out.push(',');
    push_key(&mut out, "uptime_seconds");
    push_f64(&mut out, plane.started.elapsed().as_secs_f64());
    out.push(',');
    push_key(&mut out, "recorder_enabled");
    out.push_str(if plane.recorder.is_enabled() {
        "true"
    } else {
        "false"
    });
    out.push(',');
    push_key(&mut out, "spans");
    let _ = write!(out, "{}", plane.recorder.span_count());
    out.push(',');
    push_key(&mut out, "events");
    let _ = write!(out, "{}", plane.recorder.event_count());
    out.push(',');
    push_key(&mut out, "alerts");
    let _ = write!(out, "{}", plane.recorder.alert_count());
    append_engine_health(&mut out, plane);
    out.push('}');
    out
}

#[cfg(feature = "engine")]
fn append_engine_health(out: &mut String, plane: &Plane) {
    let Some(engine) = &plane.engine else {
        out.push(',');
        push_key(out, "engine");
        out.push_str("null");
        return;
    };
    out.push(',');
    push_key(out, "engine");
    out.push('{');
    push_key(out, "mode");
    push_str(
        out,
        match engine.mode() {
            au_core::Mode::Train => "TR",
            au_core::Mode::Test => "TS",
        },
    );
    out.push(',');
    push_key(out, "models");
    push_str_list(out, &engine.model_names());
    out.push(',');
    push_key(out, "degraded");
    push_str_list(out, &engine.degraded_models());
    out.push(',');
    push_key(out, "registry_shards");
    out.push('[');
    for (i, n) in engine.registry_shard_sizes().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{n}");
    }
    out.push(']');
    out.push('}');
}

#[cfg(not(feature = "engine"))]
fn append_engine_health(out: &mut String, _plane: &Plane) {
    out.push(',');
    push_key(out, "engine");
    out.push_str("null");
}

#[cfg(feature = "engine")]
fn push_str_list(out: &mut String, items: &[String]) {
    out.push('[');
    for (i, s) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_str(out, s);
    }
    out.push(']');
}

/// Renders the `/snapshot.json` payload: every counter, gauge, and
/// histogram summary, monitor reports, and the recorder's reset epoch (so
/// a reader can correlate with `/events` restarts).
pub(crate) fn snapshot_json(plane: &Plane) -> String {
    let rec = plane.recorder;
    let mut out = String::with_capacity(4096);
    out.push('{');
    push_key(&mut out, "reset_epoch");
    let _ = write!(out, "{}", rec.reset_epoch());
    out.push(',');
    push_key(&mut out, "spans");
    let _ = write!(out, "{}", rec.span_count());
    out.push(',');
    push_key(&mut out, "events");
    let _ = write!(out, "{}", rec.event_count());
    out.push(',');
    push_key(&mut out, "alerts");
    let _ = write!(out, "{}", rec.alert_count());
    out.push(',');
    push_key(&mut out, "dropped");
    let _ = write!(out, "{}", rec.dropped());

    out.push(',');
    push_key(&mut out, "counters");
    out.push('{');
    for (i, (name, v)) in rec.counters().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_key(&mut out, name);
        let _ = write!(out, "{v}");
    }
    out.push('}');

    out.push(',');
    push_key(&mut out, "gauges");
    out.push('{');
    for (i, (name, v)) in rec.gauges().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_key(&mut out, name);
        push_f64(&mut out, *v);
    }
    out.push('}');

    out.push(',');
    push_key(&mut out, "histograms");
    out.push('{');
    for (i, (name, h)) in rec.histograms().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_key(&mut out, name);
        out.push('{');
        push_key(&mut out, "count");
        let _ = write!(out, "{}", h.count);
        out.push(',');
        push_key(&mut out, "mean_ns");
        push_f64(&mut out, h.mean());
        out.push(',');
        push_key(&mut out, "p50_ns");
        let _ = write!(out, "{}", h.percentile(50.0));
        out.push(',');
        push_key(&mut out, "p99_ns");
        let _ = write!(out, "{}", h.percentile(99.0));
        out.push(',');
        push_key(&mut out, "max_ns");
        let _ = write!(out, "{}", if h.count == 0 { 0 } else { h.max });
        out.push('}');
    }
    out.push('}');

    append_engine_snapshot(&mut out, plane);
    out.push('}');
    out
}

#[cfg(feature = "engine")]
fn append_engine_snapshot(out: &mut String, plane: &Plane) {
    let Some(engine) = &plane.engine else {
        out.push(',');
        push_key(out, "monitor");
        out.push_str("null");
        return;
    };
    out.push(',');
    push_key(out, "monitor");
    out.push('{');
    for (i, (model, r)) in engine.monitor_reports().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_key(out, model);
        out.push('{');
        push_key(out, "observations");
        let _ = write!(out, "{}", r.observations);
        out.push(',');
        push_key(out, "rolling_mae");
        match r.rolling_mae {
            Some(v) => push_f64(out, v),
            None => out.push_str("null"),
        }
        out.push(',');
        push_key(out, "drift_score");
        match r.drift_score {
            Some(v) => push_f64(out, v),
            None => out.push_str("null"),
        }
        out.push(',');
        push_key(out, "flight_records");
        let _ = write!(out, "{}", r.flight_records);
        out.push(',');
        push_key(out, "alerts_warn");
        let _ = write!(out, "{}", r.alerts_warn);
        out.push(',');
        push_key(out, "alerts_critical");
        let _ = write!(out, "{}", r.alerts_critical);
        out.push(',');
        push_key(out, "degraded");
        out.push_str(if r.degraded { "true" } else { "false" });
        out.push('}');
    }
    out.push('}');
}

#[cfg(not(feature = "engine"))]
fn append_engine_snapshot(out: &mut String, _plane: &Plane) {
    out.push(',');
    push_key(out, "monitor");
    out.push_str("null");
}
