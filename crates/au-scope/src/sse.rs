//! `/events`: a Server-Sent Events stream over the recorder.
//!
//! The stream is poll-based: the handler thread samples the recorder every
//! [`POLL`] and pushes whatever arrived since its saved offsets, so the hot
//! path never knows a listener exists. Event types:
//!
//! * `span`    — one completed span (name, trace/span/parent ids, timing)
//! * `alert`   — a monitoring alert ([`au_telemetry::Recorder::alert`])
//! * `log`     — any other recorded event
//! * `metrics` — a periodic full snapshot (same JSON as `/snapshot.json`)
//! * `reset`   — the recorder was reset; the client should clear its state
//!
//! A [`au_telemetry::Recorder::reset_epoch`] bump invalidates saved
//! offsets; the stream emits `reset` and restarts from zero.

use crate::json::{push_key, push_str};
use crate::{http, status, Plane};
use au_telemetry::{EventRecord, SpanRecord};
use std::fmt::Write as _;
use std::io::{self, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Recorder sampling period.
const POLL: Duration = Duration::from_millis(100);
/// Polls between `metrics` snapshots (≈ once a second).
const METRICS_EVERY: u32 = 10;
/// Per-poll span/event burst cap; the rest follow on the next poll.
const BURST: usize = 512;

fn span_json(s: &SpanRecord) -> String {
    let mut out = String::with_capacity(128);
    out.push('{');
    push_key(&mut out, "name");
    push_str(&mut out, &s.name);
    let _ = write!(
        out,
        ",\"trace\":{},\"span\":{},\"parent\":{},\"tid\":{},\"start_ns\":{},\"dur_ns\":{},\"depth\":{}",
        s.trace_id, s.span_id, s.parent_id, s.tid, s.start_ns, s.dur_ns, s.depth
    );
    if !s.args.is_empty() {
        out.push(',');
        push_key(&mut out, "args");
        out.push('{');
        for (i, (k, v)) in s.args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_key(&mut out, k);
            push_str(&mut out, v);
        }
        out.push('}');
    }
    out.push('}');
    out
}

fn event_json(e: &EventRecord) -> String {
    let mut out = String::with_capacity(96);
    out.push('{');
    push_key(&mut out, "level");
    push_str(&mut out, e.level.as_str());
    out.push(',');
    push_key(&mut out, "target");
    push_str(&mut out, &e.target);
    out.push(',');
    push_key(&mut out, "message");
    push_str(&mut out, &e.message);
    let _ = write!(out, ",\"ts_ns\":{}", e.ts_ns);
    out.push('}');
    out
}

fn send(stream: &mut TcpStream, event: &str, data: &str) -> io::Result<()> {
    // SSE data lines must not embed raw newlines; the JSON writer already
    // escapes them, so one data line per event suffices.
    write!(stream, "event: {event}\ndata: {data}\n\n")?;
    stream.flush()
}

/// Serves one `/events` connection until the client hangs up or the plane
/// shuts down.
pub(crate) fn stream_events(stream: &mut TcpStream, plane: &Plane) -> io::Result<()> {
    http::respond_stream_head(stream, "text/event-stream")?;
    let rec = plane.recorder;
    let mut epoch = rec.reset_epoch();
    // Stream activity from connection time onward; history is available
    // via /snapshot.json.
    let mut span_off = rec.span_count();
    let mut event_off = rec.event_count();
    let mut tick: u32 = 0;

    send(
        stream,
        "hello",
        &format!("{{\"reset_epoch\":{epoch},\"spans\":{span_off},\"events\":{event_off}}}"),
    )?;

    loop {
        if plane.stopping() {
            return send(stream, "bye", "{}");
        }

        let now_epoch = rec.reset_epoch();
        if now_epoch != epoch {
            epoch = now_epoch;
            span_off = 0;
            event_off = 0;
            send(stream, "reset", &format!("{{\"reset_epoch\":{epoch}}}"))?;
        }

        let spans = rec.spans_since(span_off);
        for s in spans.iter().take(BURST) {
            send(stream, "span", &span_json(s))?;
        }
        span_off += spans.len().min(BURST);

        let events = rec.events_since(event_off);
        for e in events.iter().take(BURST) {
            send(stream, event_kind(e), &event_json(e))?;
        }
        event_off += events.len().min(BURST);

        tick += 1;
        if tick.is_multiple_of(METRICS_EVERY) {
            send(stream, "metrics", &status::snapshot_json(plane))?;
        }

        std::thread::sleep(POLL);
    }
}

fn event_kind(e: &EventRecord) -> &'static str {
    if e.alert {
        "alert"
    } else {
        "log"
    }
}
