//! Minimal HTTP/1.1 plumbing: parse a GET request line, write a response.
//!
//! This is intentionally not a general HTTP implementation. The plane
//! serves bodiless GETs to trusted operators; anything else gets a
//! best-effort error response and the connection closes.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Upper bound on request head (request line + headers). Real scrapes are
/// a few hundred bytes; anything bigger is malformed or hostile.
const MAX_HEAD: usize = 8 * 1024;

/// The parts of a request the router cares about.
pub(crate) struct Request {
    pub method: String,
    /// Path with any query string stripped.
    pub path: String,
}

/// Reads from the stream until the blank line ending the request head and
/// parses the request line.
///
/// # Errors
///
/// `InvalidData` on malformed requests, `UnexpectedEof` if the client
/// hangs up early, or any underlying socket error/timeout.
pub(crate) fn read_request(stream: &mut TcpStream) -> io::Result<Request> {
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    while !head_complete(&head) {
        if head.len() >= MAX_HEAD {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "request head too large",
            ));
        }
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Err(io::ErrorKind::UnexpectedEof.into());
        }
        head.extend_from_slice(&buf[..n]);
    }
    let text = String::from_utf8_lossy(&head);
    let line = text.lines().next().unwrap_or_default();
    let mut parts = line.split_whitespace();
    let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "malformed request line",
        ));
    };
    let path = target.split('?').next().unwrap_or(target);
    Ok(Request {
        method: method.to_owned(),
        path: path.to_owned(),
    })
}

fn head_complete(head: &[u8]) -> bool {
    head.windows(4).any(|w| w == b"\r\n\r\n") || head.windows(2).any(|w| w == b"\n\n")
}

/// Writes a complete `Connection: close` response.
pub(crate) fn respond(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\n\
         Content-Type: {content_type}\r\n\
         Content-Length: {}\r\n\
         Cache-Control: no-store\r\n\
         Connection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Writes just the head of a streaming (SSE) response; the body follows as
/// the caller produces it.
pub(crate) fn respond_stream_head(stream: &mut TcpStream, content_type: &str) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 200 OK\r\n\
         Content-Type: {content_type}\r\n\
         Cache-Control: no-store\r\n\
         Connection: close\r\n\r\n"
    );
    stream.write_all(head.as_bytes())?;
    stream.flush()
}
