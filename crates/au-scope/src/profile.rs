//! `/profile.json` and `/flamegraph`: the au-prof self-time view.
//!
//! Both endpoints poll the plane's [`au_prof::Profiler`] at request time —
//! the profiler drains whatever the recorder captured since the previous
//! request and folds completed traces, so repeated scrapes are
//! incremental and an idle (attached-but-unqueried) profiler costs the
//! hot path nothing.

use crate::json::{push_key, push_str};
use crate::Plane;
use au_prof::Profiler;
use std::fmt::Write as _;
use std::sync::MutexGuard;

fn polled(plane: &Plane) -> MutexGuard<'_, Profiler> {
    let mut prof = plane
        .profiler
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    prof.poll(plane.recorder);
    prof
}

/// The full attribution dump: per-name stats, collapsed stacks, and
/// per-trace inclusive/exclusive totals for the most recent traces.
pub(crate) fn profile_json(plane: &Plane) -> String {
    let prof = polled(plane);
    let p = prof.profile();
    let mut out = String::with_capacity(4096);
    out.push('{');
    let _ = write!(
        out,
        "\"traces\":{},\"spans\":{},\"dropped_spans\":{},\"pending_spans\":{}",
        p.traces(),
        p.spans(),
        p.dropped_spans(),
        prof.pending_spans()
    );

    out.push(',');
    push_key(&mut out, "names");
    out.push('{');
    for (i, (name, s)) in p.names().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_key(&mut out, name);
        let _ = write!(
            out,
            "{{\"calls\":{},\"inclusive_ns\":{},\"exclusive_ns\":{},\"min_ns\":{},\"max_ns\":{}}}",
            s.calls, s.inclusive_ns, s.exclusive_ns, s.min_ns, s.max_ns
        );
    }
    out.push('}');

    out.push(',');
    push_key(&mut out, "stacks");
    out.push('[');
    for (i, (path, s)) in p.stacks().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        push_key(&mut out, "stack");
        push_str(&mut out, path);
        let _ = write!(
            out,
            ",\"exclusive_ns\":{},\"count\":{}}}",
            s.exclusive_ns, s.count
        );
    }
    out.push(']');

    out.push(',');
    push_key(&mut out, "recent_traces");
    out.push('[');
    for (i, t) in p.recent_traces().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        let _ = write!(out, "\"trace\":{},", t.trace_id);
        push_key(&mut out, "root");
        push_str(&mut out, &t.root);
        let _ = write!(
            out,
            ",\"inclusive_ns\":{},\"exclusive_sum_ns\":{},\"spans\":{}}}",
            t.inclusive_ns, t.exclusive_sum_ns, t.spans
        );
    }
    out.push(']');
    out.push('}');
    out
}

/// The same profile rendered as a self-contained SVG flamegraph.
pub(crate) fn flamegraph_svg(plane: &Plane) -> String {
    polled(plane).profile().flamegraph_svg()
}
