//! au-scope: the live observability plane.
//!
//! A zero-dependency HTTP server over the [`au_telemetry`] recorder (and,
//! with the `engine` feature, an attached [`au_core::EngineHandle`]) that
//! turns the in-process telemetry the runtime already collects into
//! something an operator can point a browser or a Prometheus scraper at
//! *while the program runs*:
//!
//! | endpoint         | what it serves                                        |
//! |------------------|-------------------------------------------------------|
//! | `/`              | bundled single-file dashboard (live charts over SSE)  |
//! | `/metrics`       | Prometheus text exposition of every counter/gauge/histogram |
//! | `/health`        | engine mode, degraded models, registry shard occupancy |
//! | `/snapshot.json` | one-shot JSON dump of the full recorder state          |
//! | `/events`        | Server-Sent Events stream: spans, alerts, metric ticks |
//! | `/profile.json`  | au-prof self-time attribution: per-name inclusive/exclusive, collapsed stacks, per-trace totals |
//! | `/flamegraph`    | self-contained SVG flamegraph over the same profile   |
//!
//! The server is deliberately austere: a [`std::net::TcpListener`] accept
//! loop plus one short-lived thread per connection, sharing nothing heavier
//! than an `Arc` around the plane state. There is no TLS, no keep-alive,
//! no request body handling — it serves GETs to trusted operators on a
//! loopback or cluster-internal port, and everything it reads from the
//! recorder goes through the same lock-free handles the hot path uses, so
//! scraping never blocks serving.
//!
//! ```no_run
//! au_telemetry::enable();
//! let scope = au_scope::ScopeServer::builder()
//!     .bind("127.0.0.1:0")
//!     .start()
//!     .unwrap();
//! println!("observability plane on http://{}", scope.local_addr());
//! # scope.shutdown();
//! ```

mod http;
mod json;
mod profile;
mod prometheus;
mod sse;
mod status;

use au_telemetry::Recorder;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

#[cfg(feature = "engine")]
use au_core::EngineHandle;

/// The dashboard page served at `/`, bundled into the binary so the plane
/// has no runtime file dependencies.
const DASHBOARD_HTML: &str = include_str!("../assets/dashboard.html");

/// Default per-connection socket timeout: a stalled or half-open client
/// must not pin a handler thread (SSE writers poll the stop flag
/// instead). Override per server with [`ScopeBuilder::io_timeout`].
const IO_TIMEOUT: Duration = Duration::from_secs(5);

/// Everything a handler thread needs, shared behind one `Arc`.
pub(crate) struct Plane {
    pub recorder: &'static Recorder,
    #[cfg(feature = "engine")]
    pub engine: Option<EngineHandle>,
    pub started: Instant,
    pub stop: AtomicBool,
    /// Folds the recorder's span stream into self-time attribution.
    /// Polled only while serving `/profile.json` or `/flamegraph`, so an
    /// attached-but-unqueried profiler costs the hot path nothing.
    pub profiler: Mutex<au_prof::Profiler>,
    pub io_timeout: Duration,
}

impl Plane {
    pub fn stopping(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }
}

/// Builder for [`ScopeServer`]; start with [`ScopeServer::builder`].
pub struct ScopeBuilder {
    recorder: &'static Recorder,
    #[cfg(feature = "engine")]
    engine: Option<EngineHandle>,
    addr: String,
    io_timeout: Duration,
}

impl ScopeBuilder {
    /// Serve a specific recorder instead of [`au_telemetry::global`] —
    /// mainly for tests that keep a private leaked recorder.
    #[must_use]
    pub fn recorder(mut self, recorder: &'static Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Attach the engine runtime, enabling the engine-aware parts of
    /// `/health` and `/snapshot.json` (mode, models, monitor state,
    /// registry shard occupancy).
    #[cfg(feature = "engine")]
    #[must_use]
    pub fn engine(mut self, handle: EngineHandle) -> Self {
        self.engine = Some(handle);
        self
    }

    /// Address to bind; defaults to `127.0.0.1:0` (loopback, ephemeral
    /// port — read the chosen port back via [`ScopeServer::local_addr`]).
    #[must_use]
    pub fn bind(mut self, addr: &str) -> Self {
        self.addr = addr.to_owned();
        self
    }

    /// Per-connection socket read/write timeout (default 5 s): how long a
    /// handler thread may block on one stalled client before the
    /// connection is abandoned. Mainly for tests that exercise the
    /// slow-client path without waiting out the default.
    #[must_use]
    pub fn io_timeout(mut self, timeout: Duration) -> Self {
        self.io_timeout = timeout;
        self
    }

    /// Binds the listener and spawns the accept loop.
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from binding the address.
    pub fn start(self) -> io::Result<ScopeServer> {
        let listener = TcpListener::bind(self.addr.as_str())?;
        let addr = listener.local_addr()?;
        let plane = Arc::new(Plane {
            recorder: self.recorder,
            #[cfg(feature = "engine")]
            engine: self.engine,
            started: Instant::now(),
            stop: AtomicBool::new(false),
            profiler: Mutex::new(au_prof::Profiler::new()),
            io_timeout: self.io_timeout,
        });
        let accept_plane = Arc::clone(&plane);
        let accept = thread::Builder::new()
            .name("au-scope-accept".into())
            .spawn(move || accept_loop(&listener, &accept_plane))?;
        Ok(ScopeServer {
            plane,
            addr,
            accept: Some(accept),
        })
    }
}

/// A running observability-plane server; shuts down on [`ScopeServer::shutdown`]
/// or drop.
pub struct ScopeServer {
    plane: Arc<Plane>,
    addr: SocketAddr,
    accept: Option<thread::JoinHandle<()>>,
}

impl ScopeServer {
    /// New builder serving the global recorder on `127.0.0.1:0`.
    pub fn builder() -> ScopeBuilder {
        ScopeBuilder {
            recorder: au_telemetry::global(),
            #[cfg(feature = "engine")]
            engine: None,
            addr: "127.0.0.1:0".to_owned(),
            io_timeout: IO_TIMEOUT,
        }
    }

    /// The address the listener actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and asks in-flight SSE streams to finish.
    /// Idempotent; also invoked on drop.
    pub fn shutdown(&self) {
        if self.plane.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // The accept loop blocks in `accept`; poke it awake so it observes
        // the stop flag without waiting for a real client.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Drop for ScopeServer {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, plane: &Arc<Plane>) {
    for conn in listener.incoming() {
        if plane.stopping() {
            break;
        }
        let Ok(stream) = conn else { continue };
        let plane = Arc::clone(plane);
        // One short-lived thread per connection. Handler panics are
        // confined to their thread; the builder only fails under resource
        // exhaustion, in which case the connection is simply dropped.
        let _ = thread::Builder::new()
            .name("au-scope-conn".into())
            .spawn(move || handle_connection(stream, &plane));
    }
}

fn handle_connection(mut stream: TcpStream, plane: &Arc<Plane>) {
    let _ = stream.set_read_timeout(Some(plane.io_timeout));
    let _ = stream.set_write_timeout(Some(plane.io_timeout));
    let Ok(req) = http::read_request(&mut stream) else {
        return;
    };
    if req.method != "GET" {
        let _ = http::respond(
            &mut stream,
            405,
            "Method Not Allowed",
            "text/plain; charset=utf-8",
            b"only GET is served here\n",
        );
        return;
    }
    let result = match req.path.as_str() {
        "/" | "/index.html" => http::respond(
            &mut stream,
            200,
            "OK",
            "text/html; charset=utf-8",
            DASHBOARD_HTML.as_bytes(),
        ),
        "/metrics" => http::respond(
            &mut stream,
            200,
            "OK",
            "text/plain; version=0.0.4; charset=utf-8",
            prometheus::render(plane).as_bytes(),
        ),
        "/health" => http::respond(
            &mut stream,
            200,
            "OK",
            "application/json",
            status::health_json(plane).as_bytes(),
        ),
        "/snapshot.json" => http::respond(
            &mut stream,
            200,
            "OK",
            "application/json",
            status::snapshot_json(plane).as_bytes(),
        ),
        "/events" => sse::stream_events(&mut stream, plane),
        "/profile.json" => http::respond(
            &mut stream,
            200,
            "OK",
            "application/json",
            profile::profile_json(plane).as_bytes(),
        ),
        "/flamegraph" => http::respond(
            &mut stream,
            200,
            "OK",
            "image/svg+xml; charset=utf-8",
            profile::flamegraph_svg(plane).as_bytes(),
        ),
        _ => http::respond(
            &mut stream,
            404,
            "Not Found",
            "text/plain; charset=utf-8",
            b"unknown endpoint; try /, /metrics, /health, /snapshot.json, /events, /profile.json, /flamegraph\n",
        ),
    };
    let _ = result;
}
