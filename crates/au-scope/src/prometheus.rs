//! Prometheus text exposition (format version 0.0.4) over the recorder.
//!
//! Naming: dotted recorder names map to underscores (`au_core.predict` →
//! `au_core_predict`), counters gain the conventional `_total` suffix, and
//! latency histograms — recorded in nanoseconds — are exported in seconds
//! with a `_seconds` suffix and cumulative `le` buckets, so standard
//! `histogram_quantile` queries work unchanged.

use crate::Plane;
use au_telemetry::{bucket_upper_bound, HistogramSnapshot, BUCKETS};
use std::fmt::Write as _;

/// Maps a dotted recorder name to a Prometheus-legal metric name:
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`, everything else becomes `_`.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    out
}

/// Escapes a label value (backslash, quote, newline per the exposition
/// format). Only engine-level series carry labels today.
#[cfg_attr(not(feature = "engine"), allow(dead_code))]
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn write_histogram(out: &mut String, name: &str, h: &HistogramSnapshot) {
    let metric = format!("{}_seconds", sanitize(name));
    let _ = writeln!(out, "# TYPE {metric} histogram");
    // Trailing empty buckets carry no information beyond +Inf; stop at the
    // last occupied one to keep scrapes compact.
    let last = h
        .buckets
        .iter()
        .rposition(|&c| c > 0)
        .map_or(0, |i| (i + 1).min(BUCKETS - 1));
    let mut cumulative = 0u64;
    for (i, &count) in h.buckets.iter().enumerate().take(last + 1) {
        cumulative += count;
        let le = bucket_upper_bound(i);
        if le == u64::MAX {
            break; // the clamp bucket is the +Inf bucket below
        }
        let le_s = le as f64 / 1e9;
        let _ = writeln!(out, "{metric}_bucket{{le=\"{le_s}\"}} {cumulative}");
    }
    let _ = writeln!(out, "{metric}_bucket{{le=\"+Inf\"}} {}", h.count);
    let _ = writeln!(out, "{metric}_sum {}", h.sum as f64 / 1e9);
    let _ = writeln!(out, "{metric}_count {}", h.count);
}

/// Renders the full exposition: every recorder metric plus plane- and
/// engine-level series computed at scrape time.
pub(crate) fn render(plane: &Plane) -> String {
    let rec = plane.recorder;
    let mut out = String::with_capacity(4096);

    for (name, v) in rec.counters() {
        let metric = format!("{}_total", sanitize(&name));
        let _ = writeln!(out, "# TYPE {metric} counter");
        let _ = writeln!(out, "{metric} {v}");
    }
    for (name, v) in rec.gauges() {
        let metric = sanitize(&name);
        let _ = writeln!(out, "# TYPE {metric} gauge");
        let _ = writeln!(out, "{metric} {v}");
    }
    for (name, h) in rec.histograms() {
        write_histogram(&mut out, &name, &h);
    }

    // Plane/recorder meta series.
    let _ = writeln!(out, "# TYPE au_scope_uptime_seconds gauge");
    let _ = writeln!(
        out,
        "au_scope_uptime_seconds {}",
        plane.started.elapsed().as_secs_f64()
    );
    for (metric, v) in [
        ("au_telemetry_spans_total", rec.span_count() as u64),
        ("au_telemetry_events_total", rec.event_count() as u64),
        ("au_telemetry_alerts_total", rec.alert_count()),
        ("au_telemetry_dropped_total", rec.dropped()),
    ] {
        let _ = writeln!(out, "# TYPE {metric} counter");
        let _ = writeln!(out, "{metric} {v}");
    }

    #[cfg(feature = "engine")]
    if let Some(engine) = &plane.engine {
        let mode = match engine.mode() {
            au_core::Mode::Train => 0,
            au_core::Mode::Test => 1,
        };
        let _ = writeln!(out, "# TYPE au_engine_mode gauge");
        let _ = writeln!(out, "au_engine_mode {mode}");
        let shard_sizes = engine.registry_shard_sizes();
        let _ = writeln!(out, "# TYPE au_engine_models gauge");
        let _ = writeln!(
            out,
            "au_engine_models {}",
            shard_sizes.iter().sum::<usize>()
        );
        let _ = writeln!(out, "# TYPE au_registry_shard_models gauge");
        for (i, n) in shard_sizes.iter().enumerate() {
            let _ = writeln!(out, "au_registry_shard_models{{shard=\"{i}\"}} {n}");
        }
        let reports = engine.monitor_reports();
        let _ = writeln!(out, "# TYPE au_engine_degraded_models gauge");
        let _ = writeln!(
            out,
            "au_engine_degraded_models {}",
            reports.iter().filter(|(_, r)| r.degraded).count()
        );
        if !reports.is_empty() {
            let _ = writeln!(out, "# TYPE au_monitor_observations_total counter");
            let _ = writeln!(out, "# TYPE au_monitor_rolling_mae gauge");
            let _ = writeln!(out, "# TYPE au_monitor_drift_score gauge");
            let _ = writeln!(out, "# TYPE au_monitor_flight_records gauge");
            let _ = writeln!(out, "# TYPE au_monitor_degraded gauge");
            for (model, r) in &reports {
                let m = escape_label(model);
                let _ = writeln!(
                    out,
                    "au_monitor_observations_total{{model=\"{m}\"}} {}",
                    r.observations
                );
                if let Some(mae) = r.rolling_mae {
                    let _ = writeln!(out, "au_monitor_rolling_mae{{model=\"{m}\"}} {mae}");
                }
                if let Some(drift) = r.drift_score {
                    let _ = writeln!(out, "au_monitor_drift_score{{model=\"{m}\"}} {drift}");
                }
                let _ = writeln!(
                    out,
                    "au_monitor_flight_records{{model=\"{m}\"}} {}",
                    r.flight_records
                );
                let _ = writeln!(
                    out,
                    "au_monitor_degraded{{model=\"{m}\"}} {}",
                    u8::from(r.degraded)
                );
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_sanitize_to_legal_metric_names() {
        assert_eq!(sanitize("au_core.predict"), "au_core_predict");
        assert_eq!(sanitize("au_nn.gemm"), "au_nn_gemm");
        assert_eq!(sanitize("weird name-1"), "weird_name_1");
        assert_eq!(sanitize("9lives"), "_lives");
    }

    #[test]
    fn histogram_exposition_is_cumulative_and_bounded() {
        let rec = au_telemetry::Recorder::new();
        let h = rec.histogram("t");
        h.record(10);
        h.record(1_000);
        h.record(1_000);
        let mut out = String::new();
        write_histogram(&mut out, "t", &h.snapshot());
        assert!(out.contains("# TYPE t_seconds histogram"), "{out}");
        assert!(out.contains("t_seconds_bucket{le=\"+Inf\"} 3"), "{out}");
        assert!(out.contains("t_seconds_count 3"), "{out}");
        // Cumulative counts never decrease.
        let counts: Vec<u64> = out
            .lines()
            .filter(|l| l.contains("_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
    }
}
