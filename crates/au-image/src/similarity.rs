//! Image similarity scores: SSIM (the paper's metric) and an edge-F1
//! alternative.

use crate::gray::GrayImage;

/// Structural similarity (Wang et al. 2004) between two images, computed
/// globally with the standard stabilizing constants. Returns a value in
/// `[-1, 1]`; 1 means identical structure.
///
/// The paper grades Canny outputs against expert ground truth with "the SSIM
/// score"; we use the same formula.
///
/// # Panics
///
/// Panics if the image dimensions differ.
pub fn ssim(a: &GrayImage, b: &GrayImage) -> f64 {
    assert_eq!(a.width(), b.width(), "ssim: width mismatch");
    assert_eq!(a.height(), b.height(), "ssim: height mismatch");
    let n = a.pixels().len() as f64;
    let mean = |img: &GrayImage| img.pixels().iter().map(|&p| f64::from(p)).sum::<f64>() / n;
    let mu_a = mean(a);
    let mu_b = mean(b);
    let mut var_a = 0.0;
    let mut var_b = 0.0;
    let mut cov = 0.0;
    for (&pa, &pb) in a.pixels().iter().zip(b.pixels()) {
        let da = f64::from(pa) - mu_a;
        let db = f64::from(pb) - mu_b;
        var_a += da * da;
        var_b += db * db;
        cov += da * db;
    }
    var_a /= n;
    var_b /= n;
    cov /= n;
    // Standard constants for dynamic range L = 1.
    let c1 = (0.01f64).powi(2);
    let c2 = (0.03f64).powi(2);
    ((2.0 * mu_a * mu_b + c1) * (2.0 * cov + c2))
        / ((mu_a * mu_a + mu_b * mu_b + c1) * (var_a + var_b + c2))
}

/// F1 score between binarized edge maps (threshold 0.5) with a one-pixel
/// tolerance — a sharper alternative metric used in ablation benches.
///
/// # Panics
///
/// Panics if the image dimensions differ.
pub fn f1_edge_score(detected: &GrayImage, truth: &GrayImage) -> f64 {
    assert_eq!(detected.width(), truth.width(), "f1: width mismatch");
    assert_eq!(detected.height(), truth.height(), "f1: height mismatch");
    let is_edge = |img: &GrayImage, x: usize, y: usize| img.get(x, y) > 0.5;
    let near_edge = |img: &GrayImage, x: usize, y: usize| {
        for dy in -1..=1isize {
            for dx in -1..=1isize {
                if img.get_clamped(x as isize + dx, y as isize + dy) > 0.5 {
                    return true;
                }
            }
        }
        false
    };
    let (mut tp, mut fp, mut fn_) = (0.0f64, 0.0f64, 0.0f64);
    for y in 0..truth.height() {
        for x in 0..truth.width() {
            if is_edge(detected, x, y) {
                if near_edge(truth, x, y) {
                    tp += 1.0;
                } else {
                    fp += 1.0;
                }
            } else if is_edge(truth, x, y) && !near_edge(detected, x, y) {
                fn_ += 1.0;
            }
        }
    }
    if tp == 0.0 {
        return 0.0;
    }
    let precision = tp / (tp + fp);
    let recall = tp / (tp + fn_);
    2.0 * precision * recall / (precision + recall)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checker(w: usize, h: usize) -> GrayImage {
        let mut img = GrayImage::new(w, h);
        for y in 0..h {
            for x in 0..w {
                if (x + y) % 2 == 0 {
                    img.set(x, y, 1.0);
                }
            }
        }
        img
    }

    #[test]
    fn ssim_identical_is_one() {
        let img = checker(8, 8);
        assert!((ssim(&img, &img) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ssim_inverted_is_low() {
        let img = checker(8, 8);
        let inverted =
            GrayImage::from_pixels(8, 8, img.pixels().iter().map(|&p| 1.0 - p).collect());
        assert!(ssim(&img, &inverted) < 0.2);
    }

    #[test]
    fn ssim_degrades_with_noise() {
        let img = checker(16, 16);
        let mut noisy = img.clone();
        for (i, p) in noisy.pixels_mut().iter_mut().enumerate() {
            if i % 7 == 0 {
                *p = 1.0 - *p;
            }
        }
        let s = ssim(&img, &noisy);
        assert!(s < 1.0 && s > 0.0);
    }

    #[test]
    fn f1_identical_is_one() {
        let img = checker(8, 8);
        assert!((f1_edge_score(&img, &img) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn f1_empty_detection_is_zero() {
        let truth = checker(8, 8);
        let empty = GrayImage::new(8, 8);
        assert_eq!(f1_edge_score(&empty, &truth), 0.0);
    }

    #[test]
    fn f1_tolerates_one_pixel_shift() {
        let mut truth = GrayImage::new(8, 8);
        let mut shifted = GrayImage::new(8, 8);
        for y in 0..8 {
            truth.set(3, y, 1.0);
            shifted.set(4, y, 1.0);
        }
        assert!(f1_edge_score(&shifted, &truth) > 0.9);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn ssim_rejects_mismatched_sizes() {
        let _ = ssim(&GrayImage::new(2, 2), &GrayImage::new(3, 2));
    }
}
