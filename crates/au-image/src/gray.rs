//! Grayscale image type and basic operations.

use std::io::Write;
use std::path::Path;

/// A grayscale image with `f32` pixels in `[0, 1]`, row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct GrayImage {
    width: usize,
    height: usize,
    pixels: Vec<f32>,
}

impl GrayImage {
    /// Creates a black image.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        GrayImage {
            width,
            height,
            pixels: vec![0.0; width * height],
        }
    }

    /// Wraps existing pixel data.
    ///
    /// # Panics
    ///
    /// Panics if `pixels.len() != width * height`.
    pub fn from_pixels(width: usize, height: usize, pixels: Vec<f32>) -> Self {
        assert_eq!(pixels.len(), width * height, "pixel count mismatch");
        GrayImage {
            width,
            height,
            pixels,
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Borrow the pixels (row-major).
    pub fn pixels(&self) -> &[f32] {
        &self.pixels
    }

    /// Mutably borrow the pixels.
    pub fn pixels_mut(&mut self) -> &mut [f32] {
        &mut self.pixels
    }

    /// Pixel at `(x, y)`; out-of-bounds reads clamp to the border
    /// (convenient for convolution).
    pub fn get_clamped(&self, x: isize, y: isize) -> f32 {
        let x = x.clamp(0, self.width as isize - 1) as usize;
        let y = y.clamp(0, self.height as isize - 1) as usize;
        self.pixels[y * self.width + x]
    }

    /// Pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, x: usize, y: usize) -> f32 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.pixels[y * self.width + x]
    }

    /// Sets pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, x: usize, y: usize, v: f32) {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.pixels[y * self.width + x] = v;
    }

    /// Gaussian-smooths the image with standard deviation `sigma`
    /// (separable two-pass filter, kernel radius `⌈3σ⌉`).
    ///
    /// A non-positive `sigma` returns a copy unchanged.
    pub fn gaussian_smooth(&self, sigma: f32) -> GrayImage {
        if sigma <= 0.0 {
            return self.clone();
        }
        let radius = (3.0 * sigma).ceil() as isize;
        let mut kernel = Vec::with_capacity((2 * radius + 1) as usize);
        let denom = 2.0 * sigma * sigma;
        for i in -radius..=radius {
            kernel.push((-((i * i) as f32) / denom).exp());
        }
        let sum: f32 = kernel.iter().sum();
        for k in &mut kernel {
            *k /= sum;
        }
        // Horizontal pass.
        let mut tmp = GrayImage::new(self.width, self.height);
        for y in 0..self.height as isize {
            for x in 0..self.width as isize {
                let mut acc = 0.0;
                for (i, k) in kernel.iter().enumerate() {
                    acc += k * self.get_clamped(x + i as isize - radius, y);
                }
                tmp.pixels[y as usize * self.width + x as usize] = acc;
            }
        }
        // Vertical pass.
        let mut out = GrayImage::new(self.width, self.height);
        for y in 0..self.height as isize {
            for x in 0..self.width as isize {
                let mut acc = 0.0;
                for (i, k) in kernel.iter().enumerate() {
                    acc += k * tmp.get_clamped(x, y + i as isize - radius);
                }
                out.pixels[y as usize * self.width + x as usize] = acc;
            }
        }
        out
    }

    /// Convolves with a 3×3 kernel (row-major), clamping at borders.
    pub fn convolve3(&self, kernel: &[f32; 9]) -> GrayImage {
        let mut out = GrayImage::new(self.width, self.height);
        for y in 0..self.height as isize {
            for x in 0..self.width as isize {
                let mut acc = 0.0;
                for ky in -1..=1isize {
                    for kx in -1..=1isize {
                        let k = kernel[((ky + 1) * 3 + kx + 1) as usize];
                        acc += k * self.get_clamped(x + kx, y + ky);
                    }
                }
                out.pixels[y as usize * self.width + x as usize] = acc;
            }
        }
        out
    }

    /// Sobel gradient magnitudes and directions (radians).
    pub fn sobel(&self) -> (GrayImage, GrayImage) {
        let gx = self.convolve3(&[-1.0, 0.0, 1.0, -2.0, 0.0, 2.0, -1.0, 0.0, 1.0]);
        let gy = self.convolve3(&[-1.0, -2.0, -1.0, 0.0, 0.0, 0.0, 1.0, 2.0, 1.0]);
        let mut mag = GrayImage::new(self.width, self.height);
        let mut dir = GrayImage::new(self.width, self.height);
        for i in 0..self.pixels.len() {
            mag.pixels[i] = (gx.pixels[i] * gx.pixels[i] + gy.pixels[i] * gy.pixels[i]).sqrt();
            dir.pixels[i] = gy.pixels[i].atan2(gx.pixels[i]);
        }
        (mag, dir)
    }

    /// Histogram of pixel values over `bins` equal-width buckets spanning
    /// the image's own min–max range (counts, as `f64` for direct use as
    /// model features — the paper's `hist` variable in Canny).
    ///
    /// # Panics
    ///
    /// Panics if `bins` is zero.
    pub fn histogram(&self, bins: usize) -> Vec<f64> {
        assert!(bins > 0, "bins must be positive");
        let min = self.pixels.iter().cloned().fold(f32::INFINITY, f32::min);
        let max = self
            .pixels
            .iter()
            .cloned()
            .fold(f32::NEG_INFINITY, f32::max);
        let mut hist = vec![0.0f64; bins];
        let range = (max - min).max(1e-12);
        for &p in &self.pixels {
            let idx = (((p - min) / range) * bins as f32) as usize;
            hist[idx.min(bins - 1)] += 1.0;
        }
        hist
    }

    /// Mean pixel value.
    pub fn mean(&self) -> f32 {
        self.pixels.iter().sum::<f32>() / self.pixels.len() as f32
    }

    /// Writes the image as a binary PGM (P5) file, mapping `[0,1]` to 0–255.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn write_pgm(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        write!(file, "P5\n{} {}\n255\n", self.width, self.height)?;
        let bytes: Vec<u8> = self
            .pixels
            .iter()
            .map(|&p| (p.clamp(0.0, 1.0) * 255.0).round() as u8)
            .collect();
        file.write_all(&bytes)
    }

    /// Pixels as `f64` — the raw-input feature vector for `Raw` models.
    pub fn to_f64(&self) -> Vec<f64> {
        self.pixels.iter().map(|&p| f64::from(p)).collect()
    }

    /// Reads a binary PGM (P5) file written by [`GrayImage::write_pgm`]
    /// (or any 8-bit binary PGM).
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for non-P5 files, malformed headers, maxval
    /// other than 255, or truncated pixel data.
    pub fn read_pgm(path: impl AsRef<Path>) -> std::io::Result<GrayImage> {
        use std::io::{Error, ErrorKind};
        let bytes = std::fs::read(path)?;
        let bad = |msg: &str| Error::new(ErrorKind::InvalidData, msg.to_owned());
        // Header: "P5" <ws> width <ws> height <ws> maxval <single ws> data.
        let mut pos = 0usize;
        let mut token = |bytes: &[u8]| -> std::io::Result<String> {
            while pos < bytes.len() && bytes[pos].is_ascii_whitespace() {
                pos += 1;
            }
            // Comments run to end of line.
            while pos < bytes.len() && bytes[pos] == b'#' {
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
                while pos < bytes.len() && bytes[pos].is_ascii_whitespace() {
                    pos += 1;
                }
            }
            let start = pos;
            while pos < bytes.len() && !bytes[pos].is_ascii_whitespace() {
                pos += 1;
            }
            if start == pos {
                return Err(Error::new(ErrorKind::InvalidData, "truncated pgm header"));
            }
            Ok(String::from_utf8_lossy(&bytes[start..pos]).into_owned())
        };
        if token(&bytes)? != "P5" {
            return Err(bad("not a binary pgm (P5) file"));
        }
        let width: usize = token(&bytes)?.parse().map_err(|_| bad("bad width"))?;
        let height: usize = token(&bytes)?.parse().map_err(|_| bad("bad height"))?;
        let maxval: usize = token(&bytes)?.parse().map_err(|_| bad("bad maxval"))?;
        if maxval != 255 {
            return Err(bad("only maxval 255 is supported"));
        }
        if width == 0 || height == 0 {
            return Err(bad("zero dimension"));
        }
        pos += 1; // single whitespace after maxval
        let data = &bytes[pos..];
        if data.len() < width * height {
            return Err(bad("truncated pixel data"));
        }
        let pixels = data[..width * height]
            .iter()
            .map(|&b| f32::from(b) / 255.0)
            .collect();
        Ok(GrayImage::from_pixels(width, height, pixels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_black() {
        let img = GrayImage::new(4, 3);
        assert_eq!(img.width(), 4);
        assert_eq!(img.height(), 3);
        assert!(img.pixels().iter().all(|&p| p == 0.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_dims() {
        let _ = GrayImage::new(0, 3);
    }

    #[test]
    fn get_set_round_trip() {
        let mut img = GrayImage::new(3, 3);
        img.set(1, 2, 0.5);
        assert_eq!(img.get(1, 2), 0.5);
        assert_eq!(img.get_clamped(-5, 2), img.get(0, 2));
        assert_eq!(img.get_clamped(99, 2), img.get(2, 2));
    }

    #[test]
    fn smoothing_preserves_constant_images() {
        let img = GrayImage::from_pixels(5, 5, vec![0.7; 25]);
        let smoothed = img.gaussian_smooth(1.5);
        for &p in smoothed.pixels() {
            assert!((p - 0.7).abs() < 1e-5);
        }
    }

    #[test]
    fn smoothing_reduces_contrast() {
        let mut img = GrayImage::new(9, 9);
        img.set(4, 4, 1.0);
        let smoothed = img.gaussian_smooth(1.0);
        assert!(smoothed.get(4, 4) < 1.0);
        assert!(smoothed.get(3, 4) > 0.0);
    }

    #[test]
    fn zero_sigma_is_identity() {
        let mut img = GrayImage::new(3, 3);
        img.set(1, 1, 0.3);
        assert_eq!(img.gaussian_smooth(0.0), img);
    }

    #[test]
    fn sobel_detects_vertical_edge() {
        let mut img = GrayImage::new(8, 8);
        for y in 0..8 {
            for x in 4..8 {
                img.set(x, y, 1.0);
            }
        }
        let (mag, _) = img.sobel();
        // Strongest response at the boundary column.
        assert!(mag.get(4, 4) > mag.get(1, 4));
        assert!(mag.get(4, 4) > mag.get(7, 4));
    }

    #[test]
    fn histogram_counts_sum_to_pixel_count() {
        let img = GrayImage::from_pixels(2, 2, vec![0.0, 0.25, 0.5, 1.0]);
        let hist = img.histogram(4);
        assert_eq!(hist.iter().sum::<f64>() as usize, 4);
        assert_eq!(hist[0], 1.0);
        assert_eq!(hist[3], 1.0);
    }

    #[test]
    fn pgm_write_produces_header() {
        let img = GrayImage::new(2, 2);
        let path = std::env::temp_dir().join("au_image_test.pgm");
        img.write_pgm(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes.starts_with(b"P5\n2 2\n255\n"));
        assert_eq!(bytes.len(), "P5\n2 2\n255\n".len() + 4);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn pgm_round_trip() {
        let mut img = GrayImage::new(3, 2);
        img.set(0, 0, 0.0);
        img.set(1, 0, 0.5);
        img.set(2, 1, 1.0);
        let path = std::env::temp_dir().join("au_image_roundtrip.pgm");
        img.write_pgm(&path).unwrap();
        let back = GrayImage::read_pgm(&path).unwrap();
        assert_eq!(back.width(), 3);
        assert_eq!(back.height(), 2);
        for (a, b) in img.pixels().iter().zip(back.pixels()) {
            assert!((a - b).abs() < 1.0 / 255.0 + 1e-6, "{a} vs {b}");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn read_pgm_rejects_garbage() {
        let path = std::env::temp_dir().join("au_image_bad.pgm");
        std::fs::write(&path, b"P6 junk").unwrap();
        assert!(GrayImage::read_pgm(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn convolve3_identity_kernel() {
        let mut img = GrayImage::new(4, 4);
        img.set(2, 2, 0.9);
        let id = [0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0];
        assert_eq!(img.convolve3(&id), img);
    }
}
