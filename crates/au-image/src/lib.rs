//! Image substrate for the Autonomizer reproduction.
//!
//! The paper's supervised-learning case studies (Canny, Rothwell) operate on
//! grayscale images with expert-provided ground-truth edge maps. This crate
//! provides:
//!
//! - [`GrayImage`]: a `f32` grayscale image with PGM I/O;
//! - separable [Gaussian smoothing](GrayImage::gaussian_smooth), 2-D
//!   [convolution](GrayImage::convolve3), gradients, and
//!   [histograms](GrayImage::histogram);
//! - [`ssim`]: the structural-similarity score the paper uses to grade edge
//!   detections against the ground truth (Wang et al. 2004);
//! - [`scene`]: a deterministic synthetic scene generator with *exact* edge
//!   ground truth — our substitute for the BSDS/Heath et al. datasets.
//!
//! # Example
//!
//! ```
//! use au_image::{scene, ssim};
//!
//! let s = scene::SceneGenerator::new(42).generate(64, 64);
//! assert_eq!(s.image.width(), 64);
//! // The ground truth is a perfect match with itself.
//! assert!((ssim(&s.truth, &s.truth) - 1.0).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gray;
pub mod scene;
mod similarity;

pub use gray::GrayImage;
pub use similarity::{f1_edge_score, ssim};
