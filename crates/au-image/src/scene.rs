//! Deterministic synthetic scenes with exact edge ground truth.
//!
//! Substitute for the paper's image corpora (BSDS for training, the Heath et
//! al. expert-annotated set for testing). Each scene composes a shaded
//! background, a few rectangles and discs of varying contrast, and Gaussian
//! noise of varying strength. The *true* edge map is known exactly (the
//! shape boundaries), so the "ideal parameter" labels the paper obtains from
//! experts/auto-tuning can be computed here by direct search.

use crate::gray::GrayImage;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated scene: the noisy input image, its exact edge map, and the
/// latent parameters that drove generation.
#[derive(Debug, Clone)]
pub struct Scene {
    /// The input image fed to the detectors.
    pub image: GrayImage,
    /// Ground-truth edge map (1.0 on true edges).
    pub truth: GrayImage,
    /// Gaussian-noise standard deviation used.
    pub noise: f32,
    /// Foreground/background contrast in `[0.2, 0.8]`.
    pub contrast: f32,
    /// Number of shapes drawn.
    pub shapes: usize,
}

/// Deterministic scene generator.
#[derive(Debug)]
pub struct SceneGenerator {
    rng: StdRng,
}

impl SceneGenerator {
    /// Creates a generator; the same seed yields the same scene sequence.
    pub fn new(seed: u64) -> Self {
        SceneGenerator {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Generates one scene of the given size.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is smaller than 8 pixels.
    pub fn generate(&mut self, width: usize, height: usize) -> Scene {
        assert!(width >= 8 && height >= 8, "scene must be at least 8x8");
        let noise = self.rng.gen_range(0.0..0.38f32);
        let contrast = self.rng.gen_range(0.15..0.8f32);
        let shapes = self.rng.gen_range(2..6usize);
        let base = self.rng.gen_range(0.1..0.4f32);

        let mut image = GrayImage::new(width, height);
        let mut truth = GrayImage::new(width, height);

        // Shaded background (gentle horizontal gradient — no true edges).
        for y in 0..height {
            for x in 0..width {
                let g = base + 0.1 * (x as f32 / width as f32);
                image.set(x, y, g);
            }
        }

        for _ in 0..shapes {
            let value = (base + contrast * self.rng.gen_range(0.5..1.0f32)).min(1.0);
            if self.rng.gen_bool(0.5) {
                self.draw_rect(&mut image, &mut truth, value);
            } else {
                self.draw_disc(&mut image, &mut truth, value);
            }
        }

        // Additive Gaussian noise (Box–Muller).
        for p in image.pixels_mut() {
            let u1: f32 = self.rng.gen_range(1e-6..1.0);
            let u2: f32 = self.rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
            *p = (*p + noise * z).clamp(0.0, 1.0);
        }

        Scene {
            image,
            truth,
            noise,
            contrast,
            shapes,
        }
    }

    fn draw_rect(&mut self, image: &mut GrayImage, truth: &mut GrayImage, value: f32) {
        let (w, h) = (image.width(), image.height());
        let rw = self.rng.gen_range(w / 6..w / 2);
        let rh = self.rng.gen_range(h / 6..h / 2);
        let x0 = self.rng.gen_range(1..w.saturating_sub(rw + 1).max(2));
        let y0 = self.rng.gen_range(1..h.saturating_sub(rh + 1).max(2));
        for y in y0..(y0 + rh).min(h - 1) {
            for x in x0..(x0 + rw).min(w - 1) {
                image.set(x, y, value);
            }
        }
        let (x1, y1) = ((x0 + rw).min(w - 1), (y0 + rh).min(h - 1));
        for x in x0..=x1 {
            truth.set(x, y0, 1.0);
            truth.set(x, y1, 1.0);
        }
        for y in y0..=y1 {
            truth.set(x0, y, 1.0);
            truth.set(x1, y, 1.0);
        }
    }

    fn draw_disc(&mut self, image: &mut GrayImage, truth: &mut GrayImage, value: f32) {
        let (w, h) = (image.width(), image.height());
        let r = self
            .rng
            .gen_range((w.min(h) / 8).max(2)..(w.min(h) / 3).max(3)) as isize;
        let cx = self.rng.gen_range(r..w as isize - r);
        let cy = self.rng.gen_range(r..h as isize - r);
        for y in (cy - r)..=(cy + r) {
            for x in (cx - r)..=(cx + r) {
                let d2 = (x - cx) * (x - cx) + (y - cy) * (y - cy);
                if d2 <= r * r {
                    image.set(x as usize, y as usize, value);
                }
                // Mark the boundary ring as truth.
                let d = (d2 as f32).sqrt();
                if (d - r as f32).abs() < 0.71 {
                    truth.set(x as usize, y as usize, 1.0);
                }
            }
        }
    }

    /// Generates a batch of scenes.
    pub fn batch(&mut self, count: usize, width: usize, height: usize) -> Vec<Scene> {
        (0..count).map(|_| self.generate(width, height)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = SceneGenerator::new(7).generate(32, 32);
        let b = SceneGenerator::new(7).generate(32, 32);
        assert_eq!(a.image, b.image);
        assert_eq!(a.truth, b.truth);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SceneGenerator::new(1).generate(32, 32);
        let b = SceneGenerator::new(2).generate(32, 32);
        assert_ne!(a.image, b.image);
    }

    #[test]
    fn truth_has_edges() {
        let s = SceneGenerator::new(3).generate(48, 48);
        let edge_count = s.truth.pixels().iter().filter(|&&p| p > 0.5).count();
        assert!(edge_count > 20, "expected edge pixels, got {edge_count}");
    }

    #[test]
    fn pixels_stay_in_range() {
        let s = SceneGenerator::new(11).generate(32, 32);
        assert!(s.image.pixels().iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn batch_produces_distinct_scenes() {
        let scenes = SceneGenerator::new(5).batch(3, 16, 16);
        assert_eq!(scenes.len(), 3);
        assert_ne!(scenes[0].image, scenes[1].image);
    }

    #[test]
    fn noise_and_contrast_vary_across_scenes() {
        let scenes = SceneGenerator::new(9).batch(8, 16, 16);
        let noises: Vec<f32> = scenes.iter().map(|s| s.noise).collect();
        let min = noises.iter().cloned().fold(f32::INFINITY, f32::min);
        let max = noises.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        assert!(max - min > 0.01, "noise should vary: {noises:?}");
    }
}
