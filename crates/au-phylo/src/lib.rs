//! Phylogeny-inference benchmark program (the paper's Phylip substitute).
//!
//! Phylip's distance-based pipeline carries parameters that strongly affect
//! tree quality and whose ideal values depend on the input alignment (rate
//! heterogeneity, divergence). This crate reimplements that pipeline:
//!
//! 1. [`generate_dataset`]: simulates a random true tree and evolves DNA
//!    sequences along it under Jukes–Cantor with gamma-distributed
//!    site-rate heterogeneity;
//! 2. [`estimate_distances`]: pairwise distance estimation with the tunable
//!    **target parameters** `alpha` (gamma-correction shape), `cutoff`
//!    (distance saturation cap), and `pseudo` (pseudocount regularizer);
//! 3. [`neighbor_joining`]: tree reconstruction;
//! 4. [`robinson_foulds`]: the quality score against the true tree —
//!    **lower is better**, matching the paper's ↓ mark for Phylip.
//!
//! # Example
//!
//! ```
//! use au_phylo::{generate_dataset, infer_tree, robinson_foulds, DistParams};
//!
//! let data = generate_dataset(8, 200, 42);
//! let tree = infer_tree(&data.sequences, DistParams::default());
//! let score = robinson_foulds(&tree, &data.true_tree);
//! assert!(score <= 2.0 * (8.0 - 3.0)); // RF is bounded by 2(n-3)
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// A rooted binary tree over taxa `0..n`, stored as merge events.
///
/// Topology-only: branch lengths do not participate in Robinson–Foulds.
#[derive(Debug, Clone, PartialEq)]
pub struct Tree {
    /// Number of leaf taxa.
    pub taxa: usize,
    /// Internal nodes as (left-child, right-child) pairs; children index
    /// either leaves (`< taxa`) or earlier internal nodes (`taxa + i`).
    pub merges: Vec<(usize, usize)>,
}

impl Tree {
    /// The set of non-trivial *unrooted* bipartitions, each in canonical
    /// form: of the two complementary sides of a split, the one **not**
    /// containing taxon 0 is stored (so `{0,1}` and `{2,3}` of a 4-taxon
    /// tree denote the same split and compare equal).
    pub fn bipartitions(&self) -> BTreeSet<Vec<usize>> {
        let mut clades: Vec<Vec<usize>> = Vec::with_capacity(self.merges.len());
        let mut out = BTreeSet::new();
        for &(a, b) in &self.merges {
            let mut clade = Vec::new();
            for &child in &[a, b] {
                if child < self.taxa {
                    clade.push(child);
                } else {
                    clade.extend(clades[child - self.taxa].iter().copied());
                }
            }
            clade.sort_unstable();
            clades.push(clade.clone());
            // Canonicalize: store the side without taxon 0.
            let canonical = if clade.contains(&0) {
                (0..self.taxa).filter(|t| !clade.contains(t)).collect()
            } else {
                clade
            };
            // Trivial splits (a single leaf on either side, or everything)
            // carry no signal.
            if canonical.len() > 1 && canonical.len() < self.taxa - 1 {
                out.insert(canonical);
            }
        }
        out
    }
}

/// A simulated dataset: true tree plus evolved sequences.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The topology that generated the data.
    pub true_tree: Tree,
    /// One DNA sequence (values 0–3) per taxon.
    pub sequences: Vec<Vec<u8>>,
    /// The gamma shape used for site rates (latent; drives the ideal
    /// `alpha`).
    pub gamma_shape: f64,
}

/// Distance-estimation parameters — the target variables of this benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistParams {
    /// Gamma-correction shape α for the Jukes–Cantor distance; the correct
    /// value matches the (unknown) rate heterogeneity of the data.
    pub alpha: f64,
    /// Saturation cap: estimated distances are clamped to this value.
    pub cutoff: f64,
    /// Pseudocount added to the mismatch proportion (regularizes short
    /// alignments).
    pub pseudo: f64,
}

impl Default for DistParams {
    /// Shipped defaults — the `baseline` setting (no gamma correction).
    fn default() -> Self {
        DistParams {
            alpha: 100.0, // effectively no rate-heterogeneity correction
            cutoff: 3.0,
            pseudo: 0.0,
        }
    }
}

/// Simulates a uniform random binary topology and evolves sequences of the
/// given length along it. Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `taxa < 4` or `len == 0`.
pub fn generate_dataset(taxa: usize, len: usize, seed: u64) -> Dataset {
    assert!(taxa >= 4, "need at least 4 taxa");
    assert!(len > 0, "sequences must be non-empty");
    let mut rng = StdRng::seed_from_u64(seed);
    let gamma_shape = rng.gen_range(0.3..2.0f64);

    // Random topology by repeatedly joining two live lineages.
    let mut live: Vec<usize> = (0..taxa).collect();
    let mut merges = Vec::with_capacity(taxa - 1);
    let mut next_id = taxa;
    while live.len() > 1 {
        let i = rng.gen_range(0..live.len());
        let a = live.swap_remove(i);
        let j = rng.gen_range(0..live.len());
        let b = live.swap_remove(j);
        merges.push((a, b));
        live.push(next_id);
        next_id += 1;
    }
    let true_tree = Tree { taxa, merges };

    // Per-site rates from a crude gamma sampler (sum of exponentials
    // rounded by the shape, adequate for rate heterogeneity).
    let site_rates: Vec<f64> = (0..len)
        .map(|_| sample_gamma(&mut rng, gamma_shape) / gamma_shape)
        .collect();

    // Evolve sequences: root sequence random, each merge event's children
    // diverge with per-branch substitution probability.
    // We evolve top-down: assign the root (last merge), then walk down.
    let node_count = taxa + true_tree.merges.len();
    let mut seqs: Vec<Option<Vec<u8>>> = vec![None; node_count];
    let root = node_count - 1;
    seqs[root] = Some((0..len).map(|_| rng.gen_range(0..4u8)).collect());
    for (i, &(a, b)) in true_tree.merges.iter().enumerate().rev() {
        let parent = taxa + i;
        let parent_seq = seqs[parent].clone().expect("parents are filled top-down");
        for &child in &[a, b] {
            let branch = rng.gen_range(0.02..0.25f64);
            let mut child_seq = parent_seq.clone();
            for (site, base) in child_seq.iter_mut().enumerate() {
                // JC69: substitution probability along the branch, scaled
                // by the site's rate.
                let p = 0.75 * (1.0 - (-4.0 / 3.0 * branch * site_rates[site]).exp());
                if rng.gen_bool(p.clamp(0.0, 0.74)) {
                    let shift = rng.gen_range(1..4u8);
                    *base = (*base + shift) % 4;
                }
            }
            seqs[child] = Some(child_seq);
        }
    }
    let sequences = (0..taxa)
        .map(|i| seqs[i].clone().expect("all leaves evolved"))
        .collect();
    Dataset {
        true_tree,
        sequences,
        gamma_shape,
    }
}

fn sample_gamma(rng: &mut StdRng, shape: f64) -> f64 {
    // Sum-of-exponentials for the integer part + a fractional correction —
    // adequate for generating rate heterogeneity.
    let k = shape.floor() as usize;
    let mut acc = 0.0;
    for _ in 0..k {
        acc += -rng.gen_range(1e-9..1.0f64).ln();
    }
    let frac = shape - k as f64;
    if frac > 1e-9 {
        acc += -rng.gen_range(1e-9..1.0f64).ln() * frac;
    }
    acc.max(1e-6)
}

/// Estimates the pairwise distance matrix under gamma-corrected Jukes–
/// Cantor with the given parameters.
///
/// # Panics
///
/// Panics if sequences are empty or have unequal lengths.
pub fn estimate_distances(sequences: &[Vec<u8>], params: DistParams) -> Vec<Vec<f64>> {
    assert!(!sequences.is_empty(), "no sequences");
    let len = sequences[0].len();
    assert!(
        sequences.iter().all(|s| s.len() == len),
        "sequences must share a length"
    );
    let n = sequences.len();
    let mut d = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let mismatches = sequences[i]
                .iter()
                .zip(&sequences[j])
                .filter(|(a, b)| a != b)
                .count() as f64;
            let p = ((mismatches + params.pseudo) / (len as f64 + params.pseudo)).min(0.7499);
            // Gamma-corrected JC69:
            //   d = (3/4)·α·((1 − 4p/3)^(−1/α) − 1)
            let inner: f64 = 1.0 - 4.0 * p / 3.0;
            let dist = 0.75 * params.alpha * (inner.powf(-1.0 / params.alpha) - 1.0);
            let dist = dist.min(params.cutoff).max(0.0);
            d[i][j] = dist;
            d[j][i] = dist;
        }
    }
    d
}

/// Neighbor-joining tree reconstruction (Saitou & Nei 1987).
///
/// # Panics
///
/// Panics if the matrix is not square or has fewer than 4 rows.
#[allow(clippy::needless_range_loop)]
pub fn neighbor_joining(matrix: &[Vec<f64>]) -> Tree {
    let n = matrix.len();
    assert!(n >= 4, "need at least 4 taxa");
    assert!(
        matrix.iter().all(|row| row.len() == n),
        "matrix must be square"
    );
    let mut d: Vec<Vec<f64>> = matrix.to_vec();
    let mut ids: Vec<usize> = (0..n).collect();
    let mut merges = Vec::with_capacity(n - 1);
    let mut next_id = n;
    while ids.len() > 2 {
        let m = ids.len();
        let totals: Vec<f64> = (0..m).map(|i| d[i].iter().sum()).collect();
        // Q-criterion minimization.
        let (mut best, mut bi, mut bj) = (f64::INFINITY, 0, 1);
        for i in 0..m {
            for j in (i + 1)..m {
                let q = (m as f64 - 2.0) * d[i][j] - totals[i] - totals[j];
                if q < best {
                    best = q;
                    bi = i;
                    bj = j;
                }
            }
        }
        // New distances to the joined node.
        let mut new_row = Vec::with_capacity(m - 1);
        for k in 0..m {
            if k != bi && k != bj {
                new_row.push(0.5 * (d[bi][k] + d[bj][k] - d[bi][bj]));
            }
        }
        merges.push((ids[bi], ids[bj]));
        // Remove bj then bi (bj > bi), append the new node.
        let remove = |v: &mut Vec<Vec<f64>>, idx: usize| {
            v.remove(idx);
            for row in v.iter_mut() {
                row.remove(idx);
            }
        };
        remove(&mut d, bj);
        remove(&mut d, bi);
        ids.remove(bj);
        ids.remove(bi);
        for (row, &dist) in d.iter_mut().zip(&new_row) {
            row.push(dist);
        }
        let mut last = new_row.clone();
        last.push(0.0);
        d.push(last);
        ids.push(next_id);
        next_id += 1;
    }
    merges.push((ids[0], ids[1]));
    Tree { taxa: n, merges }
}

/// Convenience: distances + neighbor joining in one call.
/// UPGMA tree reconstruction (average-linkage clustering) — Phylip's other
/// distance method, used as an in-crate baseline comparator for NJ.
///
/// # Panics
///
/// Panics if the matrix is not square or has fewer than 2 rows.
#[allow(clippy::needless_range_loop)]
pub fn upgma(matrix: &[Vec<f64>]) -> Tree {
    let n = matrix.len();
    assert!(n >= 2, "need at least 2 taxa");
    assert!(
        matrix.iter().all(|row| row.len() == n),
        "matrix must be square"
    );
    let mut d: Vec<Vec<f64>> = matrix.to_vec();
    let mut ids: Vec<usize> = (0..n).collect();
    let mut sizes: Vec<f64> = vec![1.0; n];
    let mut merges = Vec::with_capacity(n - 1);
    let mut next_id = n;
    while ids.len() > 1 {
        let m = ids.len();
        // Closest pair under average linkage.
        let (mut best, mut bi, mut bj) = (f64::INFINITY, 0, 1);
        for i in 0..m {
            for j in (i + 1)..m {
                if d[i][j] < best {
                    best = d[i][j];
                    bi = i;
                    bj = j;
                }
            }
        }
        let (si, sj) = (sizes[bi], sizes[bj]);
        let mut new_row = Vec::with_capacity(m - 1);
        for k in 0..m {
            if k != bi && k != bj {
                new_row.push((si * d[bi][k] + sj * d[bj][k]) / (si + sj));
            }
        }
        merges.push((ids[bi], ids[bj]));
        let remove = |v: &mut Vec<Vec<f64>>, idx: usize| {
            v.remove(idx);
            for row in v.iter_mut() {
                row.remove(idx);
            }
        };
        remove(&mut d, bj);
        remove(&mut d, bi);
        ids.remove(bj);
        ids.remove(bi);
        sizes.remove(bj.max(bi));
        sizes.remove(bj.min(bi));
        for (row, &dist) in d.iter_mut().zip(&new_row) {
            row.push(dist);
        }
        let mut last = new_row.clone();
        last.push(0.0);
        d.push(last);
        ids.push(next_id);
        sizes.push(si + sj);
        next_id += 1;
    }
    Tree { taxa: n, merges }
}

/// Convenience: distance estimation + neighbor joining in one call.
pub fn infer_tree(sequences: &[Vec<u8>], params: DistParams) -> Tree {
    neighbor_joining(&estimate_distances(sequences, params))
}

/// Robinson–Foulds distance between two trees over the same taxa: the
/// number of bipartitions present in exactly one of them. **Lower is
/// better**; 0 means identical topologies.
///
/// # Panics
///
/// Panics if the trees have different leaf counts.
pub fn robinson_foulds(a: &Tree, b: &Tree) -> f64 {
    assert_eq!(a.taxa, b.taxa, "trees must share a taxon set");
    let ba = a.bipartitions();
    let bb = b.bipartitions();
    ba.symmetric_difference(&bb).count() as f64
}

/// Per-dataset oracle: searches the parameter grid for the lowest RF
/// distance — the "ideal configuration" labels.
pub fn ideal_params(data: &Dataset) -> (DistParams, f64) {
    let mut best = (DistParams::default(), f64::INFINITY);
    for &alpha in &[0.3f64, 0.5, 1.0, 2.0, 100.0] {
        for &cutoff in &[1.0f64, 2.0, 3.0] {
            for &pseudo in &[0.0f64, 1.0] {
                let params = DistParams {
                    alpha,
                    cutoff,
                    pseudo,
                };
                let tree = infer_tree(&data.sequences, params);
                let score = robinson_foulds(&tree, &data.true_tree);
                if score < best.1 {
                    best = (params, score);
                }
            }
        }
    }
    best
}

/// Summary features of a dataset's raw distance structure, used as the
/// compact (`Min`) feature band: mean/max/variance/quantiles of the
/// pairwise distances, per-site mismatch heterogeneity (the observable
/// footprint of rate variation, which determines the ideal `alpha`), and
/// the taxon count.
pub fn distance_summary(sequences: &[Vec<u8>]) -> Vec<f64> {
    let raw = estimate_distances(
        sequences,
        DistParams {
            alpha: 100.0,
            cutoff: 10.0,
            pseudo: 0.0,
        },
    );
    let mut values = Vec::new();
    for (i, row) in raw.iter().enumerate() {
        for &v in row.iter().skip(i + 1) {
            values.push(v);
        }
    }
    values.sort_by(f64::total_cmp);
    let n = values.len().max(1) as f64;
    let mean = values.iter().sum::<f64>() / n;
    let max = values.last().copied().unwrap_or(0.0);
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    let quantile = |q: f64| -> f64 {
        if values.is_empty() {
            0.0
        } else {
            values[((values.len() - 1) as f64 * q) as usize]
        }
    };
    // Per-site heterogeneity: variance of the per-column mismatch counts.
    // Gamma rate variation concentrates substitutions on hot columns.
    let len = sequences.first().map(Vec::len).unwrap_or(0);
    let mut site_var = 0.0;
    if len > 0 && sequences.len() > 1 {
        let mut counts = vec![0.0f64; len];
        for i in 0..sequences.len() {
            for j in (i + 1)..sequences.len() {
                for (site, count) in counts.iter_mut().enumerate() {
                    if sequences[i][site] != sequences[j][site] {
                        *count += 1.0;
                    }
                }
            }
        }
        let m = counts.iter().sum::<f64>() / len as f64;
        site_var = counts.iter().map(|c| (c - m) * (c - m)).sum::<f64>() / len as f64;
        // Normalize by the mean so the feature reflects *relative*
        // concentration (index of dispersion).
        if m > 1e-12 {
            site_var /= m;
        }
    }
    vec![
        mean,
        max,
        var,
        quantile(0.25),
        quantile(0.75),
        site_var,
        sequences.len() as f64,
    ]
}

/// Records this program's dynamic dependence shape (the Valgrind view):
/// `sequences → distances → summary/tree`, parameters feeding the result.
pub fn record_dependences(db: &mut au_trace::AnalysisDb) {
    db.mark_input("sequences");
    db.record_assign("pDist", &["sequences"], None, "estimateDistances");
    db.record_assign(
        "distMatrix",
        &["pDist", "alpha", "cutoff", "pseudo"],
        None,
        "estimateDistances",
    );
    db.record_assign("summary", &["pDist"], None, "summarize");
    db.record_assign("tree", &["distMatrix"], None, "neighborJoining");
    db.record_assign("result", &["tree", "summary"], None, "main");
    db.mark_target("alpha");
    db.mark_target("cutoff");
    db.mark_target("pseudo");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_generation_is_deterministic() {
        let a = generate_dataset(6, 100, 9);
        let b = generate_dataset(6, 100, 9);
        assert_eq!(a.sequences, b.sequences);
        assert_eq!(a.true_tree, b.true_tree);
    }

    #[test]
    fn sequences_have_requested_shape() {
        let data = generate_dataset(5, 80, 1);
        assert_eq!(data.sequences.len(), 5);
        assert!(data.sequences.iter().all(|s| s.len() == 80));
        assert!(data.sequences.iter().all(|s| s.iter().all(|&b| b < 4)));
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn distances_are_symmetric_nonnegative() {
        let data = generate_dataset(6, 120, 3);
        let d = estimate_distances(&data.sequences, DistParams::default());
        for i in 0..6 {
            assert_eq!(d[i][i], 0.0);
            for j in 0..6 {
                assert!((d[i][j] - d[j][i]).abs() < 1e-12);
                assert!(d[i][j] >= 0.0);
            }
        }
    }

    #[test]
    fn identical_sequences_have_zero_distance() {
        let seqs = vec![vec![0u8, 1, 2, 3]; 4];
        let d = estimate_distances(&seqs, DistParams::default());
        assert_eq!(d[0][1], 0.0);
    }

    #[test]
    fn nj_recovers_clean_quartet() {
        // Perfect additive matrix for ((0,1),(2,3)).
        let m = vec![
            vec![0.0, 0.2, 1.0, 1.0],
            vec![0.2, 0.0, 1.0, 1.0],
            vec![1.0, 1.0, 0.0, 0.2],
            vec![1.0, 1.0, 0.2, 0.0],
        ];
        let tree = neighbor_joining(&m);
        let parts = tree.bipartitions();
        assert!(
            parts.contains(&vec![0, 1]) || parts.contains(&vec![2, 3]),
            "quartet split missing: {parts:?}"
        );
    }

    #[test]
    fn rf_zero_for_identical_trees() {
        let data = generate_dataset(8, 100, 5);
        assert_eq!(robinson_foulds(&data.true_tree, &data.true_tree), 0.0);
    }

    #[test]
    fn inference_on_long_sequences_is_accurate() {
        let data = generate_dataset(8, 2000, 17);
        let tree = infer_tree(
            &data.sequences,
            DistParams {
                alpha: 1.0,
                cutoff: 3.0,
                pseudo: 0.0,
            },
        );
        let rf = robinson_foulds(&tree, &data.true_tree);
        // With 2000 sites the topology should be mostly recoverable.
        assert!(rf <= 4.0, "rf = {rf}");
    }

    #[test]
    fn ideal_params_at_least_match_defaults() {
        let data = generate_dataset(8, 150, 21);
        let default_tree = infer_tree(&data.sequences, DistParams::default());
        let default_rf = robinson_foulds(&default_tree, &data.true_tree);
        let (_, best_rf) = ideal_params(&data);
        assert!(best_rf <= default_rf);
    }

    #[test]
    fn summary_has_seven_features() {
        let data = generate_dataset(5, 60, 2);
        let s = distance_summary(&data.sequences);
        assert_eq!(s.len(), 7);
        assert_eq!(s[6], 5.0);
        assert!(s[1] >= s[0], "max >= mean");
        assert!(s[4] >= s[3], "p75 >= p25");
        assert!(s[5] >= 0.0, "dispersion index non-negative");
    }

    #[test]
    fn site_heterogeneity_tracks_gamma_shape() {
        // Lower gamma shape = more rate concentration = higher dispersion.
        // Check the correlation sign over a batch of datasets.
        let datasets: Vec<Dataset> = (0..30).map(|s| generate_dataset(6, 300, s)).collect();
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
        let shapes: Vec<f64> = datasets.iter().map(|d| d.gamma_shape).collect();
        let dispersion: Vec<f64> = datasets
            .iter()
            .map(|d| distance_summary(&d.sequences)[5])
            .collect();
        let (ms, md) = (mean(&shapes), mean(&dispersion));
        let cov: f64 = shapes
            .iter()
            .zip(&dispersion)
            .map(|(s, d)| (s - ms) * (d - md))
            .sum();
        assert!(
            cov < 0.0,
            "dispersion should fall as gamma shape rises, cov={cov}"
        );
    }

    #[test]
    fn dependence_shape_supports_algorithm1() {
        let mut db = au_trace::AnalysisDb::new();
        record_dependences(&mut db);
        let features = au_trace::extract_sl(&db);
        let alpha = db.id("alpha").unwrap();
        assert!(!features[&alpha].is_empty());
        let min = au_trace::select_band(&features[&alpha], au_trace::DistanceBand::Min);
        assert!(!min.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn nj_rejects_tiny_matrices() {
        let _ = neighbor_joining(&[vec![0.0]]);
    }

    #[test]
    fn nj_recovers_additive_six_taxa() {
        // Additive matrix for the tree ((0,1),(2,3),(4,5)).
        let d = vec![
            vec![0.0, 2.0, 4.0, 4.0, 5.0, 5.0],
            vec![2.0, 0.0, 4.0, 4.0, 5.0, 5.0],
            vec![4.0, 4.0, 0.0, 2.0, 5.0, 5.0],
            vec![4.0, 4.0, 2.0, 0.0, 5.0, 5.0],
            vec![5.0, 5.0, 5.0, 5.0, 0.0, 2.0],
            vec![5.0, 5.0, 5.0, 5.0, 2.0, 0.0],
        ];
        let parts = neighbor_joining(&d).bipartitions();
        // {0,1} canonicalizes to its taxon-0-free complement {2,3,4,5}.
        assert!(parts.contains(&vec![2, 3, 4, 5]), "{parts:?}");
        assert!(parts.contains(&vec![2, 3]), "{parts:?}");
        assert!(parts.contains(&vec![4, 5]), "{parts:?}");
    }

    #[test]
    fn upgma_recovers_ultrametric_quartet() {
        // Ultrametric matrix for ((0,1),(2,3)): UPGMA's ideal case.
        let m = vec![
            vec![0.0, 0.2, 1.0, 1.0],
            vec![0.2, 0.0, 1.0, 1.0],
            vec![1.0, 1.0, 0.0, 0.2],
            vec![1.0, 1.0, 0.2, 0.0],
        ];
        let tree = upgma(&m);
        let parts = tree.bipartitions();
        assert!(
            parts.contains(&vec![0, 1]) || parts.contains(&vec![2, 3]),
            "quartet split missing: {parts:?}"
        );
    }

    #[test]
    fn upgma_and_nj_agree_on_clean_data() {
        // Use the dataset's true rate-heterogeneity shape so the estimated
        // distances are as additive as the model allows.
        let data = generate_dataset(6, 3000, 8);
        let d = estimate_distances(
            &data.sequences,
            DistParams {
                alpha: data.gamma_shape,
                cutoff: 5.0,
                pseudo: 0.0,
            },
        );
        let nj_rf = robinson_foulds(&neighbor_joining(&d), &data.true_tree);
        let up_rf = robinson_foulds(&upgma(&d), &data.true_tree);
        let bound = 2.0 * (6.0 - 3.0);
        assert!(nj_rf <= bound && up_rf <= bound);
        assert!(
            nj_rf <= 2.0,
            "nj with ideal alpha should be near-perfect: {nj_rf} (upgma {up_rf})"
        );
    }

    #[test]
    fn upgma_produces_full_tree() {
        let data = generate_dataset(7, 100, 12);
        let d = estimate_distances(&data.sequences, DistParams::default());
        let tree = upgma(&d);
        assert_eq!(tree.taxa, 7);
        assert_eq!(tree.merges.len(), 6, "n-1 merges for n taxa");
    }
}
