//! Sequential networks: construction, training, and persistence.

use crate::activation::{Activation, ActivationLayer};
use crate::conv::{Conv2d, Flatten, MaxPool2d};
use crate::dense::Dense;
use crate::dropout::Dropout;
use crate::layer::{Layer, LayerSpec, Param};
use crate::loss::Loss;
use crate::optim::Optimizer;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use std::path::Path;

/// Errors from model persistence.
#[derive(Debug)]
pub enum NnError {
    /// I/O failure while reading or writing a model file.
    Io(std::io::Error),
    /// The model file was not valid JSON or described an unknown layer.
    Format(String),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Io(e) => write!(f, "model i/o failed: {e}"),
            NnError::Format(msg) => write!(f, "invalid model format: {msg}"),
        }
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NnError::Io(e) => Some(e),
            NnError::Format(_) => None,
        }
    }
}

impl From<std::io::Error> for NnError {
    fn from(e: std::io::Error) -> Self {
        NnError::Io(e)
    }
}

#[derive(Serialize, Deserialize)]
struct ModelFile {
    in_features: usize,
    layers: Vec<LayerSpec>,
}

/// A sequential feed-forward network.
///
/// Built with [`Network::builder`]; trained with [`Network::train_batch`];
/// persisted with [`Network::save`] / [`Network::load`] so the paper's
/// TR→TS (train → deploy) mode split works across processes.
#[derive(Debug)]
pub struct Network {
    in_features: usize,
    layers: Vec<Box<dyn Layer>>,
}

impl Network {
    /// Starts building a network that accepts `in_features` inputs.
    pub fn builder(in_features: usize) -> NetworkBuilder {
        NetworkBuilder {
            in_features,
            current: in_features,
            layers: Vec::new(),
        }
    }

    /// Number of input features.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Number of output features (the last shaped layer's width).
    pub fn out_features(&self) -> usize {
        self.layers
            .iter()
            .rev()
            .find_map(|l| l.out_features())
            .unwrap_or(self.in_features)
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Total scalar parameter count — the paper's "model size" metric
    /// (Table 2) counts these.
    pub fn param_count(&mut self) -> usize {
        self.layers
            .iter_mut()
            .map(|l| l.params_mut().iter().map(|p| p.len()).sum::<usize>())
            .sum()
    }

    /// Runs inference (TS mode) on a `[batch, in]` tensor.
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        let _t = t_time!("au_nn.forward");
        self.forward_mode(input, false)
    }

    /// Runs inference through `&self`: identical math to
    /// [`Network::forward`], but without touching any backward-pass cache —
    /// so one trained network (behind an `RwLock` read guard or `Arc`) can
    /// serve arbitrarily many threads at once.
    pub fn infer(&self, input: &Tensor) -> Tensor {
        let _t = t_time!("au_nn.forward");
        let mut x = input.clone();
        for layer in &self.layers {
            x = layer.infer(&x);
        }
        x
    }

    /// [`Network::infer`] through caller-owned ping-pong buffers: after the
    /// first call on a given [`InferScratch`], repeated inference on
    /// same-shaped inputs performs **zero heap allocations** — the core of
    /// the f32 serving fast path.
    ///
    /// Bit-identical to [`Network::infer`]: every layer's
    /// [`Layer::infer_into`] runs the same operations in the same order,
    /// only the destination buffers are reused. Returns a borrow of the
    /// scratch buffer holding the output (copy it out if it must outlive
    /// the next call).
    pub fn infer_reusing<'s>(&self, input: &Tensor, scratch: &'s mut InferScratch) -> &'s Tensor {
        let _t = t_time!("au_nn.forward");
        let InferScratch { ping, pong } = scratch;
        ping.copy_from(input);
        let mut src: &mut Tensor = ping;
        let mut dst: &mut Tensor = pong;
        for layer in &self.layers {
            layer.infer_into(src, dst);
            std::mem::swap(&mut src, &mut dst);
        }
        src
    }

    fn forward_mode(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, train);
        }
        x
    }

    /// Runs one training step on a batch, returning the loss before the
    /// update. This is the semantics' `gradient(Parm, v)` statement.
    pub fn train_batch(
        &mut self,
        input: &Tensor,
        target: &Tensor,
        loss: Loss,
        opt: &mut dyn Optimizer,
    ) -> f32 {
        let _t = t_time!("au_nn.train_batch");
        let output = self.forward_mode(input, true);
        let loss_value = loss.value(&output, target);
        let mut grad = loss.gradient(&output, target);
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad);
        }
        for layer in &mut self.layers {
            for param in layer.params_mut() {
                opt.step(param);
                param.zero_grad();
            }
            layer.invalidate_cached_weights();
        }
        opt.end_batch();
        t_count!("au_nn.batches_trained");
        t_gauge!("au_nn.last_batch_loss", f64::from(loss_value));
        loss_value
    }

    /// [`Network::train_batch`] with the minibatch fanned out across au-par
    /// workers: the batch rows are split into contiguous chunks, each chunk
    /// runs forward/backward on a weight-sharing replica, and the chunk
    /// gradients are summed in chunk order before a single optimizer step.
    ///
    /// With one worker (e.g. `AU_PAR_THREADS=1`, a single-core host, or a
    /// batch smaller than two chunks) this *is* [`Network::train_batch`] —
    /// same code path, bit-identical results. With N workers the merged
    /// gradient is mathematically equal but floating-point addition is
    /// regrouped at chunk boundaries, so weights may differ from the serial
    /// run by normal `f32` rounding (documented tolerance: ~1e-6 relative
    /// per step). Dropout replicas draw independent masks; networks with
    /// dropout train correctly but make no cross-thread determinism claim.
    pub fn train_minibatch(
        &mut self,
        input: &Tensor,
        target: &Tensor,
        loss: Loss,
        opt: &mut dyn Optimizer,
    ) -> f32 {
        /// Below this many rows per chunk, replica setup costs more than
        /// the parallel backward saves.
        const MIN_ROWS: usize = 8;
        let batch = input.batch();
        let ranges = au_par::split_ranges(batch, MIN_ROWS);
        if ranges.len() <= 1 {
            return self.train_batch(input, target, loss, opt);
        }
        let _t = t_time!("au_nn.train_batch");
        let scale = |r: &std::ops::Range<usize>| (r.end - r.start) as f32 / batch as f32;
        let row_len = input.row_len();
        let target_len = target.row_len();
        let chunk_of = |t: &Tensor, len: usize, r: &std::ops::Range<usize>| {
            Tensor::from_vec(
                &[r.end - r.start, len],
                t.data()[r.start * len..r.end * len].to_vec(),
            )
        };
        // Chunks 1.. go to the persistent pool, each owning a weight-sharing
        // replica and its chunk tensors; chunk 0 runs on the calling thread
        // through `self` (same merge structure as the scoped version this
        // replaced — chunk tensors, replica construction, and merge order
        // are unchanged, so results are too).
        let mut fork: au_par::Fork<(Network, f32)> = au_par::Fork::new();
        for r in &ranges[1..] {
            let mut replica = self.deep_clone();
            let x = chunk_of(input, row_len, r);
            let y = chunk_of(target, target_len, r);
            let s = scale(r);
            fork.submit(move || {
                let value = run_minibatch_chunk(&mut replica, &x, &y, loss, s);
                (replica, value)
            });
        }
        let mut chunk_losses = vec![0.0f32; ranges.len()];
        {
            let x = chunk_of(input, row_len, &ranges[0]);
            let y = chunk_of(target, target_len, &ranges[0]);
            chunk_losses[0] = run_minibatch_chunk(self, &x, &y, loss, scale(&ranges[0]));
        }
        let mut replicas: Vec<Network> = Vec::with_capacity(ranges.len() - 1);
        for (slot, (replica, value)) in chunk_losses[1..].iter_mut().zip(fork.join()) {
            *slot = value;
            replicas.push(replica);
        }
        // Merge replica gradients into the main network in chunk order,
        // then take one optimizer step — identical step sequence to
        // `train_batch`.
        for (li, layer) in self.layers.iter_mut().enumerate() {
            let mut replica_params: Vec<Vec<&mut Param>> = replicas
                .iter_mut()
                .map(|r| r.layers[li].params_mut())
                .collect();
            for (pi, param) in layer.params_mut().into_iter().enumerate() {
                for rep in replica_params.iter_mut() {
                    for (g, d) in param.grad.data_mut().iter_mut().zip(rep[pi].grad.data()) {
                        *g += d;
                    }
                }
                opt.step(param);
                param.zero_grad();
            }
            layer.invalidate_cached_weights();
        }
        opt.end_batch();
        t_count!("au_nn.batches_trained");
        let loss_value: f32 = chunk_losses
            .iter()
            .zip(&ranges)
            .map(|(v, r)| v * scale(r))
            .sum();
        t_gauge!("au_nn.last_batch_loss", f64::from(loss_value));
        loss_value
    }

    /// Clones the architecture and current weights into an independent
    /// network (training caches start empty; dropout replicas reseed).
    ///
    /// Used for minibatch worker replicas and by the engine's
    /// copy-on-write model snapshots (training while an `Arc`'d network is
    /// still serving).
    pub fn deep_clone(&self) -> Network {
        Network {
            in_features: self.in_features,
            layers: self
                .layers
                .iter()
                .map(|l| build_layer(l.spec()).expect("replica of a live layer"))
                .collect(),
        }
    }

    /// Like [`Network::train_batch`] but with a caller-supplied output
    /// gradient instead of a loss — needed by Q-learning, which only
    /// penalizes the taken action's output.
    pub fn train_with_output_grad(
        &mut self,
        input: &Tensor,
        grad_out: &Tensor,
        opt: &mut dyn Optimizer,
    ) {
        let _t = t_time!("au_nn.train_batch");
        t_count!("au_nn.batches_trained");
        let _ = self.forward_mode(input, true);
        let mut grad = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad);
        }
        for layer in &mut self.layers {
            for param in layer.params_mut() {
                opt.step(param);
                param.zero_grad();
            }
            layer.invalidate_cached_weights();
        }
        opt.end_batch();
    }

    /// Drops every layer's derived weight views (cached transposes).
    ///
    /// Training steps and [`Network::copy_weights_from`] do this
    /// automatically; callers that mutate parameter values directly —
    /// checkpoint restores, custom weight surgery through layer params —
    /// must call it afterwards or stale views will poison later backward
    /// passes.
    pub fn invalidate_cached_weights(&mut self) {
        for layer in &mut self.layers {
            layer.invalidate_cached_weights();
        }
    }

    /// Serializes the model (architecture + weights) to a JSON string.
    pub fn to_json(&self) -> String {
        let file = ModelFile {
            in_features: self.in_features,
            layers: self.layers.iter().map(|l| l.spec()).collect(),
        };
        serde_json::to_string(&file).expect("model serialization cannot fail")
    }

    /// Reconstructs a model from [`Network::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Format`] if the JSON is malformed or names an
    /// unknown activation.
    pub fn from_json(json: &str) -> Result<Self, NnError> {
        let file: ModelFile =
            serde_json::from_str(json).map_err(|e| NnError::Format(e.to_string()))?;
        let mut layers: Vec<Box<dyn Layer>> = Vec::with_capacity(file.layers.len());
        for spec in file.layers {
            layers.push(build_layer(spec)?);
        }
        Ok(Network {
            in_features: file.in_features,
            layers,
        })
    }

    /// Saves the model to a file — Fig. 8's persistent model state for
    /// `loadModel`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Io`] on filesystem failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), NnError> {
        std::fs::write(path, self.to_json())?;
        Ok(())
    }

    /// Loads a model saved by [`Network::save`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Io`] on filesystem failure and [`NnError::Format`]
    /// for malformed content.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, NnError> {
        let json = std::fs::read_to_string(path)?;
        Network::from_json(&json)
    }

    /// Copies all weights from `other` into `self`.
    ///
    /// Used for DQN target-network synchronization.
    ///
    /// # Panics
    ///
    /// Panics if the architectures differ.
    pub fn copy_weights_from(&mut self, other: &mut Network) {
        assert_eq!(self.depth(), other.depth(), "architecture mismatch");
        for (a, b) in self.layers.iter_mut().zip(other.layers.iter_mut()) {
            let mut bp = b.params_mut();
            for (pa, pb) in a.params_mut().into_iter().zip(bp.iter_mut()) {
                assert_eq!(
                    pa.value.shape(),
                    pb.value.shape(),
                    "parameter shape mismatch"
                );
                pa.value = pb.value.clone();
            }
            a.invalidate_cached_weights();
        }
    }

    /// Direct access to layers for gradient checking.
    pub(crate) fn layers_mut(&mut self) -> &mut [Box<dyn Layer>] {
        &mut self.layers
    }
}

/// Forward/backward over one minibatch chunk, leaving gradients accumulated
/// in `net`; returns the chunk loss (before rescaling). The loss gradient
/// is rescaled by `scale` (`chunk_rows / batch_rows`) so the merged
/// chunk-gradient sum equals the full-batch gradient.
fn run_minibatch_chunk(net: &mut Network, x: &Tensor, y: &Tensor, loss: Loss, scale: f32) -> f32 {
    let output = net.forward_mode(x, true);
    let value = loss.value(&output, y);
    let mut grad = loss.gradient(&output, y).scale(scale);
    for layer in net.layers.iter_mut().rev() {
        grad = layer.backward(&grad);
    }
    value
}

/// Reusable ping-pong buffers for [`Network::infer_reusing`]: one
/// `InferScratch` per serving thread turns repeated same-shape inference
/// into a zero-allocation loop.
#[derive(Debug, Default)]
pub struct InferScratch {
    ping: Tensor,
    pong: Tensor,
}

fn build_layer(spec: LayerSpec) -> Result<Box<dyn Layer>, NnError> {
    Ok(match spec {
        LayerSpec::Dense { weight, bias, .. } => Box::new(Dense::from_weights(weight, bias)),
        LayerSpec::Activation { kind } => {
            let act = Activation::from_name(&kind)
                .ok_or_else(|| NnError::Format(format!("unknown activation `{kind}`")))?;
            Box::new(ActivationLayer::new(act))
        }
        LayerSpec::Conv2d {
            in_channels,
            out_channels,
            kernel,
            stride,
            in_h,
            in_w,
            weight,
            bias,
        } => Box::new(Conv2d::from_weights(
            in_channels,
            out_channels,
            kernel,
            stride,
            in_h,
            in_w,
            weight,
            bias,
        )),
        LayerSpec::MaxPool2d {
            channels,
            window,
            in_h,
            in_w,
        } => Box::new(MaxPool2d::new(channels, window, in_h, in_w)),
        LayerSpec::Flatten { features } => Box::new(Flatten::new(features)),
        LayerSpec::Dropout { p } => Box::new(Dropout::new(p)),
    })
}

/// Incremental [`Network`] constructor with shape inference.
///
/// Each method appends a layer; widths are threaded automatically so callers
/// only give output sizes (matching the paper's `au_config` where input and
/// output layer sizes are "automatically computed").
#[derive(Debug)]
pub struct NetworkBuilder {
    in_features: usize,
    current: usize,
    layers: Vec<Box<dyn Layer>>,
}

impl NetworkBuilder {
    /// Appends a dense layer with `out` outputs.
    pub fn dense(mut self, out: usize) -> Self {
        self.layers.push(Box::new(Dense::new(self.current, out)));
        self.current = out;
        self
    }

    /// Appends an activation.
    pub fn activation(mut self, act: Activation) -> Self {
        self.layers.push(Box::new(ActivationLayer::new(act)));
        self
    }

    /// Appends a convolution over the current features viewed as
    /// `[channels, h, w]`.
    ///
    /// # Panics
    ///
    /// Panics if `channels * h * w` does not equal the current feature count.
    pub fn conv2d(
        mut self,
        channels: usize,
        h: usize,
        w: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
    ) -> Self {
        assert_eq!(
            channels * h * w,
            self.current,
            "conv2d input volume {}x{}x{} does not match current features {}",
            channels,
            h,
            w,
            self.current
        );
        let conv = Conv2d::new(channels, out_channels, kernel, stride, h, w);
        self.current = conv.out_features().expect("conv has a size");
        self.layers.push(Box::new(conv));
        self
    }

    /// Appends non-overlapping max pooling over `[channels, h, w]`.
    ///
    /// # Panics
    ///
    /// Panics if the volume does not match the current feature count.
    pub fn max_pool2d(mut self, channels: usize, h: usize, w: usize, window: usize) -> Self {
        assert_eq!(channels * h * w, self.current, "pool input volume mismatch");
        let pool = MaxPool2d::new(channels, window, h, w);
        self.current = pool.out_features().expect("pool has a size");
        self.layers.push(Box::new(pool));
        self
    }

    /// Appends an explicit flatten marker.
    pub fn flatten(mut self) -> Self {
        self.layers.push(Box::new(Flatten::new(self.current)));
        self
    }

    /// Appends inverted dropout with drop probability `p` (active only in
    /// training mode).
    pub fn dropout(mut self, p: f32) -> Self {
        self.layers.push(Box::new(Dropout::new(p)));
        self
    }

    /// Finalizes the network.
    pub fn build(self) -> Network {
        Network {
            in_features: self.in_features,
            layers: self.layers,
        }
    }
}

/// Builds the paper's default SL architecture: a fully connected network with
/// the given hidden layer sizes and ReLU activations (`au_config(…, DNN,
/// AdamOpt, layers, n1, …)`).
pub(crate) fn dnn(in_features: usize, hidden: &[usize], out_features: usize) -> Network {
    let mut b = Network::builder(in_features);
    for &h in hidden {
        b = b.dense(h).activation(Activation::Relu);
    }
    b.dense(out_features).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Adam, Sgd};

    #[test]
    fn builder_threads_shapes() {
        let mut net = Network::builder(4)
            .dense(8)
            .activation(Activation::Relu)
            .dense(2)
            .build();
        assert_eq!(net.in_features(), 4);
        assert_eq!(net.out_features(), 2);
        assert_eq!(net.depth(), 3);
        assert_eq!(net.param_count(), 4 * 8 + 8 + 8 * 2 + 2);
    }

    #[test]
    fn trains_xor() {
        crate::init::set_init_seed(3);
        let mut net = Network::builder(2)
            .dense(8)
            .activation(Activation::Tanh)
            .dense(1)
            .build();
        let xs = Tensor::from_rows(&[&[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]]);
        let ys = Tensor::from_rows(&[&[0.0], &[1.0], &[1.0], &[0.0]]);
        let mut opt = Adam::new(0.05);
        let mut last = f32::MAX;
        for _ in 0..800 {
            last = net.train_batch(&xs, &ys, Loss::Mse, &mut opt);
        }
        assert!(last < 0.05, "xor loss should fall below 0.05, got {last}");
    }

    #[test]
    fn infer_matches_forward_everywhere() {
        // Every layer kind: conv → pool → flatten → dense → act → dropout.
        crate::init::set_init_seed(41);
        let mut net = Network::builder(8 * 8)
            .conv2d(1, 8, 8, 2, 3, 1)
            .activation(Activation::Relu)
            .max_pool2d(2, 6, 6, 2)
            .flatten()
            .dense(8)
            .activation(Activation::Tanh)
            .dropout(0.2)
            .dense(3)
            .build();
        let x = Tensor::from_rows(&[&[0.3; 64], &[0.7; 64]]);
        let by_ref = net.infer(&x);
        let by_mut = net.forward(&x);
        assert_eq!(by_ref, by_mut, "infer must be bit-identical to forward");
    }

    /// The allocation-free serving path must be bit-identical to `infer`
    /// across every layer kind, and stay correct when the scratch is
    /// reused across different networks and input shapes.
    #[test]
    fn infer_reusing_is_bit_identical_to_infer() {
        crate::init::set_init_seed(41);
        let net = Network::builder(8 * 8)
            .conv2d(1, 8, 8, 2, 3, 1)
            .activation(Activation::Relu)
            .max_pool2d(2, 6, 6, 2)
            .flatten()
            .dense(8)
            .activation(Activation::Tanh)
            .dropout(0.2)
            .dense(3)
            .build();
        let mut scratch = InferScratch::default();
        let x = Tensor::from_rows(&[&[0.3; 64], &[0.7; 64]]);
        for _ in 0..3 {
            let fresh = net.infer(&x);
            let reused = net.infer_reusing(&x, &mut scratch);
            assert_eq!(&fresh, reused, "scratch path must match infer exactly");
        }
        // Same scratch, different network and shape: buffers re-adapt.
        crate::init::set_init_seed(42);
        let other = dnn(5, &[16], 2);
        let x2 = Tensor::from_rows(&[&[0.1, -0.2, 0.3, -0.4, 0.5]]);
        let fresh = other.infer(&x2);
        let reused = other.infer_reusing(&x2, &mut scratch);
        assert_eq!(&fresh, reused);
    }

    /// A network with no layers degenerates to the identity on both paths.
    #[test]
    fn infer_reusing_identity_on_empty_network() {
        let net = Network::builder(3).build();
        let mut scratch = InferScratch::default();
        let x = Tensor::row(&[1.0, 2.0, 3.0]);
        assert_eq!(net.infer_reusing(&x, &mut scratch), &net.infer(&x));
    }

    #[test]
    fn networks_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Network>();
    }

    #[test]
    fn json_round_trip_preserves_predictions() {
        let mut net = Network::builder(3)
            .dense(5)
            .activation(Activation::Sigmoid)
            .dense(2)
            .build();
        let x = Tensor::row(&[0.1, -0.2, 0.3]);
        let before = net.forward(&x);
        let mut restored = Network::from_json(&net.to_json()).unwrap();
        let after = restored.forward(&x);
        assert_eq!(before, after);
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(matches!(
            Network::from_json("not json"),
            Err(NnError::Format(_))
        ));
    }

    #[test]
    fn save_load_file_round_trip() {
        let dir = std::env::temp_dir().join("au_nn_test_model.json");
        let mut net = Network::builder(2).dense(2).build();
        net.save(&dir).unwrap();
        let mut loaded = Network::load(&dir).unwrap();
        let x = Tensor::row(&[1.0, -1.0]);
        assert_eq!(net.forward(&x), loaded.forward(&x));
        let _ = std::fs::remove_file(&dir);
    }

    #[test]
    fn copy_weights_synchronizes() {
        let mut a = Network::builder(2).dense(3).dense(1).build();
        let mut b = Network::builder(2).dense(3).dense(1).build();
        let x = Tensor::row(&[0.5, 0.5]);
        assert_ne!(a.forward(&x), b.forward(&x));
        a.copy_weights_from(&mut b);
        assert_eq!(a.forward(&x), b.forward(&x));
    }

    #[test]
    fn conv_network_builds_and_runs() {
        // A miniature DeepMind-style pixel network: conv → pool → dense.
        let mut net = Network::builder(8 * 8)
            .conv2d(1, 8, 8, 2, 3, 1)
            .activation(Activation::Relu)
            .max_pool2d(2, 6, 6, 2)
            .flatten()
            .dense(4)
            .build();
        let x = Tensor::zeros(&[2, 64]);
        let y = net.forward(&x);
        assert_eq!(y.shape(), &[2, 4]);
    }

    #[test]
    fn sgd_reduces_loss_too() {
        crate::init::set_init_seed(11);
        let mut net = Network::builder(1)
            .dense(4)
            .activation(Activation::Tanh)
            .dense(1)
            .build();
        let xs = Tensor::from_rows(&[&[0.0], &[1.0]]);
        let ys = Tensor::from_rows(&[&[1.0], &[-1.0]]);
        let mut opt = Sgd::new(0.1);
        let first = net.train_batch(&xs, &ys, Loss::Mse, &mut opt);
        let mut last = first;
        for _ in 0..200 {
            last = net.train_batch(&xs, &ys, Loss::Mse, &mut opt);
        }
        assert!(last < first, "loss should decrease: {first} -> {last}");
    }

    #[test]
    fn dropout_network_json_round_trip() {
        crate::init::set_init_seed(13);
        let mut net = Network::builder(4)
            .dense(8)
            .dropout(0.3)
            .activation(Activation::Relu)
            .dense(2)
            .build();
        let x = Tensor::row(&[0.1, 0.2, 0.3, 0.4]);
        // Inference is deterministic (dropout inactive in TS mode).
        let before = net.forward(&x);
        let mut restored = Network::from_json(&net.to_json()).unwrap();
        assert_eq!(restored.forward(&x), before);
        assert_eq!(restored.depth(), 4);
    }

    #[test]
    fn dropout_training_still_converges() {
        crate::init::set_init_seed(14);
        let mut net = Network::builder(1)
            .dense(16)
            .activation(Activation::Tanh)
            .dropout(0.1)
            .dense(1)
            .build();
        let xs = Tensor::from_rows(&[&[0.0], &[0.5], &[1.0]]);
        let ys = Tensor::from_rows(&[&[0.0], &[1.0], &[2.0]]);
        let mut opt = Adam::new(0.02);
        for _ in 0..400 {
            net.train_batch(&xs, &ys, Loss::Mse, &mut opt);
        }
        let out = net.forward(&Tensor::row(&[0.5]));
        assert!((out.data()[0] - 1.0).abs() < 0.3, "got {}", out.data()[0]);
    }

    #[test]
    fn dnn_helper_shapes() {
        let net = dnn(10, &[256, 64], 5);
        assert_eq!(net.in_features(), 10);
        assert_eq!(net.out_features(), 5);
        // dense+relu per hidden, final dense
        assert_eq!(net.depth(), 5);
    }

    fn training_fixture() -> (Network, Network, Tensor, Tensor) {
        crate::init::set_init_seed(77);
        let a = dnn(3, &[16], 2);
        crate::init::set_init_seed(77);
        let b = dnn(3, &[16], 2);
        let n = 32;
        let xs: Vec<f32> = (0..n * 3)
            .map(|i| ((i * 13 % 29) as f32) / 29.0 - 0.5)
            .collect();
        let ys: Vec<f32> = (0..n * 2).map(|i| ((i * 7 % 11) as f32) / 11.0).collect();
        (
            a,
            b,
            Tensor::from_vec(&[n, 3], xs),
            Tensor::from_vec(&[n, 2], ys),
        )
    }

    /// With one worker, `train_minibatch` *is* `train_batch`: identical
    /// weights bit-for-bit after many steps.
    #[test]
    fn minibatch_single_worker_is_bit_identical_to_train_batch() {
        let _g = crate::test_support::par_lock();
        au_par::set_thread_override(Some(1));
        let (mut a, mut b, xs, ys) = training_fixture();
        let mut oa = Adam::new(0.01);
        let mut ob = Adam::new(0.01);
        for _ in 0..20 {
            let la = a.train_batch(&xs, &ys, Loss::Mse, &mut oa);
            let lb = b.train_minibatch(&xs, &ys, Loss::Mse, &mut ob);
            assert_eq!(la.to_bits(), lb.to_bits(), "loss diverged");
        }
        let probe = Tensor::from_rows(&[&[0.2, -0.3, 0.4]]);
        assert_eq!(a.forward(&probe), b.forward(&probe));
        au_par::set_thread_override(None);
    }

    /// With N workers the merged gradient regroups f32 additions at chunk
    /// boundaries; weights must stay within a small relative tolerance of
    /// the serial run.
    #[test]
    fn minibatch_multi_worker_matches_serial_within_tolerance() {
        let _g = crate::test_support::par_lock();
        au_par::set_thread_override(Some(4));
        let (mut a, mut b, xs, ys) = training_fixture();
        let mut oa = Adam::new(0.01);
        let mut ob = Adam::new(0.01);
        for _ in 0..20 {
            let la = a.train_batch(&xs, &ys, Loss::Mse, &mut oa);
            let lb = b.train_minibatch(&xs, &ys, Loss::Mse, &mut ob);
            assert!((la - lb).abs() < 1e-4, "loss diverged: {la} vs {lb}");
        }
        let probe = Tensor::from_rows(&[&[0.2, -0.3, 0.4]]);
        let pa = a.forward(&probe);
        let pb = b.forward(&probe);
        for (x, y) in pa.data().iter().zip(pb.data()) {
            assert!((x - y).abs() < 1e-3, "prediction drifted: {x} vs {y}");
        }
        au_par::set_thread_override(None);
    }
}
