//! Loss functions.

use crate::tensor::Tensor;

/// A training objective.
///
/// Each variant provides the loss value and the gradient with respect to the
/// network output, averaged over the batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Loss {
    /// Mean squared error — used by the paper's supervised-learning tasks
    /// (parameter regression).
    Mse,
    /// Huber loss (δ = 1) — the standard choice for DQN temporal-difference
    /// targets; quadratic near zero, linear in the tails.
    Huber,
    /// Softmax cross-entropy over each output row against a one-hot target —
    /// used for discrete action classification.
    SoftmaxCrossEntropy,
}

impl Loss {
    /// Computes the scalar loss for `output` against `target`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn value(self, output: &Tensor, target: &Tensor) -> f32 {
        assert_eq!(output.shape(), target.shape(), "loss shape mismatch");
        let n = output.batch().max(1) as f32;
        match self {
            Loss::Mse => {
                let sum: f32 = output
                    .data()
                    .iter()
                    .zip(target.data())
                    .map(|(o, t)| (o - t) * (o - t))
                    .sum();
                sum / (n * output.row_len().max(1) as f32)
            }
            Loss::Huber => {
                let sum: f32 = output
                    .data()
                    .iter()
                    .zip(target.data())
                    .map(|(o, t)| {
                        let d = (o - t).abs();
                        if d <= 1.0 {
                            0.5 * d * d
                        } else {
                            d - 0.5
                        }
                    })
                    .sum();
                sum / (n * output.row_len().max(1) as f32)
            }
            Loss::SoftmaxCrossEntropy => {
                let mut total = 0.0;
                for b in 0..output.batch() {
                    let probs = softmax(output.row_slice(b));
                    for (p, &t) in probs.iter().zip(target.row_slice(b)) {
                        if t > 0.0 {
                            total -= t * p.max(1e-12).ln();
                        }
                    }
                }
                total / n
            }
        }
    }

    /// Gradient of the loss with respect to `output`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn gradient(self, output: &Tensor, target: &Tensor) -> Tensor {
        assert_eq!(output.shape(), target.shape(), "loss shape mismatch");
        let n = output.batch().max(1) as f32;
        match self {
            Loss::Mse => {
                let k = output.row_len().max(1) as f32;
                let data = output
                    .data()
                    .iter()
                    .zip(target.data())
                    .map(|(o, t)| 2.0 * (o - t) / (n * k))
                    .collect();
                Tensor::from_vec(output.shape(), data)
            }
            Loss::Huber => {
                let k = output.row_len().max(1) as f32;
                let data = output
                    .data()
                    .iter()
                    .zip(target.data())
                    .map(|(o, t)| {
                        let d = o - t;
                        d.clamp(-1.0, 1.0) / (n * k)
                    })
                    .collect();
                Tensor::from_vec(output.shape(), data)
            }
            Loss::SoftmaxCrossEntropy => {
                let mut out = Tensor::zeros(output.shape());
                let row_len = output.row_len();
                for b in 0..output.batch() {
                    let probs = softmax(output.row_slice(b));
                    let trow = target.row_slice(b);
                    for j in 0..row_len {
                        out.data_mut()[b * row_len + j] = (probs[j] - trow[j]) / n;
                    }
                }
                out
            }
        }
    }
}

/// Numerically stable softmax over a slice.
pub(crate) fn softmax(xs: &[f32]) -> Vec<f32> {
    let max = xs.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = xs.iter().map(|x| (x - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.iter().map(|e| e / sum.max(1e-12)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_zero_at_target() {
        let o = Tensor::row(&[1.0, 2.0]);
        assert_eq!(Loss::Mse.value(&o, &o), 0.0);
    }

    #[test]
    fn mse_gradient_direction() {
        let o = Tensor::row(&[2.0]);
        let t = Tensor::row(&[1.0]);
        let g = Loss::Mse.gradient(&o, &t);
        assert!(g.data()[0] > 0.0);
        assert!((g.data()[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn huber_is_clamped_in_tails() {
        let o = Tensor::row(&[10.0]);
        let t = Tensor::row(&[0.0]);
        let g = Loss::Huber.gradient(&o, &t);
        assert_eq!(g.data()[0], 1.0);
        // value grows linearly, not quadratically
        assert!((Loss::Huber.value(&o, &t) - 9.5).abs() < 1e-6);
    }

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn cross_entropy_gradient_points_toward_target() {
        let o = Tensor::row(&[0.0, 0.0]);
        let t = Tensor::row(&[1.0, 0.0]);
        let g = Loss::SoftmaxCrossEntropy.gradient(&o, &t);
        assert!(g.data()[0] < 0.0, "target class gradient pushes logit up");
        assert!(g.data()[1] > 0.0);
    }

    #[test]
    fn cross_entropy_value_decreases_with_confidence() {
        let t = Tensor::row(&[1.0, 0.0]);
        let low = Loss::SoftmaxCrossEntropy.value(&Tensor::row(&[0.0, 0.0]), &t);
        let high = Loss::SoftmaxCrossEntropy.value(&Tensor::row(&[5.0, 0.0]), &t);
        assert!(high < low);
    }

    #[test]
    fn batch_averaging() {
        let o = Tensor::from_rows(&[&[1.0], &[1.0]]);
        let t = Tensor::from_rows(&[&[0.0], &[0.0]]);
        let single = Loss::Mse.value(&Tensor::row(&[1.0]), &Tensor::row(&[0.0]));
        assert!((Loss::Mse.value(&o, &t) - single).abs() < 1e-6);
    }
}
