//! Cache-blocked, autovectorizer-friendly `f32` matrix kernels.
//!
//! Every kernel here preserves the **accumulation-order contract** the rest
//! of the crate depends on: each output element is the sum of its products
//! taken in ascending inner-dimension order, one add per product, starting
//! from whatever the caller pre-filled (zero or a bias). Blocking changes
//! *which* elements are in flight, never the per-element order, so the
//! blocked kernels are bit-identical to the scalar triple loop they replace
//! (the old kernel's `a == 0.0` skip is dropped; skipping only ever avoided
//! adding `±0.0`, which cannot change a finite sum).
//!
//! Layout: the classic GEBP shape. For each `KC × NR` panel of B, the
//! panel is packed into a contiguous stack buffer once and then reused by
//! every `MR`-row block of A; the micro-kernel holds an `MR × NR`
//! accumulator tile in registers across the whole k-block, so each output
//! element costs one load and one store per k-block instead of one per
//! k-step. The inner loop is a fixed-width `acc[r][c] += s * bv[c]` sweep —
//! exactly the shape LLVM's autovectorizer turns into full-width packed
//! multiply/add code (no FMA contraction: Rust keeps IEEE semantics, which
//! is what makes the bit-identity contract hold).
//!
//! **Unsafe audit (none needed).** The hot loops use fixed-size array tiles
//! and slice iteration the bounds-check eliminator sees through; no
//! `get_unchecked`, raw pointers, or intrinsics — the crate-level
//! `forbid(unsafe_code)` makes that a compile-time guarantee rather than a
//! review convention.

/// Rows of A processed per micro-kernel invocation (register blocking).
const MR: usize = 4;
/// k-dimension tile: B panel rows packed per block.
const KC: usize = 128;
/// j-dimension tile: columns per packed panel (`KC × NR × 4` B = 16 KiB,
/// half of a typical L1D).
const NR: usize = 32;

/// Minimum multiply-accumulate count before a GEMM is worth threading.
const PAR_MIN_WORK: usize = 128 * 1024;

/// `out[m,n] += a[m,k] · b[k,n]`, all row-major.
///
/// The caller pre-initializes `out` (zeros for a plain product, a broadcast
/// bias for a fused affine layer); the kernel only accumulates.
///
/// # Panics
///
/// Panics (via slice indexing) if any buffer is shorter than its
/// `m·k / k·n / m·n` extent.
pub(crate) fn gemm_acc(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(out.len(), m * n, "out extent");
    debug_assert!(a.len() >= m * k, "a extent");
    debug_assert!(b.len() >= k * n, "b extent");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    // Packed B panel for one (KC, NR) tile: 16 KiB on the stack.
    let mut panel = [0.0f32; KC * NR];
    for kb in (0..k).step_by(KC) {
        let ke = (kb + KC).min(k);
        let kl = ke - kb;
        let mut j = 0;
        while j + NR <= n {
            // Pack B[kb..ke, j..j+NR] contiguously so the micro-kernel
            // streams it linearly from L1 for every row block.
            for (pp, p) in (kb..ke).enumerate() {
                panel[pp * NR..(pp + 1) * NR].copy_from_slice(&b[p * n + j..p * n + j + NR]);
            }
            let mut i = 0;
            while i + MR <= m {
                // MR × NR accumulator tile, held in registers across the
                // whole k-block. Loading from `out` and storing back per
                // block performs exactly the same per-element addition
                // sequence as the scalar loop — ascending p, one rounding
                // per product — so blocking never changes a single bit.
                let mut acc = [[0.0f32; NR]; MR];
                for (r, accr) in acc.iter_mut().enumerate() {
                    accr.copy_from_slice(&out[(i + r) * n + j..(i + r) * n + j + NR]);
                }
                for pp in 0..kl {
                    let bv: &[f32; NR] = panel[pp * NR..(pp + 1) * NR]
                        .try_into()
                        .expect("panel stride");
                    for (r, accr) in acc.iter_mut().enumerate() {
                        let s = a[(i + r) * k + kb + pp];
                        for (d, &bvc) in accr.iter_mut().zip(bv) {
                            *d += s * bvc;
                        }
                    }
                }
                for (r, accr) in acc.iter().enumerate() {
                    out[(i + r) * n + j..(i + r) * n + j + NR].copy_from_slice(accr);
                }
                i += MR;
            }
            // Remainder rows against the packed panel: single-row register
            // tile, same accumulation order.
            while i < m {
                let mut acc = [0.0f32; NR];
                acc.copy_from_slice(&out[i * n + j..i * n + j + NR]);
                for pp in 0..kl {
                    let s = a[i * k + kb + pp];
                    let bv = &panel[pp * NR..(pp + 1) * NR];
                    for (d, &bvc) in acc.iter_mut().zip(bv) {
                        *d += s * bvc;
                    }
                }
                out[i * n + j..i * n + j + NR].copy_from_slice(&acc);
                i += 1;
            }
            j += NR;
        }
        // Column remainder (n % NR): plain axpy sweep straight from B,
        // still ascending p within the k-block.
        if j < n {
            for i in 0..m {
                let arow = &a[i * k..(i + 1) * k];
                for p in kb..ke {
                    let s = arow[p];
                    let brow = &b[p * n + j..(p + 1) * n];
                    let dst = &mut out[i * n + j..(i + 1) * n];
                    for (d, &bv) in dst.iter_mut().zip(brow) {
                        *d += s * bv;
                    }
                }
            }
        }
    }
}

/// [`gemm_acc`] with the output rows fanned out across au-par workers when
/// the product is large enough to amortize thread spawn.
///
/// Row partitioning never touches per-element accumulation order, so the
/// result is bit-identical for every thread count (including 1).
pub(crate) fn gemm_acc_par(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    let _t = t_time!("au_nn.gemm");
    if m >= 2 && m * k * n >= PAR_MIN_WORK && !au_par::in_worker() && au_par::max_threads() > 1 {
        t_count!("au_nn.gemm_parallel");
        let min_rows = (PAR_MIN_WORK / (k * n).max(1)).max(1);
        au_par::par_row_chunks_mut(out, n, min_rows, |first, chunk| {
            let rows = chunk.len() / n;
            gemm_acc(chunk, &a[first * k..(first + rows) * k], b, rows, k, n);
        });
    } else {
        gemm_acc(out, a, b, m, k, n);
    }
}

/// `out[k,n] += aᵀ · g` for `a [m,k]`, `g [m,n]` — the weight-gradient
/// product `dW = xᵀ·dy` without materializing the transpose.
///
/// Per output element the sum runs over ascending sample index `i`, the
/// same order as transposing `a` and calling the old kernel. The `s == 0.0`
/// skip is kept: activation inputs are often sparse after ReLU, and
/// skipping a whole axpy row is the one place the sparsity test pays.
pub(crate) fn gemm_tn_acc(out: &mut [f32], a: &[f32], g: &[f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(out.len(), k * n, "out extent");
    debug_assert!(a.len() >= m * k, "a extent");
    debug_assert!(g.len() >= m * n, "g extent");
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let grow = &g[i * n..(i + 1) * n];
        for (p, &s) in arow.iter().enumerate() {
            if s == 0.0 {
                continue;
            }
            let dst = &mut out[p * n..(p + 1) * n];
            for (d, &gv) in dst.iter_mut().zip(grow) {
                *d += s * gv;
            }
        }
    }
}

/// Reference kernel: the scalar triple loop the blocked kernels replaced.
/// Kept only as a test oracle.
#[cfg(test)]
pub(crate) fn gemm_naive(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        for p in 0..k {
            let s = a[i * k + p];
            if s == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            let dst = &mut out[i * n..(i + 1) * n];
            for (d, &bv) in dst.iter_mut().zip(brow) {
                *d += s * bv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pseudo(len: usize, seed: u64) -> Vec<f32> {
        (0..len)
            .map(|i| {
                let h = (i as u64).wrapping_mul(2654435761).wrapping_add(seed);
                ((h % 2000) as f32) / 100.0 - 10.0
            })
            .collect()
    }

    #[test]
    fn blocked_matches_naive_on_tile_straddling_shapes() {
        // Shapes straddling MR/KC/NC boundaries, plus degenerate ones.
        let shapes = [
            (1, 1, 1),
            (1, 300, 5),
            (3, 7, 2),
            (4, 128, 256),
            (5, 129, 257),
            (8, 200, 300),
            (17, 131, 63),
        ];
        for (m, k, n) in shapes {
            let a = pseudo(m * k, 1);
            let b = pseudo(k * n, 2);
            let mut got = vec![0.0f32; m * n];
            let mut want = vec![0.0f32; m * n];
            gemm_acc(&mut got, &a, &b, m, k, n);
            gemm_naive(&mut want, &a, &b, m, k, n);
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 1e-6 * w.abs().max(1.0), "({m},{k},{n})");
            }
        }
    }

    #[test]
    fn blocked_is_bit_identical_to_naive() {
        // The accumulation-order contract is stronger than a tolerance:
        // identical bits, not just close values.
        let (m, k, n) = (9, 37, 21);
        let a = pseudo(m * k, 7);
        let b = pseudo(k * n, 8);
        let mut got = vec![0.0f32; m * n];
        let mut want = vec![0.0f32; m * n];
        gemm_acc(&mut got, &a, &b, m, k, n);
        gemm_naive(&mut want, &a, &b, m, k, n);
        let got_bits: Vec<u32> = got.iter().map(|v| v.to_bits()).collect();
        let want_bits: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
        assert_eq!(got_bits, want_bits);
    }

    #[test]
    fn accumulates_on_top_of_prefilled_output() {
        // A pre-filled output (e.g. a broadcast bias) is accumulated into,
        // not overwritten — the fused-bias contract the layers rely on.
        let mut out = vec![10.0f32; 1];
        gemm_acc(&mut out, &[1.0, 2.0], &[3.0, 4.0], 1, 2, 1);
        assert_eq!(out[0], 10.0 + 1.0 * 3.0 + 2.0 * 4.0);
    }

    #[test]
    fn transposed_accumulate_matches_explicit_transpose() {
        let (m, k, n) = (6, 5, 4);
        let a = pseudo(m * k, 3);
        let g = pseudo(m * n, 4);
        let mut got = vec![0.0f32; k * n];
        gemm_tn_acc(&mut got, &a, &g, m, k, n);
        // Oracle: transpose a explicitly, then naive GEMM.
        let mut at = vec![0.0f32; k * m];
        for i in 0..m {
            for p in 0..k {
                at[p * m + i] = a[i * k + p];
            }
        }
        let mut want = vec![0.0f32; k * n];
        gemm_naive(&mut want, &at, &g, k, m, n);
        assert_eq!(got, want);
    }

    #[test]
    fn parallel_rows_are_bit_identical_to_serial() {
        let _g = crate::test_support::par_lock();
        let (m, k, n) = (64, 64, 64);
        let a = pseudo(m * k, 5);
        let b = pseudo(k * n, 6);
        let mut serial = vec![0.0f32; m * n];
        gemm_acc(&mut serial, &a, &b, m, k, n);
        for threads in [1usize, 2, 4] {
            au_par::set_thread_override(Some(threads));
            let mut par = vec![0.0f32; m * n];
            gemm_acc_par(&mut par, &a, &b, m, k, n);
            assert_eq!(par, serial, "threads={threads}");
        }
        au_par::set_thread_override(None);
    }

    proptest! {
        /// Blocked GEMM matches the naive oracle on random shapes,
        /// including non-multiples of every tile dimension and m = 1.
        #[test]
        fn blocked_matches_naive_randomized(m in 1usize..10, k in 1usize..40,
                                            n in 1usize..30, seed in 0u64..500) {
            let a = pseudo(m * k, seed);
            let b = pseudo(k * n, seed.wrapping_add(1));
            let mut got = vec![0.0f32; m * n];
            let mut want = vec![0.0f32; m * n];
            gemm_acc(&mut got, &a, &b, m, k, n);
            gemm_naive(&mut want, &a, &b, m, k, n);
            for (g, w) in got.iter().zip(&want) {
                prop_assert!((g - w).abs() < 1e-6 * w.abs().max(1.0));
            }
        }
    }
}
