//! Convolution, max-pooling, and flatten layers.
//!
//! These implement the "Raw" baseline of the paper: the DeepMind-style model
//! that consumes raw pixel frames and derives high-level features through
//! convolutional preprocessing layers (Section 2 and Table 2). All layers
//! keep the network-wide `[batch, features]` convention — each batch row is a
//! flattened `[channels, height, width]` volume whose spatial shape is part
//! of the layer configuration.

use crate::init::xavier;
use crate::layer::{Layer, LayerSpec, Param};
use crate::tensor::Tensor;

/// A 2-D convolution with square kernels and no padding.
#[derive(Debug)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    in_h: usize,
    in_w: usize,
    /// `[out_c, in_c * k * k]` — each output channel's flattened kernel.
    weight: Param,
    /// `[1, out_c]`.
    bias: Param,
    /// im2col patch matrices from the last training forward, one
    /// `[fan_in, patches]` block per batch row; the backward pass reuses
    /// them for the weight-gradient GEMM.
    cached_cols: Option<Vec<f32>>,
    cached_batch: usize,
    /// `Wᵀ` (`[fan_in, out_c]`) memoized for the input-gradient GEMM;
    /// rebuilt lazily after [`Layer::invalidate_cached_weights`].
    cached_wt: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution over `[in_channels, in_h, in_w]` inputs.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit the input or any dimension is zero.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        in_h: usize,
        in_w: usize,
    ) -> Self {
        assert!(
            in_channels > 0 && out_channels > 0,
            "channels must be positive"
        );
        assert!(
            kernel > 0 && stride > 0,
            "kernel and stride must be positive"
        );
        assert!(
            kernel <= in_h && kernel <= in_w,
            "kernel {kernel} exceeds input {in_h}x{in_w}"
        );
        let fan_in = in_channels * kernel * kernel;
        Conv2d {
            in_channels,
            out_channels,
            kernel,
            stride,
            in_h,
            in_w,
            weight: Param::new(xavier(fan_in, out_channels, &[out_channels, fan_in])),
            bias: Param::new(Tensor::zeros(&[1, out_channels])),
            cached_cols: None,
            cached_batch: 0,
            cached_wt: None,
        }
    }

    /// Reconstructs a convolution from saved weights.
    #[allow(clippy::too_many_arguments)]
    pub fn from_weights(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        in_h: usize,
        in_w: usize,
        weight: Tensor,
        bias: Tensor,
    ) -> Self {
        // Constructed directly (not via `new`) so loading a saved model
        // does not advance the global initialization stream.
        assert!(
            in_channels > 0 && out_channels > 0,
            "channels must be positive"
        );
        assert!(
            kernel > 0 && stride > 0,
            "kernel and stride must be positive"
        );
        assert!(
            kernel <= in_h && kernel <= in_w,
            "kernel {kernel} exceeds input {in_h}x{in_w}"
        );
        let fan_in = in_channels * kernel * kernel;
        assert_eq!(weight.shape(), &[out_channels, fan_in], "weight shape");
        assert_eq!(bias.shape(), &[1, out_channels], "bias shape");
        Conv2d {
            in_channels,
            out_channels,
            kernel,
            stride,
            in_h,
            in_w,
            weight: Param::new(weight),
            bias: Param::new(bias),
            cached_cols: None,
            cached_batch: 0,
            cached_wt: None,
        }
    }

    /// Output height.
    pub fn out_h(&self) -> usize {
        (self.in_h - self.kernel) / self.stride + 1
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        (self.in_w - self.kernel) / self.stride + 1
    }

    fn in_len(&self) -> usize {
        self.in_channels * self.in_h * self.in_w
    }

    fn out_len(&self) -> usize {
        self.out_channels * self.out_h() * self.out_w()
    }

    #[inline]
    fn input_index(&self, c: usize, y: usize, x: usize) -> usize {
        (c * self.in_h + y) * self.in_w + x
    }

    fn fan_in(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }

    /// Lowers one input row into its `[fan_in, patches]` im2col matrix:
    /// `col[f][p]` is the input pixel that kernel element `f = (ic, ky, kx)`
    /// sees at output position `p = (oy, ox)`. Row `f` of `col` is a
    /// contiguous copy sweep per output row (unit-stride when `stride == 1`).
    fn im2col_row(&self, row: &[f32], col: &mut [f32]) {
        let _t = t_time!("au_nn.im2col");
        let (oh, ow) = (self.out_h(), self.out_w());
        let patches = oh * ow;
        let k = self.kernel;
        let mut f = 0;
        for ic in 0..self.in_channels {
            for ky in 0..k {
                for kx in 0..k {
                    let dst = &mut col[f * patches..(f + 1) * patches];
                    for oy in 0..oh {
                        let iy = oy * self.stride + ky;
                        let src = self.input_index(ic, iy, kx);
                        let drow = &mut dst[oy * ow..(oy + 1) * ow];
                        if self.stride == 1 {
                            drow.copy_from_slice(&row[src..src + ow]);
                        } else {
                            for (ox, d) in drow.iter_mut().enumerate() {
                                *d = row[src + ox * self.stride];
                            }
                        }
                    }
                    f += 1;
                }
            }
        }
    }

    /// Forward pass for one batch row: pre-fills `out_row` with the
    /// per-channel bias, then accumulates `W [out_c, fan_in] × col
    /// [fan_in, patches]` on top. Per output element that is `bias + Σ_f`
    /// in ascending-`f` order — bit-identical to the scalar loop nest this
    /// replaced.
    fn forward_row(&self, col: &[f32], out_row: &mut [f32]) {
        let _t = t_time!("au_nn.gemm");
        let patches = self.out_h() * self.out_w();
        for (oc, chunk) in out_row.chunks_exact_mut(patches).enumerate() {
            chunk.fill(self.bias.value.data()[oc]);
        }
        crate::kernels::gemm_acc(
            out_row,
            self.weight.value.data(),
            col,
            self.out_channels,
            self.fan_in(),
            patches,
        );
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        assert_eq!(
            input.row_len(),
            self.in_len(),
            "conv2d expected {} features, got {}",
            self.in_len(),
            input.row_len()
        );
        let batch = input.batch();
        let col_len = self.fan_in() * self.out_h() * self.out_w();
        let mut out = Tensor::zeros(&[batch, self.out_len()]);
        let mut cols = vec![0.0f32; batch * col_len];
        for b in 0..batch {
            let col = &mut cols[b * col_len..(b + 1) * col_len];
            self.im2col_row(input.row_slice(b), col);
            let out_len = self.out_len();
            self.forward_row(col, &mut out.data_mut()[b * out_len..(b + 1) * out_len]);
        }
        if train {
            // The backward pass consumes the patch matrices, not the raw
            // input: dW is a GEMM against them.
            self.cached_cols = Some(cols);
            self.cached_batch = batch;
        }
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        let mut out = Tensor::default();
        self.infer_into(input, &mut out);
        out
    }

    fn infer_into(&self, input: &Tensor, out: &mut Tensor) {
        assert_eq!(
            input.row_len(),
            self.in_len(),
            "conv2d expected {} features, got {}",
            self.in_len(),
            input.row_len()
        );
        let batch = input.batch();
        let col_len = self.fan_in() * self.out_h() * self.out_w();
        let out_len = self.out_len();
        out.resize_zeroed(&[batch, out_len]);
        // Batch rows are independent; fan them out across au-par workers
        // with one reusable im2col buffer per worker. Row partitioning
        // keeps per-element accumulation order fixed, so the output is
        // bit-identical for every thread count.
        au_par::par_row_chunks_mut(out.data_mut(), out_len, 1, |first_row, chunk| {
            let mut col = vec![0.0f32; col_len];
            for (i, out_row) in chunk.chunks_exact_mut(out_len).enumerate() {
                self.im2col_row(input.row_slice(first_row + i), &mut col);
                self.forward_row(&col, out_row);
            }
        });
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (oh, ow) = (self.out_h(), self.out_w());
        let patches = oh * ow;
        let fan_in = self.fan_in();
        let col_len = fan_in * patches;
        let batch = self.cached_batch;
        let in_len = self.in_len();
        let (out_channels, in_channels) = (self.out_channels, self.in_channels);
        let (k, stride, in_h, in_w) = (self.kernel, self.stride, self.in_h, self.in_w);
        let cols = self
            .cached_cols
            .as_ref()
            .expect("backward called before forward");
        let mut grad_in = Tensor::zeros(&[batch, in_len]);
        // Wᵀ for the input-gradient GEMM, transposed once per weight
        // version rather than once per call.
        let wt = self
            .cached_wt
            .get_or_insert_with(|| self.weight.value.transpose());
        let mut colt = vec![0.0f32; col_len];
        let mut dcol = vec![0.0f32; col_len];
        for b in 0..batch {
            let go_row = grad_out.row_slice(b);
            let col = &cols[b * col_len..(b + 1) * col_len];
            // db[oc] += Σ_patches dy — ascending patch order per channel.
            for (oc, chunk) in go_row.chunks_exact(patches).enumerate() {
                let acc = &mut self.bias.grad.data_mut()[oc];
                for &g in chunk {
                    *acc += g;
                }
            }
            // dW [out_c, fan_in] += dy [out_c, patches] · colᵀ [patches,
            // fan_in]: ascending-patch accumulation, matching the loop nest
            // this replaced.
            for f in 0..fan_in {
                for p in 0..patches {
                    colt[p * fan_in + f] = col[f * patches + p];
                }
            }
            crate::kernels::gemm_acc(
                self.weight.grad.data_mut(),
                go_row,
                &colt,
                out_channels,
                patches,
                fan_in,
            );
            // dx via dcol = Wᵀ [fan_in, out_c] · dy [out_c, patches],
            // scattered back through the im2col mapping (col2im). The
            // scatter visits kernel elements in ascending-f order, which
            // regroups the additions relative to the old oc-major nest —
            // equal within f32 rounding, covered by the 1e-6 oracle tests.
            dcol.fill(0.0);
            crate::kernels::gemm_acc(&mut dcol, wt.data(), go_row, fan_in, out_channels, patches);
            let gi_row = &mut grad_in.data_mut()[b * in_len..(b + 1) * in_len];
            let mut f = 0;
            for ic in 0..in_channels {
                for ky in 0..k {
                    for kx in 0..k {
                        let src = &dcol[f * patches..(f + 1) * patches];
                        for oy in 0..oh {
                            let iy = oy * stride + ky;
                            let base = (ic * in_h + iy) * in_w + kx;
                            for ox in 0..ow {
                                gi_row[base + ox * stride] += src[oy * ow + ox];
                            }
                        }
                        f += 1;
                    }
                }
            }
        }
        grad_in
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn out_features(&self) -> Option<usize> {
        Some(self.out_len())
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec::Conv2d {
            in_channels: self.in_channels,
            out_channels: self.out_channels,
            kernel: self.kernel,
            stride: self.stride,
            in_h: self.in_h,
            in_w: self.in_w,
            weight: self.weight.value.clone(),
            bias: self.bias.value.clone(),
        }
    }

    fn invalidate_cached_weights(&mut self) {
        self.cached_wt = None;
    }
}

#[cfg(test)]
impl Conv2d {
    /// Reference forward: the 7-deep scalar loop nest the im2col path
    /// replaced. Kept only as a test oracle.
    pub(crate) fn infer_naive(&self, input: &Tensor) -> Tensor {
        let (oh, ow) = (self.out_h(), self.out_w());
        let k = self.kernel;
        let mut out = Tensor::zeros(&[input.batch(), self.out_len()]);
        for b in 0..input.batch() {
            let row = input.row_slice(b);
            for oc in 0..self.out_channels {
                let wrow = &self.weight.value.data()[oc * self.fan_in()..][..self.fan_in()];
                let bias = self.bias.value.data()[oc];
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bias;
                        let mut widx = 0;
                        for ic in 0..self.in_channels {
                            for ky in 0..k {
                                let iy = oy * self.stride + ky;
                                let base = self.input_index(ic, iy, ox * self.stride);
                                for kx in 0..k {
                                    acc += wrow[widx] * row[base + kx];
                                    widx += 1;
                                }
                            }
                        }
                        let oidx = (oc * oh + oy) * ow + ox;
                        out.data_mut()[b * self.out_len() + oidx] = acc;
                    }
                }
            }
        }
        out
    }

    /// Reference backward: returns `(grad_in, dW, db)` for the given input
    /// and output gradient without touching layer state. Kept only as a
    /// test oracle.
    pub(crate) fn backward_naive(
        &self,
        input: &Tensor,
        grad_out: &Tensor,
    ) -> (Tensor, Tensor, Tensor) {
        let (oh, ow) = (self.out_h(), self.out_w());
        let k = self.kernel;
        let mut grad_in = Tensor::zeros(&[input.batch(), self.in_len()]);
        let mut dw = Tensor::zeros(self.weight.value.shape());
        let mut db = Tensor::zeros(self.bias.value.shape());
        for b in 0..input.batch() {
            let in_row = input.row_slice(b);
            let go_row = grad_out.row_slice(b);
            for oc in 0..self.out_channels {
                let wbase = oc * self.fan_in();
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = go_row[(oc * oh + oy) * ow + ox];
                        if g == 0.0 {
                            continue;
                        }
                        db.data_mut()[oc] += g;
                        let mut widx = 0;
                        for ic in 0..self.in_channels {
                            for ky in 0..k {
                                let iy = oy * self.stride + ky;
                                let base = self.input_index(ic, iy, ox * self.stride);
                                for kx in 0..k {
                                    dw.data_mut()[wbase + widx] += g * in_row[base + kx];
                                    grad_in.data_mut()[b * self.in_len() + base + kx] +=
                                        g * self.weight.value.data()[wbase + widx];
                                    widx += 1;
                                }
                            }
                        }
                    }
                }
            }
        }
        (grad_in, dw, db)
    }
}

/// Non-overlapping 2-D max pooling (window == stride).
#[derive(Debug)]
pub struct MaxPool2d {
    channels: usize,
    window: usize,
    in_h: usize,
    in_w: usize,
    /// Flat input index of the maximum chosen for each output element.
    cached_argmax: Option<Vec<usize>>,
    cached_batch: usize,
}

impl MaxPool2d {
    /// Creates a pooling layer over `[channels, in_h, in_w]` inputs.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero or exceeds the spatial dimensions.
    pub fn new(channels: usize, window: usize, in_h: usize, in_w: usize) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(
            window <= in_h && window <= in_w,
            "window {window} exceeds input {in_h}x{in_w}"
        );
        MaxPool2d {
            channels,
            window,
            in_h,
            in_w,
            cached_argmax: None,
            cached_batch: 0,
        }
    }

    /// Output height.
    pub fn out_h(&self) -> usize {
        self.in_h / self.window
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        self.in_w / self.window
    }

    fn in_len(&self) -> usize {
        self.channels * self.in_h * self.in_w
    }

    fn out_len(&self) -> usize {
        self.channels * self.out_h() * self.out_w()
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        assert_eq!(
            input.row_len(),
            self.in_len(),
            "maxpool input size mismatch"
        );
        let (oh, ow) = (self.out_h(), self.out_w());
        let w = self.window;
        let mut out = Tensor::zeros(&[input.batch(), self.out_len()]);
        let mut argmax = vec![0usize; input.batch() * self.out_len()];
        for b in 0..input.batch() {
            let row = input.row_slice(b);
            for c in 0..self.channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0;
                        for ky in 0..w {
                            for kx in 0..w {
                                let iy = oy * w + ky;
                                let ix = ox * w + kx;
                                let idx = (c * self.in_h + iy) * self.in_w + ix;
                                if row[idx] > best {
                                    best = row[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        let oidx = (c * oh + oy) * ow + ox;
                        out.data_mut()[b * self.out_len() + oidx] = best;
                        argmax[b * self.out_len() + oidx] = best_idx;
                    }
                }
            }
        }
        self.cached_argmax = Some(argmax);
        self.cached_batch = input.batch();
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        let mut out = Tensor::default();
        self.infer_into(input, &mut out);
        out
    }

    fn infer_into(&self, input: &Tensor, out: &mut Tensor) {
        assert_eq!(
            input.row_len(),
            self.in_len(),
            "maxpool input size mismatch"
        );
        let (oh, ow) = (self.out_h(), self.out_w());
        let w = self.window;
        out.resize_zeroed(&[input.batch(), self.out_len()]);
        for b in 0..input.batch() {
            let row = input.row_slice(b);
            for c in 0..self.channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        for ky in 0..w {
                            for kx in 0..w {
                                let iy = oy * w + ky;
                                let ix = ox * w + kx;
                                let idx = (c * self.in_h + iy) * self.in_w + ix;
                                if row[idx] > best {
                                    best = row[idx];
                                }
                            }
                        }
                        let oidx = (c * oh + oy) * ow + ox;
                        out.data_mut()[b * self.out_len() + oidx] = best;
                    }
                }
            }
        }
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let argmax = self
            .cached_argmax
            .as_ref()
            .expect("backward called before forward");
        let mut grad_in = Tensor::zeros(&[self.cached_batch, self.in_len()]);
        for b in 0..self.cached_batch {
            let go = grad_out.row_slice(b);
            for (o, &g) in go.iter().enumerate() {
                let idx = argmax[b * self.out_len() + o];
                grad_in.data_mut()[b * self.in_len() + idx] += g;
            }
        }
        grad_in
    }

    fn out_features(&self) -> Option<usize> {
        Some(self.out_len())
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec::MaxPool2d {
            channels: self.channels,
            window: self.window,
            in_h: self.in_h,
            in_w: self.in_w,
        }
    }
}

/// Identity layer marking the transition from spatial to flat features.
///
/// Since the whole network already uses `[batch, features]`, flatten is a
/// no-op at runtime but documents the architecture and fixes the feature
/// count for shape inference.
#[derive(Debug)]
pub struct Flatten {
    features: usize,
}

impl Flatten {
    /// Creates a flatten marker for `features` flat features.
    pub fn new(features: usize) -> Self {
        Flatten { features }
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        self.infer(input)
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        assert_eq!(input.row_len(), self.features, "flatten size mismatch");
        input.clone()
    }

    fn infer_into(&self, input: &Tensor, out: &mut Tensor) {
        assert_eq!(input.row_len(), self.features, "flatten size mismatch");
        out.copy_from(input);
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        grad_out.clone()
    }

    fn out_features(&self) -> Option<usize> {
        Some(self.features)
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec::Flatten {
            features: self.features,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_identity_kernel_copies_input() {
        // 1x1 kernel with weight 1 reproduces the input.
        let mut conv = Conv2d::from_weights(
            1,
            1,
            1,
            1,
            2,
            2,
            Tensor::from_vec(&[1, 1], vec![1.0]),
            Tensor::zeros(&[1, 1]),
        );
        let x = Tensor::row(&[1.0, 2.0, 3.0, 4.0]);
        let y = conv.forward(&x, false);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn conv_sums_window() {
        // 2x2 all-ones kernel over a 2x2 input = sum of all pixels.
        let mut conv = Conv2d::from_weights(
            1,
            1,
            2,
            1,
            2,
            2,
            Tensor::from_vec(&[1, 4], vec![1.0; 4]),
            Tensor::zeros(&[1, 1]),
        );
        let y = conv.forward(&Tensor::row(&[1.0, 2.0, 3.0, 4.0]), false);
        assert_eq!(y.data(), &[10.0]);
    }

    #[test]
    fn conv_output_dims() {
        let conv = Conv2d::new(1, 4, 3, 2, 9, 9);
        assert_eq!(conv.out_h(), 4);
        assert_eq!(conv.out_w(), 4);
        assert_eq!(conv.out_features(), Some(4 * 4 * 4));
    }

    #[test]
    fn conv_backward_distributes_gradient() {
        let mut conv = Conv2d::from_weights(
            1,
            1,
            2,
            1,
            2,
            2,
            Tensor::from_vec(&[1, 4], vec![1.0; 4]),
            Tensor::zeros(&[1, 1]),
        );
        let x = Tensor::row(&[1.0, 2.0, 3.0, 4.0]);
        let _ = conv.forward(&x, true);
        let dx = conv.backward(&Tensor::row(&[1.0]));
        assert_eq!(dx.data(), &[1.0, 1.0, 1.0, 1.0]);
        let params = conv.params_mut();
        assert_eq!(params[0].grad.data(), x.data());
        assert_eq!(params[1].grad.data(), &[1.0]);
    }

    #[test]
    fn maxpool_selects_maximum() {
        let mut pool = MaxPool2d::new(1, 2, 2, 2);
        let y = pool.forward(&Tensor::row(&[1.0, 5.0, 3.0, 2.0]), false);
        assert_eq!(y.data(), &[5.0]);
        let dx = pool.backward(&Tensor::row(&[1.0]));
        assert_eq!(dx.data(), &[0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn maxpool_per_channel() {
        let mut pool = MaxPool2d::new(2, 2, 2, 2);
        let x = Tensor::row(&[1.0, 2.0, 3.0, 4.0, 8.0, 7.0, 6.0, 5.0]);
        let y = pool.forward(&x, false);
        assert_eq!(y.data(), &[4.0, 8.0]);
    }

    #[test]
    fn flatten_is_identity() {
        let mut f = Flatten::new(4);
        let x = Tensor::row(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(f.forward(&x, false), x);
        assert_eq!(f.backward(&x), x);
    }

    #[test]
    #[should_panic(expected = "exceeds input")]
    fn conv_rejects_oversized_kernel() {
        let _ = Conv2d::new(1, 1, 5, 1, 3, 3);
    }

    fn pseudo(len: usize, seed: u64) -> Vec<f32> {
        (0..len)
            .map(|i| {
                let h = (i as u64).wrapping_mul(2654435761).wrapping_add(seed);
                ((h % 200) as f32) / 100.0 - 1.0
            })
            .collect()
    }

    /// im2col forward is bit-identical to the scalar loop nest: same
    /// bias-then-ascending-kernel-element accumulation per output.
    #[test]
    fn im2col_forward_is_bit_identical_to_naive() {
        for (in_c, out_c, k, stride, h, w, batch) in [
            (1, 1, 1, 1, 3, 3, 1),
            (2, 3, 3, 1, 8, 8, 2),
            (3, 4, 4, 2, 9, 11, 1),
            (2, 2, 3, 3, 10, 10, 3),
        ] {
            let conv = Conv2d::from_weights(
                in_c,
                out_c,
                k,
                stride,
                h,
                w,
                Tensor::from_vec(&[out_c, in_c * k * k], pseudo(out_c * in_c * k * k, 11)),
                Tensor::from_vec(&[1, out_c], pseudo(out_c, 13)),
            );
            let x = Tensor::from_vec(&[batch, in_c * h * w], pseudo(batch * in_c * h * w, 17));
            let fast = conv.infer(&x);
            let naive = conv.infer_naive(&x);
            let fast_bits: Vec<u32> = fast.data().iter().map(|v| v.to_bits()).collect();
            let naive_bits: Vec<u32> = naive.data().iter().map(|v| v.to_bits()).collect();
            assert_eq!(
                fast_bits, naive_bits,
                "shape ({in_c},{out_c},{k},{stride},{h},{w})"
            );
        }
    }

    /// The GEMM-based backward matches the scalar loop nest within 1e-6 on
    /// every gradient (the col2im scatter regroups additions, so exact bit
    /// equality is not promised for grad_in).
    #[test]
    fn im2col_backward_matches_naive_within_tolerance() {
        for (in_c, out_c, k, stride, h, w, batch) in [
            (1, 2, 2, 1, 4, 4, 1),
            (2, 3, 3, 1, 7, 9, 2),
            (3, 2, 3, 2, 9, 9, 1),
        ] {
            let mut conv = Conv2d::from_weights(
                in_c,
                out_c,
                k,
                stride,
                h,
                w,
                Tensor::from_vec(&[out_c, in_c * k * k], pseudo(out_c * in_c * k * k, 23)),
                Tensor::from_vec(&[1, out_c], pseudo(out_c, 29)),
            );
            let x = Tensor::from_vec(&[batch, in_c * h * w], pseudo(batch * in_c * h * w, 31));
            let dy_len = batch * conv.out_len();
            let dy = Tensor::from_vec(&[batch, conv.out_len()], pseudo(dy_len, 37));
            let _ = conv.forward(&x, true);
            let grad_in = conv.backward(&dy);
            let (want_gi, want_dw, want_db) = conv.backward_naive(&x, &dy);
            let close = |got: &[f32], want: &[f32], what: &str| {
                for (g, w) in got.iter().zip(want) {
                    assert!(
                        (g - w).abs() < 1e-6 * w.abs().max(1.0),
                        "{what} drifted: {g} vs {w}"
                    );
                }
            };
            close(grad_in.data(), want_gi.data(), "grad_in");
            let params = conv.params_mut();
            close(params[0].grad.data(), want_dw.data(), "dW");
            close(params[1].grad.data(), want_db.data(), "db");
        }
    }

    /// A stale cached Wᵀ would poison backward after a weight mutation;
    /// the invalidation hook must drop it.
    #[test]
    fn invalidation_refreshes_cached_transpose() {
        let mut conv = Conv2d::from_weights(
            1,
            1,
            2,
            1,
            3,
            3,
            Tensor::from_vec(&[1, 4], vec![1.0; 4]),
            Tensor::zeros(&[1, 1]),
        );
        let x = Tensor::row(&pseudo(9, 41));
        let dy = Tensor::row(&pseudo(4, 43));
        let _ = conv.forward(&x, true);
        let _ = conv.backward(&dy); // populates cached_wt
        for p in conv.params_mut() {
            for v in p.value.data_mut() {
                *v *= 2.0;
            }
            p.zero_grad();
        }
        conv.invalidate_cached_weights();
        let _ = conv.forward(&x, true);
        let got = conv.backward(&dy);
        let (want, _, _) = conv.backward_naive(&x, &dy);
        for (g, w) in got.data().iter().zip(want.data()) {
            assert!(
                (g - w).abs() < 1e-6,
                "stale transpose survived invalidation"
            );
        }
    }
}
