//! Convolution, max-pooling, and flatten layers.
//!
//! These implement the "Raw" baseline of the paper: the DeepMind-style model
//! that consumes raw pixel frames and derives high-level features through
//! convolutional preprocessing layers (Section 2 and Table 2). All layers
//! keep the network-wide `[batch, features]` convention — each batch row is a
//! flattened `[channels, height, width]` volume whose spatial shape is part
//! of the layer configuration.

use crate::init::xavier;
use crate::layer::{Layer, LayerSpec, Param};
use crate::tensor::Tensor;

/// A 2-D convolution with square kernels and no padding.
#[derive(Debug)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    in_h: usize,
    in_w: usize,
    /// `[out_c, in_c * k * k]` — each output channel's flattened kernel.
    weight: Param,
    /// `[1, out_c]`.
    bias: Param,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution over `[in_channels, in_h, in_w]` inputs.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit the input or any dimension is zero.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        in_h: usize,
        in_w: usize,
    ) -> Self {
        assert!(
            in_channels > 0 && out_channels > 0,
            "channels must be positive"
        );
        assert!(
            kernel > 0 && stride > 0,
            "kernel and stride must be positive"
        );
        assert!(
            kernel <= in_h && kernel <= in_w,
            "kernel {kernel} exceeds input {in_h}x{in_w}"
        );
        let fan_in = in_channels * kernel * kernel;
        Conv2d {
            in_channels,
            out_channels,
            kernel,
            stride,
            in_h,
            in_w,
            weight: Param::new(xavier(fan_in, out_channels, &[out_channels, fan_in])),
            bias: Param::new(Tensor::zeros(&[1, out_channels])),
            cached_input: None,
        }
    }

    /// Reconstructs a convolution from saved weights.
    #[allow(clippy::too_many_arguments)]
    pub fn from_weights(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        in_h: usize,
        in_w: usize,
        weight: Tensor,
        bias: Tensor,
    ) -> Self {
        // Constructed directly (not via `new`) so loading a saved model
        // does not advance the global initialization stream.
        assert!(
            in_channels > 0 && out_channels > 0,
            "channels must be positive"
        );
        assert!(
            kernel > 0 && stride > 0,
            "kernel and stride must be positive"
        );
        assert!(
            kernel <= in_h && kernel <= in_w,
            "kernel {kernel} exceeds input {in_h}x{in_w}"
        );
        let fan_in = in_channels * kernel * kernel;
        assert_eq!(weight.shape(), &[out_channels, fan_in], "weight shape");
        assert_eq!(bias.shape(), &[1, out_channels], "bias shape");
        Conv2d {
            in_channels,
            out_channels,
            kernel,
            stride,
            in_h,
            in_w,
            weight: Param::new(weight),
            bias: Param::new(bias),
            cached_input: None,
        }
    }

    /// Output height.
    pub fn out_h(&self) -> usize {
        (self.in_h - self.kernel) / self.stride + 1
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        (self.in_w - self.kernel) / self.stride + 1
    }

    fn in_len(&self) -> usize {
        self.in_channels * self.in_h * self.in_w
    }

    fn out_len(&self) -> usize {
        self.out_channels * self.out_h() * self.out_w()
    }

    #[inline]
    fn input_index(&self, c: usize, y: usize, x: usize) -> usize {
        (c * self.in_h + y) * self.in_w + x
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let out = self.infer(input);
        if train {
            self.cached_input = Some(input.clone());
        }
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        assert_eq!(
            input.row_len(),
            self.in_len(),
            "conv2d expected {} features, got {}",
            self.in_len(),
            input.row_len()
        );
        let (oh, ow) = (self.out_h(), self.out_w());
        let k = self.kernel;
        let mut out = Tensor::zeros(&[input.batch(), self.out_len()]);
        for b in 0..input.batch() {
            let row = input.row_slice(b);
            for oc in 0..self.out_channels {
                let wrow = &self.weight.value.data()[oc * self.in_channels * k * k..]
                    [..self.in_channels * k * k];
                let bias = self.bias.value.data()[oc];
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bias;
                        let mut widx = 0;
                        for ic in 0..self.in_channels {
                            for ky in 0..k {
                                let iy = oy * self.stride + ky;
                                let base = self.input_index(ic, iy, ox * self.stride);
                                for kx in 0..k {
                                    acc += wrow[widx] * row[base + kx];
                                    widx += 1;
                                }
                            }
                        }
                        let oidx = (oc * oh + oy) * ow + ox;
                        out.data_mut()[b * self.out_len() + oidx] = acc;
                    }
                }
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward");
        let (oh, ow) = (self.out_h(), self.out_w());
        let k = self.kernel;
        let mut grad_in = Tensor::zeros(&[input.batch(), self.in_len()]);
        for b in 0..input.batch() {
            let in_row = input.row_slice(b);
            let go_row = grad_out.row_slice(b);
            for oc in 0..self.out_channels {
                let wbase = oc * self.in_channels * k * k;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = go_row[(oc * oh + oy) * ow + ox];
                        if g == 0.0 {
                            continue;
                        }
                        self.bias.grad.data_mut()[oc] += g;
                        let mut widx = 0;
                        for ic in 0..self.in_channels {
                            for ky in 0..k {
                                let iy = oy * self.stride + ky;
                                let base = self.input_index(ic, iy, ox * self.stride);
                                for kx in 0..k {
                                    self.weight.grad.data_mut()[wbase + widx] +=
                                        g * in_row[base + kx];
                                    grad_in.data_mut()[b * self.in_len() + base + kx] +=
                                        g * self.weight.value.data()[wbase + widx];
                                    widx += 1;
                                }
                            }
                        }
                    }
                }
            }
        }
        grad_in
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn out_features(&self) -> Option<usize> {
        Some(self.out_len())
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec::Conv2d {
            in_channels: self.in_channels,
            out_channels: self.out_channels,
            kernel: self.kernel,
            stride: self.stride,
            in_h: self.in_h,
            in_w: self.in_w,
            weight: self.weight.value.clone(),
            bias: self.bias.value.clone(),
        }
    }
}

/// Non-overlapping 2-D max pooling (window == stride).
#[derive(Debug)]
pub struct MaxPool2d {
    channels: usize,
    window: usize,
    in_h: usize,
    in_w: usize,
    /// Flat input index of the maximum chosen for each output element.
    cached_argmax: Option<Vec<usize>>,
    cached_batch: usize,
}

impl MaxPool2d {
    /// Creates a pooling layer over `[channels, in_h, in_w]` inputs.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero or exceeds the spatial dimensions.
    pub fn new(channels: usize, window: usize, in_h: usize, in_w: usize) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(
            window <= in_h && window <= in_w,
            "window {window} exceeds input {in_h}x{in_w}"
        );
        MaxPool2d {
            channels,
            window,
            in_h,
            in_w,
            cached_argmax: None,
            cached_batch: 0,
        }
    }

    /// Output height.
    pub fn out_h(&self) -> usize {
        self.in_h / self.window
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        self.in_w / self.window
    }

    fn in_len(&self) -> usize {
        self.channels * self.in_h * self.in_w
    }

    fn out_len(&self) -> usize {
        self.channels * self.out_h() * self.out_w()
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        assert_eq!(
            input.row_len(),
            self.in_len(),
            "maxpool input size mismatch"
        );
        let (oh, ow) = (self.out_h(), self.out_w());
        let w = self.window;
        let mut out = Tensor::zeros(&[input.batch(), self.out_len()]);
        let mut argmax = vec![0usize; input.batch() * self.out_len()];
        for b in 0..input.batch() {
            let row = input.row_slice(b);
            for c in 0..self.channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0;
                        for ky in 0..w {
                            for kx in 0..w {
                                let iy = oy * w + ky;
                                let ix = ox * w + kx;
                                let idx = (c * self.in_h + iy) * self.in_w + ix;
                                if row[idx] > best {
                                    best = row[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        let oidx = (c * oh + oy) * ow + ox;
                        out.data_mut()[b * self.out_len() + oidx] = best;
                        argmax[b * self.out_len() + oidx] = best_idx;
                    }
                }
            }
        }
        self.cached_argmax = Some(argmax);
        self.cached_batch = input.batch();
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        assert_eq!(
            input.row_len(),
            self.in_len(),
            "maxpool input size mismatch"
        );
        let (oh, ow) = (self.out_h(), self.out_w());
        let w = self.window;
        let mut out = Tensor::zeros(&[input.batch(), self.out_len()]);
        for b in 0..input.batch() {
            let row = input.row_slice(b);
            for c in 0..self.channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        for ky in 0..w {
                            for kx in 0..w {
                                let iy = oy * w + ky;
                                let ix = ox * w + kx;
                                let idx = (c * self.in_h + iy) * self.in_w + ix;
                                if row[idx] > best {
                                    best = row[idx];
                                }
                            }
                        }
                        let oidx = (c * oh + oy) * ow + ox;
                        out.data_mut()[b * self.out_len() + oidx] = best;
                    }
                }
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let argmax = self
            .cached_argmax
            .as_ref()
            .expect("backward called before forward");
        let mut grad_in = Tensor::zeros(&[self.cached_batch, self.in_len()]);
        for b in 0..self.cached_batch {
            let go = grad_out.row_slice(b);
            for (o, &g) in go.iter().enumerate() {
                let idx = argmax[b * self.out_len() + o];
                grad_in.data_mut()[b * self.in_len() + idx] += g;
            }
        }
        grad_in
    }

    fn out_features(&self) -> Option<usize> {
        Some(self.out_len())
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec::MaxPool2d {
            channels: self.channels,
            window: self.window,
            in_h: self.in_h,
            in_w: self.in_w,
        }
    }
}

/// Identity layer marking the transition from spatial to flat features.
///
/// Since the whole network already uses `[batch, features]`, flatten is a
/// no-op at runtime but documents the architecture and fixes the feature
/// count for shape inference.
#[derive(Debug)]
pub struct Flatten {
    features: usize,
}

impl Flatten {
    /// Creates a flatten marker for `features` flat features.
    pub fn new(features: usize) -> Self {
        Flatten { features }
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        self.infer(input)
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        assert_eq!(input.row_len(), self.features, "flatten size mismatch");
        input.clone()
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        grad_out.clone()
    }

    fn out_features(&self) -> Option<usize> {
        Some(self.features)
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec::Flatten {
            features: self.features,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_identity_kernel_copies_input() {
        // 1x1 kernel with weight 1 reproduces the input.
        let mut conv = Conv2d::from_weights(
            1,
            1,
            1,
            1,
            2,
            2,
            Tensor::from_vec(&[1, 1], vec![1.0]),
            Tensor::zeros(&[1, 1]),
        );
        let x = Tensor::row(&[1.0, 2.0, 3.0, 4.0]);
        let y = conv.forward(&x, false);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn conv_sums_window() {
        // 2x2 all-ones kernel over a 2x2 input = sum of all pixels.
        let mut conv = Conv2d::from_weights(
            1,
            1,
            2,
            1,
            2,
            2,
            Tensor::from_vec(&[1, 4], vec![1.0; 4]),
            Tensor::zeros(&[1, 1]),
        );
        let y = conv.forward(&Tensor::row(&[1.0, 2.0, 3.0, 4.0]), false);
        assert_eq!(y.data(), &[10.0]);
    }

    #[test]
    fn conv_output_dims() {
        let conv = Conv2d::new(1, 4, 3, 2, 9, 9);
        assert_eq!(conv.out_h(), 4);
        assert_eq!(conv.out_w(), 4);
        assert_eq!(conv.out_features(), Some(4 * 4 * 4));
    }

    #[test]
    fn conv_backward_distributes_gradient() {
        let mut conv = Conv2d::from_weights(
            1,
            1,
            2,
            1,
            2,
            2,
            Tensor::from_vec(&[1, 4], vec![1.0; 4]),
            Tensor::zeros(&[1, 1]),
        );
        let x = Tensor::row(&[1.0, 2.0, 3.0, 4.0]);
        let _ = conv.forward(&x, true);
        let dx = conv.backward(&Tensor::row(&[1.0]));
        assert_eq!(dx.data(), &[1.0, 1.0, 1.0, 1.0]);
        let params = conv.params_mut();
        assert_eq!(params[0].grad.data(), x.data());
        assert_eq!(params[1].grad.data(), &[1.0]);
    }

    #[test]
    fn maxpool_selects_maximum() {
        let mut pool = MaxPool2d::new(1, 2, 2, 2);
        let y = pool.forward(&Tensor::row(&[1.0, 5.0, 3.0, 2.0]), false);
        assert_eq!(y.data(), &[5.0]);
        let dx = pool.backward(&Tensor::row(&[1.0]));
        assert_eq!(dx.data(), &[0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn maxpool_per_channel() {
        let mut pool = MaxPool2d::new(2, 2, 2, 2);
        let x = Tensor::row(&[1.0, 2.0, 3.0, 4.0, 8.0, 7.0, 6.0, 5.0]);
        let y = pool.forward(&x, false);
        assert_eq!(y.data(), &[4.0, 8.0]);
    }

    #[test]
    fn flatten_is_identity() {
        let mut f = Flatten::new(4);
        let x = Tensor::row(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(f.forward(&x, false), x);
        assert_eq!(f.backward(&x), x);
    }

    #[test]
    #[should_panic(expected = "exceeds input")]
    fn conv_rejects_oversized_kernel() {
        let _ = Conv2d::new(1, 1, 5, 1, 3, 3);
    }
}
