//! Q-learning support (the paper's `Q` algorithm in Fig. 8).
//!
//! The Autonomizer runtime trains reinforcement-learning models online while
//! the program executes: each `au_NN` call in TR mode delivers the current
//! feature vector plus the reward/terminal signals, and receives the next
//! action. [`DqnAgent`] implements the standard deep-Q-network recipe used by
//! the paper's baselines — ε-greedy exploration, an experience replay buffer,
//! and a periodically synchronized target network.

use crate::network::Network;
use crate::optim::Adam;
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// One step of experience: `(s, a, r, s', terminal)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// State (feature vector) before the action.
    pub state: Vec<f32>,
    /// Index of the action taken.
    pub action: usize,
    /// Reward received.
    pub reward: f32,
    /// State after the action.
    pub next_state: Vec<f32>,
    /// Whether the episode ended at `next_state`.
    pub terminal: bool,
}

/// Fixed-capacity FIFO experience store with uniform sampling.
#[derive(Debug)]
pub struct ReplayBuffer {
    capacity: usize,
    items: VecDeque<Transition>,
}

impl ReplayBuffer {
    /// Creates a buffer holding at most `capacity` transitions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "replay capacity must be positive");
        ReplayBuffer {
            capacity,
            items: VecDeque::with_capacity(capacity),
        }
    }

    /// Appends a transition, evicting the oldest when full.
    pub fn push(&mut self, t: Transition) {
        if self.items.len() == self.capacity {
            self.items.pop_front();
        }
        self.items.push_back(t);
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Samples `n` transitions uniformly with replacement.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty.
    pub fn sample<'a>(&'a self, n: usize, rng: &mut StdRng) -> Vec<&'a Transition> {
        assert!(!self.items.is_empty(), "cannot sample from an empty buffer");
        (0..n)
            .map(|_| &self.items[rng.gen_range(0..self.items.len())])
            .collect()
    }
}

/// Hyperparameters for [`DqnAgent`].
#[derive(Debug, Clone, PartialEq)]
pub struct DqnConfig {
    /// Discount factor γ.
    pub gamma: f32,
    /// Initial exploration rate.
    pub epsilon_start: f32,
    /// Final exploration rate.
    pub epsilon_end: f32,
    /// Multiplicative ε decay applied per learning step.
    pub epsilon_decay: f32,
    /// Mini-batch size sampled from the replay buffer.
    pub batch_size: usize,
    /// Learning steps between target-network syncs (0 disables the target
    /// network — an ablation axis).
    pub target_sync_every: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Replay-buffer capacity. Must be at least `batch_size` for learning
    /// to start; a capacity barely above `batch_size` approximates
    /// no-replay (the other ablation axis).
    pub replay_capacity: usize,
    /// Hidden layer sizes of the Q-network.
    pub hidden: Vec<usize>,
    /// RNG seed for exploration and sampling.
    pub seed: u64,
    /// Learn only every N observed transitions (1 = every step). Larger
    /// values trade sample efficiency for wall-clock speed.
    pub learn_every: usize,
}

impl Default for DqnConfig {
    fn default() -> Self {
        DqnConfig {
            gamma: 0.97,
            epsilon_start: 1.0,
            epsilon_end: 0.05,
            epsilon_decay: 0.995,
            batch_size: 32,
            target_sync_every: 100,
            learning_rate: 1e-3,
            replay_capacity: 10_000,
            // The paper's Mario model: two hidden layers of 256 and 64.
            hidden: vec![256, 64],
            seed: 0xA0_70_70,
            learn_every: 1,
        }
    }
}

/// A deep-Q-network agent over flat feature vectors.
#[derive(Debug)]
pub struct DqnAgent {
    online: Network,
    target: Option<Network>,
    opt: Adam,
    buffer: ReplayBuffer,
    config: DqnConfig,
    epsilon: f32,
    learn_steps: usize,
    observed: usize,
    state_dim: usize,
    n_actions: usize,
    rng: StdRng,
}

impl DqnAgent {
    /// Creates an agent for `state_dim` features and `n_actions` discrete
    /// actions with a fully connected Q-network.
    ///
    /// # Panics
    ///
    /// Panics if `state_dim` or `n_actions` is zero.
    pub fn new(state_dim: usize, n_actions: usize, config: DqnConfig) -> Self {
        assert!(state_dim > 0, "state_dim must be positive");
        assert!(n_actions > 0, "n_actions must be positive");
        let online = crate::network::dnn(state_dim, &config.hidden, n_actions);
        let target = if config.target_sync_every > 0 {
            let mut t = crate::network::dnn(state_dim, &config.hidden, n_actions);
            // target starts as a copy of online
            let mut online_clone =
                Network::from_json(&online.to_json()).expect("fresh model round-trips");
            t.copy_weights_from(&mut online_clone);
            Some(t)
        } else {
            None
        };
        let rng = StdRng::seed_from_u64(config.seed);
        DqnAgent {
            online,
            target,
            opt: Adam::new(config.learning_rate),
            buffer: ReplayBuffer::new(config.replay_capacity),
            epsilon: config.epsilon_start,
            learn_steps: 0,
            observed: 0,
            state_dim,
            n_actions,
            config,
            rng,
        }
    }

    /// Creates an agent whose Q-network is the caller-supplied `network`
    /// (e.g. a convolutional pixel network for the paper's Raw baseline).
    ///
    /// # Panics
    ///
    /// Panics if the network's shape disagrees with `state_dim`/`n_actions`.
    pub fn with_network(
        state_dim: usize,
        n_actions: usize,
        config: DqnConfig,
        network: Network,
    ) -> Self {
        assert_eq!(network.in_features(), state_dim, "network input mismatch");
        assert_eq!(network.out_features(), n_actions, "network output mismatch");
        let target = if config.target_sync_every > 0 {
            Some(Network::from_json(&network.to_json()).expect("fresh model round-trips"))
        } else {
            None
        };
        let rng = StdRng::seed_from_u64(config.seed);
        DqnAgent {
            online: network,
            target,
            opt: Adam::new(config.learning_rate),
            buffer: ReplayBuffer::new(config.replay_capacity),
            epsilon: config.epsilon_start,
            learn_steps: 0,
            observed: 0,
            state_dim,
            n_actions,
            config,
            rng,
        }
    }

    /// Current exploration rate.
    pub fn epsilon(&self) -> f32 {
        self.epsilon
    }

    /// Number of discrete actions.
    pub fn n_actions(&self) -> usize {
        self.n_actions
    }

    /// Expected state feature count.
    pub fn state_dim(&self) -> usize {
        self.state_dim
    }

    /// The online Q-network (e.g. for persistence via `to_json`).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.online
    }

    /// Drops cached weight views on the online and target networks — see
    /// [`Network::invalidate_cached_weights`]. Required after any direct
    /// parameter mutation (e.g. [`DqnAgent::network_mut`] weight surgery,
    /// checkpoint restores in a host runtime).
    pub fn invalidate_cached_weights(&mut self) {
        self.online.invalidate_cached_weights();
        if let Some(t) = self.target.as_mut() {
            t.invalidate_cached_weights();
        }
    }

    /// Read access to the online Q-network — enough for persistence
    /// (`to_json`) and concurrent inference ([`Network::infer`]).
    pub fn network(&self) -> &Network {
        &self.online
    }

    /// Q-values for a single state.
    pub fn q_values(&mut self, state: &[f32]) -> Vec<f32> {
        self.q_values_ref(state)
    }

    /// Q-values for a single state through `&self`, so a shared agent can
    /// serve concurrent deployment-mode traffic.
    pub fn q_values_ref(&self, state: &[f32]) -> Vec<f32> {
        assert_eq!(state.len(), self.state_dim, "state size mismatch");
        self.online.infer(&Tensor::row(state)).into_vec()
    }

    /// Greedy (exploitation-only) action — used in TS/deployment mode.
    pub fn greedy_action(&mut self, state: &[f32]) -> usize {
        self.greedy_action_ref(state)
    }

    /// Greedy action through `&self` — the concurrent deployment-mode path.
    pub fn greedy_action_ref(&self, state: &[f32]) -> usize {
        let q = self.online.infer(&Tensor::row(state));
        q.argmax_row(0)
    }

    /// ε-greedy action — used in TR/training mode.
    pub fn select_action(&mut self, state: &[f32]) -> usize {
        if self.rng.gen::<f32>() < self.epsilon {
            self.rng.gen_range(0..self.n_actions)
        } else {
            self.greedy_action(state)
        }
    }

    /// Records a transition and performs one learning step when enough
    /// experience is available. Returns the TD loss if a step ran.
    pub fn observe(&mut self, t: Transition) -> Option<f32> {
        assert_eq!(t.state.len(), self.state_dim, "state size mismatch");
        assert_eq!(
            t.next_state.len(),
            self.state_dim,
            "next state size mismatch"
        );
        assert!(
            t.action < self.n_actions,
            "action {} out of range",
            t.action
        );
        self.buffer.push(t);
        self.observed += 1;
        if self.buffer.len() < self.config.batch_size {
            return None;
        }
        if !self.observed.is_multiple_of(self.config.learn_every.max(1)) {
            return None;
        }
        Some(self.learn())
    }

    fn learn(&mut self) -> f32 {
        let batch_size = self.config.batch_size;
        let sampled: Vec<Transition> = self
            .buffer
            .sample(batch_size, &mut self.rng)
            .into_iter()
            .cloned()
            .collect();

        // Build state and next-state batches.
        let mut states = Tensor::zeros(&[batch_size, self.state_dim]);
        let mut next_states = Tensor::zeros(&[batch_size, self.state_dim]);
        for (i, t) in sampled.iter().enumerate() {
            states.data_mut()[i * self.state_dim..(i + 1) * self.state_dim]
                .copy_from_slice(&t.state);
            next_states.data_mut()[i * self.state_dim..(i + 1) * self.state_dim]
                .copy_from_slice(&t.next_state);
        }

        // Bootstrap targets from the target network (or online, if disabled).
        let next_q = match &mut self.target {
            Some(target) => target.forward(&next_states),
            None => self.online.forward(&next_states),
        };
        let q = self.online.forward(&states);
        let mut grad = Tensor::zeros(q.shape());
        let mut loss = 0.0f32;
        for (i, t) in sampled.iter().enumerate() {
            let max_next = (0..self.n_actions)
                .map(|a| next_q.row_slice(i)[a])
                .fold(f32::NEG_INFINITY, f32::max);
            let target_value = if t.terminal {
                t.reward
            } else {
                t.reward + self.config.gamma * max_next
            };
            let predicted = q.row_slice(i)[t.action];
            let d = predicted - target_value;
            // Huber loss on the taken action's output only.
            loss += if d.abs() <= 1.0 {
                0.5 * d * d
            } else {
                d.abs() - 0.5
            };
            grad.data_mut()[i * self.n_actions + t.action] = d.clamp(-1.0, 1.0) / batch_size as f32;
        }
        self.online
            .train_with_output_grad(&states, &grad, &mut self.opt);

        self.learn_steps += 1;
        self.epsilon = (self.epsilon * self.config.epsilon_decay).max(self.config.epsilon_end);
        if let Some(target) = &mut self.target {
            if self.config.target_sync_every > 0
                && self
                    .learn_steps
                    .is_multiple_of(self.config.target_sync_every)
            {
                target.copy_weights_from(&mut self.online);
            }
        }
        loss / batch_size as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_state_config() -> DqnConfig {
        DqnConfig {
            hidden: vec![16],
            batch_size: 8,
            replay_capacity: 256,
            target_sync_every: 20,
            epsilon_decay: 0.97,
            learning_rate: 5e-3,
            seed: 1,
            ..DqnConfig::default()
        }
    }

    #[test]
    fn replay_buffer_evicts_oldest() {
        let mut buf = ReplayBuffer::new(2);
        for i in 0..3 {
            buf.push(Transition {
                state: vec![i as f32],
                action: 0,
                reward: 0.0,
                next_state: vec![0.0],
                terminal: false,
            });
        }
        assert_eq!(buf.len(), 2);
        let mut rng = StdRng::seed_from_u64(0);
        let s = buf.sample(10, &mut rng);
        assert!(s.iter().all(|t| t.state[0] >= 1.0), "oldest evicted");
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn sampling_empty_buffer_panics() {
        let buf = ReplayBuffer::new(4);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = buf.sample(1, &mut rng);
    }

    #[test]
    fn epsilon_decays_toward_floor() {
        crate::init::set_init_seed(2);
        let mut agent = DqnAgent::new(1, 2, two_state_config());
        for _ in 0..500 {
            agent.observe(Transition {
                state: vec![0.0],
                action: 0,
                reward: 0.0,
                next_state: vec![0.0],
                terminal: true,
            });
        }
        assert!((agent.epsilon() - agent.config.epsilon_end).abs() < 1e-3);
    }

    #[test]
    fn learns_trivial_bandit() {
        // Single state, two actions: action 1 pays +1, action 0 pays -1.
        crate::init::set_init_seed(5);
        let mut agent = DqnAgent::new(1, 2, two_state_config());
        for _ in 0..400 {
            let a = agent.select_action(&[1.0]);
            let r = if a == 1 { 1.0 } else { -1.0 };
            agent.observe(Transition {
                state: vec![1.0],
                action: a,
                reward: r,
                next_state: vec![1.0],
                terminal: true,
            });
        }
        assert_eq!(agent.greedy_action(&[1.0]), 1);
        let q = agent.q_values(&[1.0]);
        assert!(q[1] > q[0], "Q(s,1)={} should exceed Q(s,0)={}", q[1], q[0]);
    }

    #[test]
    fn learns_two_step_credit_assignment() {
        // States 0 -> (action 1) -> state 1 -> (action 1) -> +1 terminal.
        // Any action 0 terminates with 0 reward. Optimal policy: always 1.
        crate::init::set_init_seed(6);
        let mut cfg = two_state_config();
        cfg.gamma = 0.9;
        let mut agent = DqnAgent::new(2, 2, cfg);
        let s0 = [1.0, 0.0];
        let s1 = [0.0, 1.0];
        for _ in 0..600 {
            let a0 = agent.select_action(&s0);
            if a0 == 0 {
                agent.observe(Transition {
                    state: s0.to_vec(),
                    action: 0,
                    reward: 0.0,
                    next_state: s0.to_vec(),
                    terminal: true,
                });
                continue;
            }
            agent.observe(Transition {
                state: s0.to_vec(),
                action: 1,
                reward: 0.0,
                next_state: s1.to_vec(),
                terminal: false,
            });
            let a1 = agent.select_action(&s1);
            let r = if a1 == 1 { 1.0 } else { 0.0 };
            agent.observe(Transition {
                state: s1.to_vec(),
                action: a1,
                reward: r,
                next_state: s1.to_vec(),
                terminal: true,
            });
        }
        assert_eq!(agent.greedy_action(&s1), 1);
        assert_eq!(
            agent.greedy_action(&s0),
            1,
            "reward propagates one step back"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn observe_rejects_bad_action() {
        let mut agent = DqnAgent::new(1, 2, two_state_config());
        agent.observe(Transition {
            state: vec![0.0],
            action: 7,
            reward: 0.0,
            next_state: vec![0.0],
            terminal: true,
        });
    }

    #[test]
    fn target_network_can_be_disabled() {
        let cfg = DqnConfig {
            target_sync_every: 0,
            hidden: vec![8],
            batch_size: 4,
            ..DqnConfig::default()
        };
        let mut agent = DqnAgent::new(1, 2, cfg);
        assert!(agent.target.is_none());
        for _ in 0..10 {
            agent.observe(Transition {
                state: vec![0.5],
                action: 0,
                reward: 1.0,
                next_state: vec![0.5],
                terminal: false,
            });
        }
    }
}
