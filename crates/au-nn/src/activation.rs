//! Element-wise activation layers.

use crate::layer::{Layer, LayerSpec};
use crate::tensor::Tensor;

/// An element-wise activation function usable as a [`Layer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Activation {
    /// Rectified linear unit: `max(0, x)`.
    Relu,
    /// Logistic sigmoid: `1 / (1 + e^{-x})`.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Identity (useful as an explicit output layer).
    Linear,
}

impl Activation {
    /// Applies the activation to a scalar.
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
            Activation::Linear => x,
        }
    }

    /// Derivative expressed in terms of the activation *output* `y`.
    pub fn derivative_from_output(self, y: f32) -> f32 {
        match self {
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Tanh => 1.0 - y * y,
            Activation::Linear => 1.0,
        }
    }

    /// Stable name used in serialized models.
    pub fn name(self) -> &'static str {
        match self {
            Activation::Relu => "relu",
            Activation::Sigmoid => "sigmoid",
            Activation::Tanh => "tanh",
            Activation::Linear => "linear",
        }
    }

    /// Parses a serialized activation name.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "relu" => Some(Activation::Relu),
            "sigmoid" => Some(Activation::Sigmoid),
            "tanh" => Some(Activation::Tanh),
            "linear" => Some(Activation::Linear),
            _ => None,
        }
    }
}

/// Layer wrapper holding the cached output for the backward pass.
#[derive(Debug)]
pub struct ActivationLayer {
    kind: Activation,
    cached_output: Option<Tensor>,
}

impl ActivationLayer {
    /// Wraps an activation function as a layer.
    pub fn new(kind: Activation) -> Self {
        ActivationLayer {
            kind,
            cached_output: None,
        }
    }
}

impl Layer for ActivationLayer {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let out = self.infer(input);
        if train {
            self.cached_output = Some(out.clone());
        }
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        input.map(|x| self.kind.apply(x))
    }

    fn infer_into(&self, input: &Tensor, out: &mut Tensor) {
        out.copy_from(input);
        for v in out.data_mut() {
            *v = self.kind.apply(*v);
        }
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let out = self
            .cached_output
            .as_ref()
            .expect("backward called before forward");
        assert_eq!(out.shape(), grad_out.shape(), "gradient shape mismatch");
        let data = out
            .data()
            .iter()
            .zip(grad_out.data())
            .map(|(&y, &g)| g * self.kind.derivative_from_output(y))
            .collect();
        Tensor::from_vec(grad_out.shape(), data)
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec::Activation {
            kind: self.kind.name().to_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(Activation::Relu.apply(-1.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.0), 2.0);
    }

    #[test]
    fn sigmoid_midpoint() {
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn derivative_from_output_matches_analytic() {
        // sigmoid'(0) = 0.25
        let y = Activation::Sigmoid.apply(0.0);
        assert!((Activation::Sigmoid.derivative_from_output(y) - 0.25).abs() < 1e-6);
        // tanh'(0) = 1
        let y = Activation::Tanh.apply(0.0);
        assert!((Activation::Tanh.derivative_from_output(y) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn name_round_trip() {
        for a in [
            Activation::Relu,
            Activation::Sigmoid,
            Activation::Tanh,
            Activation::Linear,
        ] {
            assert_eq!(Activation::from_name(a.name()), Some(a));
        }
        assert_eq!(Activation::from_name("swish"), None);
    }

    #[test]
    fn layer_backward_scales_gradient() {
        let mut layer = ActivationLayer::new(Activation::Relu);
        let x = Tensor::row(&[-1.0, 2.0]);
        let _ = layer.forward(&x, true);
        let g = layer.backward(&Tensor::row(&[1.0, 1.0]));
        assert_eq!(g.data(), &[0.0, 1.0]);
    }
}
