//! Fully connected (dense) layer.

use crate::init::xavier;
use crate::layer::{Layer, LayerSpec, Param};
use crate::tensor::Tensor;

/// A fully connected layer computing `y = x·W + b`.
///
/// Input `[batch, in]`, output `[batch, out]`.
#[derive(Debug)]
pub struct Dense {
    in_features: usize,
    out_features: usize,
    weight: Param,
    bias: Param,
    cached_input: Option<Tensor>,
    /// `Wᵀ` memoized for the backward pass (`dx = dy · Wᵀ`); rebuilt lazily
    /// after [`Layer::invalidate_cached_weights`].
    cached_wt: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with Xavier-initialized weights.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(in_features: usize, out_features: usize) -> Self {
        assert!(in_features > 0, "in_features must be positive");
        assert!(out_features > 0, "out_features must be positive");
        Dense {
            in_features,
            out_features,
            weight: Param::new(xavier(
                in_features,
                out_features,
                &[in_features, out_features],
            )),
            bias: Param::new(Tensor::zeros(&[1, out_features])),
            cached_input: None,
            cached_wt: None,
        }
    }

    /// Reconstructs a dense layer from saved weights.
    ///
    /// # Panics
    ///
    /// Panics if the tensor shapes disagree with the feature counts.
    pub fn from_weights(weight: Tensor, bias: Tensor) -> Self {
        assert_eq!(weight.shape().len(), 2, "weight must be 2-D");
        let (in_features, out_features) = (weight.shape()[0], weight.shape()[1]);
        assert_eq!(bias.shape(), &[1, out_features], "bias shape mismatch");
        Dense {
            in_features,
            out_features,
            weight: Param::new(weight),
            bias: Param::new(bias),
            cached_input: None,
            cached_wt: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let out = self.infer(input);
        // The backward pass only needs the input during training.
        if train {
            self.cached_input = Some(input.clone());
        }
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        let mut out = Tensor::default();
        self.infer_into(input, &mut out);
        out
    }

    fn infer_into(&self, input: &Tensor, out: &mut Tensor) {
        assert_eq!(
            input.row_len(),
            self.in_features,
            "dense layer expected {} features, got {}",
            self.in_features,
            input.row_len()
        );
        // Zero-init + GEMM + separate bias row-add: the same operation
        // sequence as `matmul` followed by the bias loop, so the result is
        // bit-identical to the allocating path (a fused bias pre-fill would
        // change the per-element accumulation order).
        let batch = input.batch();
        let n = self.out_features;
        out.resize_zeroed(&[batch, n]);
        crate::kernels::gemm_acc_par(
            out.data_mut(),
            input.data(),
            self.weight.value.data(),
            batch,
            self.in_features,
            n,
        );
        let bias = self.bias.value.data();
        for i in 0..batch {
            let row = &mut out.data_mut()[i * n..(i + 1) * n];
            for (o, b) in row.iter_mut().zip(bias) {
                *o += b;
            }
        }
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward");
        // dW = xᵀ · dy, accumulated straight into the gradient buffer
        // without materializing xᵀ (ascending-sample order, same result as
        // the explicit transpose-then-multiply it replaced).
        let batch = input.batch();
        crate::kernels::gemm_tn_acc(
            self.weight.grad.data_mut(),
            input.data(),
            grad_out.data(),
            batch,
            self.in_features,
            self.out_features,
        );
        // db = Σ_batch dy
        let n = self.out_features;
        for i in 0..grad_out.batch() {
            let row = grad_out.row_slice(i);
            for (g, d) in self.bias.grad.data_mut()[..n].iter_mut().zip(row) {
                *g += d;
            }
        }
        // dx = dy · Wᵀ through the memoized transpose: valid until the next
        // weight mutation, so repeated backward passes between optimizer
        // steps (gradient checking, minibatch accumulation) pay for the
        // transpose once.
        let wt = self
            .cached_wt
            .get_or_insert_with(|| self.weight.value.transpose());
        grad_out.matmul(wt)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn out_features(&self) -> Option<usize> {
        Some(self.out_features)
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec::Dense {
            in_features: self.in_features,
            out_features: self.out_features,
            weight: self.weight.value.clone(),
            bias: self.bias.value.clone(),
        }
    }

    fn invalidate_cached_weights(&mut self) {
        self.cached_wt = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_applies_weights_and_bias() {
        let w = Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 2.0]]);
        let b = Tensor::row(&[10.0, 20.0]);
        let mut layer = Dense::from_weights(w, b);
        let out = layer.forward(&Tensor::row(&[3.0, 4.0]), false);
        assert_eq!(out.data(), &[13.0, 28.0]);
    }

    #[test]
    fn backward_produces_input_grad_and_param_grads() {
        let w = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::row(&[0.0, 0.0]);
        let mut layer = Dense::from_weights(w, b);
        let x = Tensor::row(&[1.0, 1.0]);
        let _ = layer.forward(&x, true);
        let dx = layer.backward(&Tensor::row(&[1.0, 1.0]));
        // dx = dy · Wᵀ = [1+2, 3+4]
        assert_eq!(dx.data(), &[3.0, 7.0]);
        let params = layer.params_mut();
        // dW = xᵀ·dy = all ones; db = dy
        assert_eq!(params[0].grad.data(), &[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(params[1].grad.data(), &[1.0, 1.0]);
    }

    #[test]
    fn batched_forward_matches_per_sample() {
        let mut layer = Dense::new(3, 2);
        let a = Tensor::row(&[1.0, 2.0, 3.0]);
        let b = Tensor::row(&[-1.0, 0.5, 2.0]);
        let ya = layer.forward(&a, false).into_vec();
        let yb = layer.forward(&b, false).into_vec();
        let batch = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[-1.0, 0.5, 2.0]]);
        let y = layer.forward(&batch, false);
        assert_eq!(y.row_slice(0), &ya[..]);
        assert_eq!(y.row_slice(1), &yb[..]);
    }

    #[test]
    #[should_panic(expected = "expected 3 features")]
    fn forward_rejects_wrong_width() {
        let mut layer = Dense::new(3, 2);
        let _ = layer.forward(&Tensor::row(&[1.0, 2.0]), false);
    }

    #[test]
    fn spec_round_trips_weights() {
        let layer = Dense::new(2, 2);
        match layer.spec() {
            LayerSpec::Dense {
                in_features,
                out_features,
                weight,
                ..
            } => {
                assert_eq!(in_features, 2);
                assert_eq!(out_features, 2);
                assert_eq!(weight, layer.weight.value);
            }
            other => panic!("unexpected spec {other:?}"),
        }
    }
}
