//! From-scratch neural-network backend for the Autonomizer reproduction.
//!
//! The PLDI 2019 paper delegates model construction, training, and inference
//! to TensorFlow through a generated Python template. This crate provides the
//! same four capabilities the paper's semantics (Fig. 8) require —
//! `buildModel`, `loadModel`, `runModel`, and `gradient` — as a small,
//! dependency-light Rust library:
//!
//! - [`Tensor`]: an n-dimensional `f32` array with shape bookkeeping.
//! - [`Layer`] implementations: [`Dense`], [`Conv2d`], [`MaxPool2d`],
//!   [`Flatten`], and activations ([`Activation`]).
//! - [`Network`]: a sequential model with forward/backward passes, losses,
//!   and JSON (de)serialization so trained models survive the paper's
//!   TR (train) → TS (deploy) mode split.
//! - Optimizers: [`Sgd`] and [`Adam`] (the paper's `AdamOpt`).
//! - [`rl`]: a deep-Q-learning agent (`Q` in the paper) with a replay buffer,
//!   an ε-greedy policy, and a target network.
//!
//! # Example
//!
//! ```
//! use au_nn::{Network, Dense, Activation, Adam, Tensor, Loss};
//!
//! // A tiny regression net: 2 -> 8 -> 1.
//! let mut net = Network::builder(2)
//!     .dense(8)
//!     .activation(Activation::Relu)
//!     .dense(1)
//!     .build();
//! let mut opt = Adam::new(1e-2);
//! let xs = Tensor::from_rows(&[&[0.0, 0.0], &[1.0, 1.0]]);
//! let ys = Tensor::from_rows(&[&[0.0], &[2.0]]);
//! for _ in 0..200 {
//!     net.train_batch(&xs, &ys, Loss::Mse, &mut opt);
//! }
//! let out = net.forward(&Tensor::from_rows(&[&[1.0, 1.0]]));
//! assert!((out.data()[0] - 2.0).abs() < 0.2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[macro_use]
mod telem;

mod activation;
mod conv;
mod dense;
mod dropout;
mod gradcheck;
mod init;
mod kernels;
mod layer;
mod loss;
mod network;
mod optim;
pub mod rl;
mod tensor;

pub use activation::Activation;
pub use conv::{Conv2d, Flatten, MaxPool2d};
pub use dense::Dense;
pub use dropout::Dropout;
pub use gradcheck::{check_gradients, GradCheckReport};
pub use init::set_init_seed;
pub use layer::{Layer, LayerSpec, Param};
pub use loss::Loss;
pub use network::{InferScratch, Network, NetworkBuilder, NnError};
pub use optim::{Adam, Optimizer, Sgd};
pub use tensor::Tensor;

#[cfg(test)]
pub(crate) mod test_support {
    use std::sync::{Mutex, MutexGuard};

    /// Serializes tests that mutate the process-wide au-par thread
    /// override, which is global state shared by every test thread.
    static PAR_LOCK: Mutex<()> = Mutex::new(());

    pub(crate) fn par_lock() -> MutexGuard<'static, ()> {
        PAR_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }
}
