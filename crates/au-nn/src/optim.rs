//! Optimizers: SGD and Adam (the paper's `AdamOpt` algorithm).

use crate::layer::Param;

/// Gradient-based parameter update rule.
///
/// Called once per batch with every learnable parameter of the network.
pub trait Optimizer: std::fmt::Debug + Send {
    /// Applies one update step to `param` using its accumulated gradient.
    fn step(&mut self, param: &mut Param);

    /// Signals the end of a batch (advances time-dependent state such as
    /// Adam's bias-correction counter).
    fn end_batch(&mut self) {}

    /// The current learning rate.
    fn learning_rate(&self) -> f32;
}

/// Plain stochastic gradient descent, optionally with momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
}

impl Sgd {
    /// Creates SGD with the given learning rate and no momentum.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn new(lr: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        Sgd { lr, momentum: 0.0 }
    }

    /// Adds classical momentum (stored in the parameter's `m` buffer).
    ///
    /// # Panics
    ///
    /// Panics if `momentum` is not in `[0, 1)`.
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        self.momentum = momentum;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, param: &mut Param) {
        let lr = self.lr;
        let mu = self.momentum;
        let n = param.value.len();
        for i in 0..n {
            let g = param.grad.data()[i];
            if mu > 0.0 {
                let m = mu * param.m.data()[i] + g;
                param.m.data_mut()[i] = m;
                param.value.data_mut()[i] -= lr * m;
            } else {
                param.value.data_mut()[i] -= lr * g;
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

/// Adam optimizer (Kingma & Ba 2014) — the paper's supervised-learning
/// algorithm `AdamOpt` in Fig. 8.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    /// Batch counter for bias correction (t in the paper).
    t: u64,
}

impl Adam {
    /// Creates Adam with standard hyperparameters (β₁=0.9, β₂=0.999, ε=1e-8).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn new(lr: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
        }
    }

    /// Overrides the exponential decay rates.
    ///
    /// # Panics
    ///
    /// Panics if either beta is outside `[0, 1)`.
    pub fn with_betas(mut self, beta1: f32, beta2: f32) -> Self {
        assert!((0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2));
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }
}

impl Optimizer for Adam {
    fn step(&mut self, param: &mut Param) {
        let t = (self.t + 1) as f32;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        let n = param.value.len();
        for i in 0..n {
            let g = param.grad.data()[i];
            let m = self.beta1 * param.m.data()[i] + (1.0 - self.beta1) * g;
            let v = self.beta2 * param.v.data()[i] + (1.0 - self.beta2) * g * g;
            param.m.data_mut()[i] = m;
            param.v.data_mut()[i] = v;
            let m_hat = m / bc1;
            let v_hat = v / bc2;
            param.value.data_mut()[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    fn end_batch(&mut self) {
        self.t += 1;
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    fn param_with_grad(value: f32, grad: f32) -> Param {
        let mut p = Param::new(Tensor::row(&[value]));
        p.grad.data_mut()[0] = grad;
        p
    }

    #[test]
    fn sgd_moves_against_gradient() {
        let mut opt = Sgd::new(0.1);
        let mut p = param_with_grad(1.0, 2.0);
        opt.step(&mut p);
        assert!((p.value.data()[0] - 0.8).abs() < 1e-6);
    }

    #[test]
    fn sgd_momentum_accumulates() {
        let mut opt = Sgd::new(0.1).with_momentum(0.9);
        let mut p = param_with_grad(0.0, 1.0);
        opt.step(&mut p);
        let first = p.value.data()[0];
        p.grad.data_mut()[0] = 1.0;
        opt.step(&mut p);
        let second_delta = p.value.data()[0] - first;
        assert!(second_delta.abs() > first.abs(), "momentum grows the step");
    }

    #[test]
    fn adam_first_step_size_is_lr() {
        // With bias correction, the first Adam step magnitude ≈ lr.
        let mut opt = Adam::new(0.01);
        let mut p = param_with_grad(0.0, 3.0);
        opt.step(&mut p);
        assert!((p.value.data()[0].abs() - 0.01).abs() < 1e-4);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // minimize (x-5)^2 — gradient 2(x-5)
        let mut opt = Adam::new(0.1);
        let mut p = Param::new(Tensor::row(&[0.0]));
        for _ in 0..500 {
            let x = p.value.data()[0];
            p.grad.data_mut()[0] = 2.0 * (x - 5.0);
            opt.step(&mut p);
            opt.end_batch();
        }
        assert!((p.value.data()[0] - 5.0).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_lr() {
        let _ = Adam::new(0.0);
    }
}
