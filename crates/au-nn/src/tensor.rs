//! A minimal n-dimensional `f32` tensor.
//!
//! Shapes follow the convention used throughout the crate: the first
//! dimension is the batch dimension. Dense layers operate on `[batch, n]`
//! tensors; convolutional layers on `[batch, channels, height, width]`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An n-dimensional array of `f32` values in row-major order.
///
/// # Example
///
/// ```
/// use au_nn::Tensor;
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.shape(), &[2, 3]);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Default for Tensor {
    /// A one-element placeholder, meant to be overwritten via
    /// [`Tensor::resize_zeroed`] / [`Tensor::copy_from`] /
    /// [`Tensor::set_row`] before use — the seed value for reusable
    /// scratch buffers like [`crate::InferScratch`].
    fn default() -> Self {
        Tensor {
            shape: vec![1],
            data: vec![0.0],
        }
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.data.len() <= 8 {
            write!(f, " {:?}", self.data)
        } else {
            write!(f, " [{} values]", self.data.len())
        }
    }
}

impl Tensor {
    /// Creates a tensor of the given shape filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `shape` is empty.
    pub fn zeros(shape: &[usize]) -> Self {
        assert!(!shape.is_empty(), "tensor shape must be non-empty");
        let len = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; len],
        }
    }

    /// Creates a tensor from a flat vector and a shape.
    ///
    /// # Panics
    ///
    /// Panics if the data length does not match the product of `shape`.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        let len: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            len,
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Creates a 2-D `[rows, cols]` tensor from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have differing lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "all rows must have the same length");
            data.extend_from_slice(row);
        }
        Tensor::from_vec(&[rows.len(), cols], data)
    }

    /// Creates a `[1, n]` tensor (a single-sample batch) from a slice.
    pub fn row(values: &[f32]) -> Self {
        Tensor::from_vec(&[1, values.len()], values.to_vec())
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements (only possible with a
    /// zero-length dimension).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the underlying row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the underlying row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the flat data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reinterprets the tensor with a new shape of equal element count.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        Tensor::from_vec(shape, self.data.clone())
    }

    /// Number of rows when viewed as a batch (the first dimension).
    pub fn batch(&self) -> usize {
        self.shape[0]
    }

    /// Elements per batch row.
    pub fn row_len(&self) -> usize {
        self.data.len().checked_div(self.shape[0]).unwrap_or(0)
    }

    /// Borrows batch row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn row_slice(&self, i: usize) -> &[f32] {
        let n = self.row_len();
        &self.data[i * n..(i + 1) * n]
    }

    /// Matrix multiply: `self [m,k] × other [k,n] → [m,n]`.
    ///
    /// Runs through the cache-blocked kernel in [`crate::kernels`], with
    /// output rows fanned out across au-par workers for large products.
    /// Each output element accumulates its products in ascending inner-index
    /// order, so results are bit-identical to the scalar triple loop and
    /// invariant to thread count.
    ///
    /// # Panics
    ///
    /// Panics if the tensors are not 2-D or the inner dimensions disagree.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul lhs must be 2-D");
        assert_eq!(other.shape.len(), 2, "matmul rhs must be 2-D");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul inner dimensions must agree: {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        crate::kernels::gemm_acc_par(&mut out, &self.data, &other.data, m, k, n);
        Tensor::from_vec(&[m, n], out)
    }

    /// Transpose of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "transpose requires a 2-D tensor");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor::from_vec(&[n, m], out)
    }

    /// Element-wise addition.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "add requires equal shapes");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Tensor::from_vec(&self.shape, data)
    }

    /// Element-wise subtraction.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "sub requires equal shapes");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Tensor::from_vec(&self.shape, data)
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        let data = self.data.iter().map(|a| a * s).collect();
        Tensor::from_vec(&self.shape, data)
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let data = self.data.iter().map(|&a| f(a)).collect();
        Tensor::from_vec(&self.shape, data)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Reshapes this tensor in place to `shape` with all elements zero,
    /// reusing the existing allocation when capacity allows. The
    /// allocation-free twin of [`Tensor::zeros`] for scratch buffers.
    ///
    /// # Panics
    ///
    /// Panics if `shape` is empty.
    pub fn resize_zeroed(&mut self, shape: &[usize]) {
        assert!(!shape.is_empty(), "tensor shape must be non-empty");
        let len = shape.iter().product();
        self.data.clear();
        self.data.resize(len, 0.0);
        self.shape.clear();
        self.shape.extend_from_slice(shape);
    }

    /// Makes this tensor an exact copy of `src` (shape and data), reusing
    /// the existing allocation when capacity allows.
    pub fn copy_from(&mut self, src: &Tensor) {
        self.shape.clear();
        self.shape.extend_from_slice(&src.shape);
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Makes this tensor a `[1, n]` single-sample batch of `values`,
    /// reusing the existing allocation — the in-place twin of
    /// [`Tensor::row`].
    pub fn set_row(&mut self, values: &[f32]) {
        self.shape.clear();
        self.shape.extend_from_slice(&[1, values.len()]);
        self.data.clear();
        self.data.extend_from_slice(values);
    }

    /// Index of the maximum element in batch row `i`.
    ///
    /// Ties resolve to the lowest index. Returns `0` for an empty row.
    pub fn argmax_row(&self, i: usize) -> usize {
        let row = self.row_slice(i);
        let mut best = 0usize;
        for (idx, &v) in row.iter().enumerate().skip(1) {
            if v > row[best] {
                best = idx;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_right_shape_and_len() {
        let t = Tensor::zeros(&[3, 4]);
        assert_eq!(t.shape(), &[3, 4]);
        assert_eq!(t.len(), 12);
        assert!(t.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zeros_rejects_empty_shape() {
        let _ = Tensor::zeros(&[]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_checks_len() {
        let _ = Tensor::from_vec(&[2, 2], vec![1.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let id = Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        assert_eq!(a.matmul(&id), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0]]);
        let b = Tensor::from_rows(&[&[1.0], &[10.0], &[100.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[1, 1]);
        assert_eq!(c.data()[0], 321.0);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), &[3, 2]);
    }

    #[test]
    fn add_sub_scale_map() {
        let a = Tensor::row(&[1.0, 2.0]);
        let b = Tensor::row(&[3.0, 4.0]);
        assert_eq!(a.add(&b).data(), &[4.0, 6.0]);
        assert_eq!(b.sub(&a).data(), &[2.0, 2.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0]);
        assert_eq!(a.map(|x| x * x).data(), &[1.0, 4.0]);
    }

    #[test]
    fn argmax_row_picks_maximum() {
        let t = Tensor::from_rows(&[&[0.1, 0.9, 0.3], &[5.0, 1.0, 2.0]]);
        assert_eq!(t.argmax_row(0), 1);
        assert_eq!(t.argmax_row(1), 0);
    }

    #[test]
    fn row_slice_views_batches() {
        let t = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(t.row_slice(1), &[3.0, 4.0]);
        assert_eq!(t.batch(), 2);
        assert_eq!(t.row_len(), 2);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(&[2, 3], (0..6).map(|x| x as f32).collect());
        let r = t.reshape(&[3, 2]);
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.data(), t.data());
    }

    #[test]
    fn debug_is_never_empty() {
        let s = format!("{:?}", Tensor::zeros(&[1, 1]));
        assert!(s.contains("Tensor"));
    }

    #[test]
    fn resize_zeroed_matches_zeros_and_reuses_capacity() {
        let mut t = Tensor::from_vec(&[2, 3], vec![1.0; 6]);
        let cap_ptr = t.data().as_ptr();
        t.resize_zeroed(&[1, 4]);
        assert_eq!(t, Tensor::zeros(&[1, 4]));
        assert_eq!(t.data().as_ptr(), cap_ptr, "shrinking reuses the buffer");
        t.resize_zeroed(&[3, 3]);
        assert_eq!(t, Tensor::zeros(&[3, 3]));
    }

    #[test]
    fn copy_from_and_set_row_overwrite_in_place() {
        let src = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut dst = Tensor::default();
        dst.copy_from(&src);
        assert_eq!(dst, src);
        dst.set_row(&[9.0, 8.0, 7.0]);
        assert_eq!(dst, Tensor::row(&[9.0, 8.0, 7.0]));
    }
}
