//! Dropout regularization layer.

use crate::layer::{Layer, LayerSpec};
use crate::tensor::Tensor;

/// Inverted dropout: during training each activation is zeroed with
/// probability `p` and survivors are scaled by `1/(1-p)`; during
/// deployment (TS mode) the layer is the identity.
///
/// This is the one layer whose behaviour differs between the paper's TR and
/// TS modes, exercising the `train` flag of [`Layer::forward`].
#[derive(Debug)]
pub struct Dropout {
    p: f32,
    /// Deterministic mask source (xorshift), so training runs are
    /// reproducible under a fixed seed.
    state: u64,
    mask: Option<Vec<f32>>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1)`.
    pub fn new(p: f32) -> Self {
        assert!((0.0..1.0).contains(&p), "drop probability must be in [0,1)");
        Dropout {
            p,
            state: 0x9e37_79b9_7f4a_7c15,
            mask: None,
        }
    }

    /// Overrides the mask-generator seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.state = seed | 1;
        self
    }

    fn next_f32(&mut self) -> f32 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        ((x.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 40) as f32) / (1u32 << 24) as f32
    }
}

impl Layer for Dropout {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if !train || self.p == 0.0 {
            self.mask = None;
            return input.clone();
        }
        let keep = 1.0 - self.p;
        let mask: Vec<f32> = (0..input.len())
            .map(|_| {
                if self.next_f32() < self.p {
                    0.0
                } else {
                    1.0 / keep
                }
            })
            .collect();
        let data = input
            .data()
            .iter()
            .zip(&mask)
            .map(|(&x, &m)| x * m)
            .collect();
        self.mask = Some(mask);
        Tensor::from_vec(input.shape(), data)
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        // Inverted dropout is the identity in deployment mode.
        input.clone()
    }

    fn infer_into(&self, input: &Tensor, out: &mut Tensor) {
        out.copy_from(input);
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        match &self.mask {
            Some(mask) => {
                let data = grad_out
                    .data()
                    .iter()
                    .zip(mask)
                    .map(|(&g, &m)| g * m)
                    .collect();
                Tensor::from_vec(grad_out.shape(), data)
            }
            None => grad_out.clone(),
        }
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec::Dropout { p: self.p }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_in_test_mode() {
        let mut layer = Dropout::new(0.5);
        let x = Tensor::row(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(layer.forward(&x, false), x);
    }

    #[test]
    fn drops_and_rescales_in_train_mode() {
        let mut layer = Dropout::new(0.5).with_seed(3);
        let x = Tensor::row(&[1.0; 1000]);
        let y = layer.forward(&x, true);
        let zeros = y.data().iter().filter(|&&v| v == 0.0).count();
        assert!(zeros > 300 && zeros < 700, "zeros {zeros} far from p=0.5");
        for &v in y.data() {
            assert!(
                v == 0.0 || (v - 2.0).abs() < 1e-6,
                "survivors scaled by 1/(1-p)"
            );
        }
        // Expected value preserved approximately.
        let mean = y.sum() / 1000.0;
        assert!((mean - 1.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut layer = Dropout::new(0.5).with_seed(9);
        let x = Tensor::row(&[1.0; 64]);
        let y = layer.forward(&x, true);
        let g = layer.backward(&Tensor::row(&[1.0; 64]));
        for (a, b) in y.data().iter().zip(g.data()) {
            assert_eq!(*a == 0.0, *b == 0.0, "gradient mask matches forward mask");
        }
    }

    #[test]
    fn zero_probability_is_identity_even_training() {
        let mut layer = Dropout::new(0.0);
        let x = Tensor::row(&[5.0, -5.0]);
        assert_eq!(layer.forward(&x, true), x);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_invalid_probability() {
        let _ = Dropout::new(1.0);
    }
}
