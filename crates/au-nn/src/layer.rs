//! The [`Layer`] trait and learnable [`Param`] storage.

use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A learnable parameter: its value, accumulated gradient, and Adam moments.
///
/// Optimizers read `grad` and update `value`; [`Param::zero_grad`] clears the
/// gradient between batches.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Param {
    /// Current parameter values.
    pub value: Tensor,
    /// Gradient accumulated by the most recent backward pass.
    pub grad: Tensor,
    /// Adam first-moment estimate (zero when SGD is used).
    pub m: Tensor,
    /// Adam second-moment estimate (zero when SGD is used).
    pub v: Tensor,
}

impl Param {
    /// Wraps a value tensor with zeroed gradient and moment buffers.
    pub fn new(value: Tensor) -> Self {
        let shape = value.shape().to_vec();
        Param {
            value,
            grad: Tensor::zeros(&shape),
            m: Tensor::zeros(&shape),
            v: Tensor::zeros(&shape),
        }
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        for g in self.grad.data_mut() {
            *g = 0.0;
        }
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

/// A differentiable network layer.
///
/// Layers are stateful: `forward` caches whatever `backward` needs. A network
/// always calls `backward` immediately after the matching `forward` on the
/// same layer, with no interleaving. The `Sync` bound lets a fully trained
/// network serve concurrent inference through [`Layer::infer`], which never
/// touches the training caches.
pub trait Layer: std::fmt::Debug + Send + Sync {
    /// Computes the layer output for `input` (first dimension = batch).
    ///
    /// `train` distinguishes the paper's TR mode from TS mode for layers that
    /// behave differently during training.
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor;

    /// Pure deployment-mode forward pass: the same math as
    /// `forward(input, false)` but through `&self`, so a shared model can
    /// serve many threads at once. Must not touch any backward-pass cache.
    fn infer(&self, input: &Tensor) -> Tensor;

    /// [`Layer::infer`] writing into a caller-owned scratch tensor instead
    /// of allocating the output — the building block of the allocation-free
    /// serving path ([`crate::Network::infer_reusing`]).
    ///
    /// `out` is reshaped (any prior shape/contents are discarded; its
    /// allocation is reused). Implementations must produce **bit-identical
    /// values** to [`Layer::infer`]: same operations, same per-element
    /// accumulation order, only the destination buffer differs.
    fn infer_into(&self, input: &Tensor, out: &mut Tensor) {
        *out = self.infer(input);
    }

    /// Propagates `grad_out` (∂loss/∂output) to ∂loss/∂input, accumulating
    /// parameter gradients along the way.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called before `forward`.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// The layer's learnable parameters, if any.
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Output feature count given the input feature count, used by
    /// [`crate::NetworkBuilder`] for shape inference. `None` means the layer
    /// preserves the element count (e.g. activations).
    fn out_features(&self) -> Option<usize> {
        None
    }

    /// A serializable description of this layer (architecture + weights).
    fn spec(&self) -> LayerSpec;

    /// Drops any derived view of the layer's weights (e.g. the cached
    /// transpose [`crate::Dense`] keeps for its backward pass).
    ///
    /// Must be called after every mutation of parameter *values* that does
    /// not go through the layer itself: optimizer steps, weight copies,
    /// checkpoint restores, and direct [`Layer::params_mut`] writes. The
    /// default is a no-op for layers with no derived state.
    fn invalidate_cached_weights(&mut self) {}
}

/// Serializable layer description used for model persistence.
///
/// The paper's `loadModel` (Fig. 8, rule CONFIG-TEST) must reconstruct a
/// trained model in a fresh process; `LayerSpec` is the on-disk form.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum LayerSpec {
    /// Fully connected layer.
    Dense {
        /// Input feature count.
        in_features: usize,
        /// Output feature count.
        out_features: usize,
        /// Weight matrix `[in, out]`.
        weight: Tensor,
        /// Bias vector `[1, out]`.
        bias: Tensor,
    },
    /// Element-wise activation.
    Activation {
        /// Activation kind name (`"relu"`, `"sigmoid"`, `"tanh"`, `"linear"`).
        kind: String,
    },
    /// 2-D convolution.
    Conv2d {
        /// Input channels.
        in_channels: usize,
        /// Output channels.
        out_channels: usize,
        /// Square kernel size.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Input height.
        in_h: usize,
        /// Input width.
        in_w: usize,
        /// Kernel weights `[out_c, in_c * k * k]`.
        weight: Tensor,
        /// Bias `[1, out_c]`.
        bias: Tensor,
    },
    /// 2-D max pooling.
    MaxPool2d {
        /// Channels.
        channels: usize,
        /// Window size (also the stride).
        window: usize,
        /// Input height.
        in_h: usize,
        /// Input width.
        in_w: usize,
    },
    /// Flatten to `[batch, n]`.
    Flatten {
        /// Flattened feature count.
        features: usize,
    },
    /// Inverted dropout.
    Dropout {
        /// Drop probability.
        p: f32,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_new_zeroes_buffers() {
        let p = Param::new(Tensor::row(&[1.0, 2.0]));
        assert_eq!(p.grad.data(), &[0.0, 0.0]);
        assert_eq!(p.m.data(), &[0.0, 0.0]);
        assert_eq!(p.v.data(), &[0.0, 0.0]);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::new(Tensor::row(&[1.0]));
        p.grad.data_mut()[0] = 5.0;
        p.zero_grad();
        assert_eq!(p.grad.data(), &[0.0]);
    }
}
