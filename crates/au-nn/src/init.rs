//! Weight initialization.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};

static INIT_SEED: AtomicU64 = AtomicU64::new(0x5eed_0001);

/// Sets the global seed used for subsequent weight initialization.
///
/// The Autonomizer experiments need reproducible training runs; every layer
/// created after this call draws its weights from a generator seeded from
/// `seed` (each draw advances the state so distinct layers differ).
pub fn set_init_seed(seed: u64) {
    INIT_SEED.store(seed, Ordering::SeqCst);
}

fn next_rng() -> StdRng {
    // fetch_add gives every layer its own deterministic stream.
    let s = INIT_SEED.fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::SeqCst);
    StdRng::seed_from_u64(s)
}

/// Xavier/Glorot uniform initialization for a `[fan_in, fan_out]` matrix.
pub fn xavier(fan_in: usize, fan_out: usize, shape: &[usize]) -> Tensor {
    let mut rng = next_rng();
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    let len: usize = shape.iter().product();
    let data = (0..len).map(|_| rng.gen_range(-limit..limit)).collect();
    Tensor::from_vec(shape, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_within_limit() {
        let t = xavier(100, 100, &[100, 100]);
        let limit = (6.0f32 / 200.0).sqrt();
        assert!(t.data().iter().all(|&x| x.abs() <= limit));
    }

    #[test]
    fn seeded_init_is_reproducible() {
        set_init_seed(42);
        let a = xavier(4, 4, &[4, 4]);
        set_init_seed(42);
        let b = xavier(4, 4, &[4, 4]);
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_layers_get_distinct_weights() {
        set_init_seed(7);
        let a = xavier(4, 4, &[4, 4]);
        let b = xavier(4, 4, &[4, 4]);
        assert_ne!(a, b);
    }
}
