//! Numerical gradient checking for network correctness tests.

use crate::loss::Loss;
use crate::network::Network;
use crate::tensor::Tensor;

/// Result of a gradient check: the worst relative error observed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradCheckReport {
    /// Maximum relative error between analytic and numerical gradients.
    pub max_relative_error: f32,
    /// Number of parameters checked.
    pub checked: usize,
}

impl GradCheckReport {
    /// Whether the analytic gradients agree with finite differences to
    /// within `tol`.
    pub fn passes(&self, tol: f32) -> bool {
        self.max_relative_error <= tol
    }
}

/// Compares the network's backpropagated gradients against central finite
/// differences of the loss, parameter by parameter.
///
/// Only the first `max_params` scalars of each parameter tensor are probed to
/// keep the check fast on large layers.
pub fn check_gradients(
    net: &mut Network,
    input: &Tensor,
    target: &Tensor,
    loss: Loss,
    max_params: usize,
) -> GradCheckReport {
    // Analytic pass: forward + backward without any optimizer update.
    let output = {
        let mut x = input.clone();
        for layer in net.layers_mut().iter_mut() {
            x = layer.forward(&x, true);
        }
        x
    };
    let mut grad = loss.gradient(&output, target);
    for layer in net.layers_mut().iter_mut().rev() {
        grad = layer.backward(&grad);
    }
    // Collect analytic gradients, then probe numerically.
    let mut max_err = 0.0f32;
    let mut checked = 0usize;
    let eps = 1e-2f32;
    let layer_count = net.layers_mut().len();
    for li in 0..layer_count {
        let param_count = net.layers_mut()[li].params_mut().len();
        for pi in 0..param_count {
            let len = {
                let params = net.layers_mut()[li].params_mut();
                params[pi].len().min(max_params)
            };
            for i in 0..len {
                let analytic = {
                    let params = net.layers_mut()[li].params_mut();
                    params[pi].grad.data()[i]
                };
                let orig = {
                    let params = net.layers_mut()[li].params_mut();
                    params[pi].value.data()[i]
                };
                let eval = |net: &mut Network, v: f32| {
                    {
                        let mut params = net.layers_mut()[li].params_mut();
                        params[pi].value.data_mut()[i] = v;
                    }
                    let mut x = input.clone();
                    for layer in net.layers_mut().iter_mut() {
                        x = layer.forward(&x, true);
                    }
                    loss.value(&x, target)
                };
                let plus = eval(net, orig + eps);
                let minus = eval(net, orig - eps);
                {
                    let mut params = net.layers_mut()[li].params_mut();
                    params[pi].value.data_mut()[i] = orig;
                }
                let numeric = (plus - minus) / (2.0 * eps);
                let denom = analytic.abs().max(numeric.abs()).max(1e-4);
                let err = (analytic - numeric).abs() / denom;
                if err > max_err {
                    max_err = err;
                }
                checked += 1;
            }
        }
    }
    // Clear gradients so the check leaves the network clean, and drop any
    // cached weight views: the probe loop wrote parameter values directly.
    for layer in net.layers_mut().iter_mut() {
        for param in layer.params_mut() {
            param.zero_grad();
        }
        layer.invalidate_cached_weights();
    }
    GradCheckReport {
        max_relative_error: max_err,
        checked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;

    #[test]
    fn dense_network_gradients_match_finite_differences() {
        crate::init::set_init_seed(9);
        let mut net = Network::builder(3)
            .dense(4)
            .activation(Activation::Tanh)
            .dense(2)
            .build();
        let x = Tensor::from_rows(&[&[0.3, -0.5, 0.7], &[0.1, 0.2, -0.9]]);
        let y = Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let report = check_gradients(&mut net, &x, &y, Loss::Mse, 50);
        assert!(report.checked > 0);
        assert!(
            report.passes(0.05),
            "max relative error {}",
            report.max_relative_error
        );
    }

    #[test]
    fn conv_network_gradients_match_finite_differences() {
        crate::init::set_init_seed(10);
        let mut net = Network::builder(16)
            .conv2d(1, 4, 4, 2, 2, 1)
            .activation(Activation::Tanh)
            .flatten()
            .dense(2)
            .build();
        let x = Tensor::from_rows(&[&[
            0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, -0.1, -0.2, -0.3, -0.4, -0.5, -0.6, -0.7, -0.8,
        ]]);
        let y = Tensor::from_rows(&[&[0.5, -0.5]]);
        let report = check_gradients(&mut net, &x, &y, Loss::Mse, 30);
        assert!(
            report.passes(0.05),
            "max relative error {}",
            report.max_relative_error
        );
    }

    #[test]
    fn cross_entropy_gradients_match() {
        crate::init::set_init_seed(12);
        let mut net = Network::builder(2).dense(3).build();
        let x = Tensor::row(&[1.0, -1.0]);
        let y = Tensor::row(&[0.0, 1.0, 0.0]);
        let report = check_gradients(&mut net, &x, &y, Loss::SoftmaxCrossEntropy, 20);
        assert!(
            report.passes(0.05),
            "max relative error {}",
            report.max_relative_error
        );
    }
}
