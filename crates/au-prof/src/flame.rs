//! Self-contained SVG flamegraph rendering of a [`Profile`].
//!
//! Icicle layout (roots on top, callees below), widths proportional to
//! clamped exclusive+descendant time, hover details via `<title>` — no
//! JavaScript, no external assets, byte-identical for a given profile.

use crate::Profile;
use std::collections::BTreeMap;
use std::fmt::Write as _;

const WIDTH: f64 = 1200.0;
const ROW: f64 = 17.0;
const BOX_H: f64 = 16.0;
const HEADER: f64 = 28.0;
/// Boxes narrower than this many pixels are culled (invisible anyway).
const MIN_W: f64 = 0.3;
/// Approximate glyph advance of the 11px monospace label font.
const CHAR_W: f64 = 6.6;

#[derive(Default)]
struct Node {
    self_ns: u64,
    total_ns: u64,
    children: BTreeMap<String, Node>,
}

impl Node {
    fn insert(&mut self, path: &str, self_ns: u64) {
        let mut node = self;
        for seg in path.split(';') {
            node = node.children.entry(seg.to_owned()).or_default();
        }
        node.self_ns += self_ns;
    }

    fn compute_totals(&mut self) -> u64 {
        let kids: u64 = self.children.values_mut().map(Node::compute_totals).sum();
        self.total_ns = self.self_ns + kids;
        self.total_ns
    }

    fn depth(&self) -> usize {
        1 + self.children.values().map(Node::depth).max().unwrap_or(0)
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

/// Warm flamegraph palette, deterministic per name (FNV-1a).
fn color(name: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let r = 205 + (h % 50);
    let g = 60 + ((h >> 8) % 120);
    let b = (h >> 16) % 50;
    format!("rgb({r},{g},{b})")
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn emit_box(out: &mut String, name: &str, node: &Node, x: f64, depth: usize, grand_total: u64) {
    let w = node.total_ns as f64 / grand_total as f64 * WIDTH;
    if w < MIN_W {
        return;
    }
    let y = HEADER + depth as f64 * ROW;
    let pct = node.total_ns as f64 / grand_total as f64 * 100.0;
    let title = format!(
        "{} — {} total ({:.2}%), {} self",
        escape(name),
        fmt_ns(node.total_ns),
        pct,
        fmt_ns(node.self_ns),
    );
    let _ = write!(
        out,
        "<g><title>{title}</title>\
         <rect x=\"{x:.2}\" y=\"{y:.1}\" width=\"{w:.2}\" height=\"{BOX_H}\" \
         fill=\"{}\" rx=\"1\"/>",
        color(name)
    );
    let max_chars = ((w - 6.0) / CHAR_W) as usize;
    if max_chars >= 3 {
        let label = if name.chars().count() > max_chars {
            let cut: String = name.chars().take(max_chars.saturating_sub(2)).collect();
            format!("{cut}..")
        } else {
            name.to_owned()
        };
        let _ = write!(
            out,
            "<text x=\"{:.2}\" y=\"{:.1}\" class=\"f\">{}</text>",
            x + 3.0,
            y + 12.0,
            escape(&label)
        );
    }
    out.push_str("</g>\n");
    let mut cx = x;
    for (cname, child) in &node.children {
        emit_box(out, cname, child, cx, depth + 1, grand_total);
        cx += child.total_ns as f64 / grand_total as f64 * WIDTH;
    }
}

pub(crate) fn render(profile: &Profile) -> String {
    let mut root = Node::default();
    for (path, stat) in profile.stacks() {
        root.insert(path, u64::try_from(stat.exclusive_ns.max(0)).unwrap_or(0));
    }
    root.compute_totals();

    let depth = root.depth().saturating_sub(1).max(1);
    let height = HEADER + depth as f64 * ROW + 8.0;
    let mut out = String::with_capacity(4096);
    let _ = write!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{WIDTH}\" \
         height=\"{height}\" viewBox=\"0 0 {WIDTH} {height}\" \
         font-family=\"monospace\">\n\
         <style>text{{font-size:11px;fill:#111}}.h{{font-size:12px;fill:#555}}\
         .f{{pointer-events:none}}rect:hover{{stroke:#000;stroke-width:0.5}}</style>\n"
    );
    let _ = writeln!(
        out,
        "<text x=\"6\" y=\"17\" class=\"h\">au-prof flamegraph — {} traces, {} spans, {} attributed \
         (exclusive time, negatives clamped; widths proportional)</text>",
        profile.traces(),
        profile.spans(),
        fmt_ns(root.total_ns),
    );
    if root.total_ns == 0 {
        let _ = writeln!(
            out,
            "<text x=\"6\" y=\"{:.1}\">no completed traces yet</text>",
            HEADER + 12.0
        );
    } else {
        let mut x = 0.0;
        for (name, child) in &root.children {
            emit_box(&mut out, name, child, x, 0, root.total_ns);
            x += child.total_ns as f64 / root.total_ns as f64 * WIDTH;
        }
    }
    out.push_str("</svg>\n");
    out
}
