//! au-prof: continuous profiling over au-telemetry's causal spans.
//!
//! The recorder already captures every completed span with its
//! `trace_id`/`span_id`/`parent_id` ancestry; this crate folds that stream
//! into the three artifacts a profiler owes its operator:
//!
//! 1. **Self-time attribution** — per-span-name call counts plus
//!    *inclusive* (wall time of the span) and *exclusive* (wall time not
//!    covered by child spans) totals, computed incrementally as traces
//!    complete ([`Profiler::poll`]).
//! 2. **Collapsed stacks** — `root;child;leaf N` lines
//!    ([`Profile::collapsed`]), the interchange format every flamegraph
//!    tool reads.
//! 3. **Flamegraphs** — a self-contained SVG rendering
//!    ([`Profile::flamegraph_svg`]) with hover tooltips, no JavaScript, no
//!    external assets; au-scope serves it at `/flamegraph`.
//!
//! # The self-time model
//!
//! Exclusive time is *signed*: `exclusive = dur − Σ(direct children dur)`.
//! Under au-par fork/join a parent's children run concurrently, so the sum
//! of their wall durations can exceed the parent's own wall duration — the
//! fork point then carries a *negative* exclusive time whose magnitude is
//! the parallelism overlap. Keeping the sign (instead of clamping at zero)
//! makes the accounting telescope exactly: for every completed trace,
//!
//! ```text
//! Σ exclusive(span) over the trace == inclusive(root)   (integer-exact)
//! ```
//!
//! because each non-root span's duration is subtracted from exactly one
//! parent and added back once as its own term. Collapsed stacks and the
//! flamegraph clamp negatives to zero at *render* time (a flame box cannot
//! have negative width), which is why the SVG is a view and the signed
//! table is the ground truth.
//!
//! # Incrementality and ordering
//!
//! Spans are recorded when their guard drops, so a child always lands in
//! the recorder buffer before its parent (scoped fork/join workers join
//! before the forking span closes — see docs/observability.md). The
//! profiler exploits that: spans accumulate per-trace until the trace root
//! (`parent_id == 0`) arrives, at which point the whole tree is folded in
//! one pass and the per-trace buffer is freed. Unclosed traces are bounded
//! by [`MAX_PENDING_SPANS`]; beyond it the largest pending trace is
//! dropped and counted in [`Profile::dropped_spans`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod flame;

use au_telemetry::{Recorder, SpanRecord};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Upper bound on spans buffered for traces whose root has not closed yet.
/// Beyond it the largest pending trace is evicted (and counted as dropped)
/// so a never-closing root cannot grow the profiler without bound.
pub const MAX_PENDING_SPANS: usize = 65_536;

/// How many completed traces [`Profile::recent_traces`] retains.
pub const RECENT_TRACES: usize = 512;

/// Aggregated timing for one span name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NameStat {
    /// Number of completed spans with this name.
    pub calls: u64,
    /// Total wall time, counting only spans with no same-name ancestor so
    /// recursive nests are not double-counted.
    pub inclusive_ns: u64,
    /// Total self time: `Σ (dur − Σ children dur)`. Negative at fork
    /// points whose children overlap in wall time (see crate docs).
    pub exclusive_ns: i64,
    /// Shortest single span of this name.
    pub min_ns: u64,
    /// Longest single span of this name.
    pub max_ns: u64,
}

/// Exclusive-time total for one ancestry path (`root;child;leaf`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StackStat {
    /// Signed exclusive nanoseconds attributed to this exact path.
    pub exclusive_ns: i64,
    /// Completed spans folded into this path.
    pub count: u64,
}

/// Per-trace totals kept for the most recent [`RECENT_TRACES`] traces —
/// the evidence that the telescoping identity holds on live data.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceTotal {
    /// The trace id.
    pub trace_id: u64,
    /// Name of the root span.
    pub root: String,
    /// Wall duration of the root span.
    pub inclusive_ns: u64,
    /// Sum of signed exclusive times over every span in the trace;
    /// always equals `inclusive_ns` (integer-exact).
    pub exclusive_sum_ns: i64,
    /// Spans folded for this trace.
    pub spans: u64,
}

/// The folded aggregate: everything [`Profiler`] has attributed so far.
#[derive(Debug, Default)]
pub struct Profile {
    names: BTreeMap<String, NameStat>,
    stacks: BTreeMap<String, StackStat>,
    recent: VecDeque<TraceTotal>,
    traces: u64,
    spans: u64,
    dropped_spans: u64,
}

impl Profile {
    /// Per-name aggregates, sorted by name.
    pub fn names(&self) -> &BTreeMap<String, NameStat> {
        &self.names
    }

    /// Per-ancestry-path exclusive totals, sorted by path.
    pub fn stacks(&self) -> &BTreeMap<String, StackStat> {
        &self.stacks
    }

    /// The most recent completed traces, oldest first.
    pub fn recent_traces(&self) -> impl Iterator<Item = &TraceTotal> {
        self.recent.iter()
    }

    /// Completed traces folded so far.
    pub fn traces(&self) -> u64 {
        self.traces
    }

    /// Spans folded so far (excludes dropped ones).
    pub fn spans(&self) -> u64 {
        self.spans
    }

    /// Spans discarded because their trace outgrew [`MAX_PENDING_SPANS`]
    /// before its root closed.
    pub fn dropped_spans(&self) -> u64 {
        self.dropped_spans
    }

    /// Collapsed-stack export: one `path count` line per ancestry path in
    /// path order, exclusive time clamped at zero (the interchange format
    /// of `flamegraph.pl` and friends, counts in nanoseconds).
    pub fn collapsed(&self) -> String {
        let mut out = String::new();
        for (path, stat) in &self.stacks {
            out.push_str(path);
            out.push(' ');
            out.push_str(&stat.exclusive_ns.max(0).to_string());
            out.push('\n');
        }
        out
    }

    /// Renders the profile as a self-contained SVG flamegraph (icicle
    /// layout, hover tooltips via `<title>`, no scripts). Deterministic
    /// for a given profile.
    pub fn flamegraph_svg(&self) -> String {
        flame::render(self)
    }

    /// Folds one *complete* trace (root plus all descendants).
    fn fold_trace(&mut self, spans: &[SpanRecord]) {
        let Some(root_pos) = spans.iter().position(|s| s.parent_id == 0) else {
            return;
        };
        let root_id = spans[root_pos].span_id;

        // Direct-children index and per-parent duration sums. A span whose
        // recorded parent is missing from the trace (a non-scoped thread
        // that outlived its parent span) is re-parented under the root so
        // the telescoping identity still holds.
        let mut known: HashMap<u64, usize> = HashMap::with_capacity(spans.len());
        for (i, s) in spans.iter().enumerate() {
            known.insert(s.span_id, i);
        }
        let effective_parent = |s: &SpanRecord| -> u64 {
            if s.parent_id != 0 && !known.contains_key(&s.parent_id) {
                root_id
            } else {
                s.parent_id
            }
        };
        let mut children: HashMap<u64, Vec<usize>> = HashMap::new();
        let mut child_dur: HashMap<u64, u64> = HashMap::new();
        for (i, s) in spans.iter().enumerate() {
            if s.span_id == root_id {
                continue;
            }
            let p = effective_parent(s);
            children.entry(p).or_default().push(i);
            *child_dur.entry(p).or_default() += s.dur_ns;
        }

        // Depth-first walk from the root, maintaining the ancestry path
        // (for stack keys) and a same-name occupancy map (for
        // recursion-safe inclusive totals).
        enum Step {
            Enter(usize),
            Exit(usize),
        }
        let mut agenda = vec![Step::Enter(root_pos)];
        let mut path = String::new();
        let mut path_lens: Vec<usize> = Vec::new();
        let mut on_path: HashMap<String, u32> = HashMap::new();
        let mut exclusive_sum: i64 = 0;
        let mut folded: u64 = 0;

        while let Some(step) = agenda.pop() {
            match step {
                Step::Enter(i) => {
                    let s = &spans[i];
                    let kids = child_dur.get(&s.span_id).copied().unwrap_or(0);
                    let exclusive = s.dur_ns as i64 - kids as i64;
                    exclusive_sum += exclusive;
                    folded += 1;

                    let first_of_name = !on_path.contains_key(&s.name);
                    let stat = self.names.entry(s.name.clone()).or_default();
                    if stat.calls == 0 {
                        stat.min_ns = u64::MAX;
                    }
                    stat.calls += 1;
                    stat.exclusive_ns += exclusive;
                    stat.min_ns = stat.min_ns.min(s.dur_ns);
                    stat.max_ns = stat.max_ns.max(s.dur_ns);
                    if first_of_name {
                        stat.inclusive_ns += s.dur_ns;
                    }

                    path_lens.push(path.len());
                    if !path.is_empty() {
                        path.push(';');
                    }
                    path.push_str(&s.name);
                    *on_path.entry(s.name.clone()).or_insert(0) += 1;
                    let sstat = self.stacks.entry(path.clone()).or_default();
                    sstat.exclusive_ns += exclusive;
                    sstat.count += 1;

                    agenda.push(Step::Exit(i));
                    if let Some(kids) = children.get(&s.span_id) {
                        // Reverse so arrival order is preserved on the
                        // LIFO agenda (cosmetic: stack keys are sorted
                        // anyway, but recent-trace walks stay intuitive).
                        for &c in kids.iter().rev() {
                            agenda.push(Step::Enter(c));
                        }
                    }
                }
                Step::Exit(i) => {
                    let s = &spans[i];
                    path.truncate(path_lens.pop().unwrap_or(0));
                    if let Some(n) = on_path.get_mut(&s.name) {
                        *n -= 1;
                        if *n == 0 {
                            on_path.remove(&s.name);
                        }
                    }
                }
            }
        }

        self.traces += 1;
        self.spans += folded;
        self.recent.push_back(TraceTotal {
            trace_id: spans[root_pos].trace_id,
            root: spans[root_pos].name.clone(),
            inclusive_ns: spans[root_pos].dur_ns,
            exclusive_sum_ns: exclusive_sum,
            spans: folded,
        });
        while self.recent.len() > RECENT_TRACES {
            self.recent.pop_front();
        }
    }
}

/// Incremental folder over a [`Recorder`]'s span stream.
///
/// Call [`Profiler::poll`] whenever fresh attribution is wanted (au-scope
/// does so on each `/profile.json` or `/flamegraph` request); between
/// polls the profiler holds no locks and costs nothing — the hot path
/// never knows it exists.
#[derive(Debug, Default)]
pub struct Profiler {
    epoch: u64,
    span_off: usize,
    pending: HashMap<u64, Vec<SpanRecord>>,
    pending_count: usize,
    profile: Profile,
}

impl Profiler {
    /// A fresh profiler with an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// The aggregate folded so far.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// Spans currently buffered for traces whose root has not closed.
    pub fn pending_spans(&self) -> usize {
        self.pending_count
    }

    /// Drains every span recorded since the previous poll and folds all
    /// traces that completed. Returns the number of spans consumed.
    ///
    /// A [`Recorder::reset`] between polls (detected via
    /// [`Recorder::reset_epoch`]) discards the profile and pending state —
    /// offsets from before the reset no longer address the same stream.
    pub fn poll(&mut self, rec: &Recorder) -> usize {
        let epoch = rec.reset_epoch();
        if epoch != self.epoch {
            self.epoch = epoch;
            self.span_off = 0;
            self.pending.clear();
            self.pending_count = 0;
            self.profile = Profile::default();
        }
        let from = self.span_off;
        let consumed = rec.tap_spans_since(from, |spans| {
            for s in spans {
                self.ingest(s);
            }
            spans.len()
        });
        self.span_off += consumed;
        consumed
    }

    /// Feeds one completed span in recording order. Exposed for tests and
    /// offline folding of exported span dumps; [`Profiler::poll`] is the
    /// live path.
    pub fn ingest(&mut self, s: &SpanRecord) {
        let trace = s.trace_id;
        let is_root = s.parent_id == 0;
        self.pending.entry(trace).or_default().push(s.clone());
        self.pending_count += 1;
        if is_root {
            if let Some(spans) = self.pending.remove(&trace) {
                self.pending_count -= spans.len();
                self.profile.fold_trace(&spans);
            }
        } else if self.pending_count > MAX_PENDING_SPANS {
            self.evict_largest_pending();
        }
    }

    /// Drops the largest pending trace (ties broken by trace id, so
    /// eviction is deterministic) and counts its spans as dropped.
    fn evict_largest_pending(&mut self) {
        let victim = self
            .pending
            .iter()
            .max_by_key(|(id, spans)| (spans.len(), **id))
            .map(|(id, _)| *id);
        if let Some(id) = victim {
            if let Some(spans) = self.pending.remove(&id) {
                self.pending_count -= spans.len();
                self.profile.dropped_spans += spans.len() as u64;
            }
        }
    }
}

/// One-shot fold of an already-collected span list (e.g. a JSONL export):
/// equivalent to feeding every span through [`Profiler::ingest`] and
/// taking the profile. Traces without a closed root are ignored.
pub fn profile_spans<'a>(spans: impl IntoIterator<Item = &'a SpanRecord>) -> Profile {
    let mut p = Profiler::new();
    for s in spans {
        p.ingest(s);
    }
    p.profile
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, dur_ns: u64, trace_id: u64, span_id: u64, parent_id: u64) -> SpanRecord {
        SpanRecord {
            name: name.to_owned(),
            args: Vec::new(),
            start_ns: 0,
            dur_ns,
            tid: 1,
            depth: 0,
            trace_id,
            span_id,
            parent_id,
        }
    }

    /// root(100) -> a(60) -> b(10); a also has sibling leaf c(25).
    /// Children close before parents, so recording order is leaf-first.
    fn linear_trace() -> Vec<SpanRecord> {
        vec![
            span("b", 10, 1, 3, 2),
            span("a", 60, 1, 2, 1),
            span("c", 25, 1, 4, 1),
            span("root", 100, 1, 1, 0),
        ]
    }

    #[test]
    fn exclusive_times_telescope_to_root_inclusive() {
        let p = profile_spans(&linear_trace());
        assert_eq!(p.traces(), 1);
        assert_eq!(p.spans(), 4);
        let t = p.recent_traces().next().expect("one trace");
        assert_eq!(t.root, "root");
        assert_eq!(t.inclusive_ns, 100);
        assert_eq!(t.exclusive_sum_ns, 100);
        // root self = 100 - (60 + 25) = 15; a = 60 - 10 = 50.
        assert_eq!(p.names()["root"].exclusive_ns, 15);
        assert_eq!(p.names()["a"].exclusive_ns, 50);
        assert_eq!(p.names()["b"].exclusive_ns, 10);
        assert_eq!(p.names()["c"].exclusive_ns, 25);
        assert_eq!(p.names()["a"].inclusive_ns, 60);
        assert_eq!(p.names()["root"].inclusive_ns, 100);
    }

    #[test]
    fn parallel_overlap_goes_negative_but_identity_holds() {
        // fork(50) with 4 workers of 30ns each: children sum to 120 > 50.
        let spans = vec![
            span("w", 30, 7, 12, 11),
            span("w", 30, 7, 13, 11),
            span("w", 30, 7, 14, 11),
            span("w", 30, 7, 15, 11),
            span("fork", 50, 7, 11, 0),
        ];
        let p = profile_spans(&spans);
        assert_eq!(p.names()["fork"].exclusive_ns, 50 - 120);
        assert_eq!(p.names()["w"].exclusive_ns, 120);
        let t = p.recent_traces().next().unwrap();
        assert_eq!(t.exclusive_sum_ns, t.inclusive_ns as i64);
        // Clamped at render: the fork contributes a zero-width box, not a
        // negative one.
        assert!(p.collapsed().contains("fork 0\n"), "{}", p.collapsed());
        assert!(p.collapsed().contains("fork;w 120\n"), "{}", p.collapsed());
    }

    #[test]
    fn recursion_counts_inclusive_once() {
        // r(100) -> r(60) -> r(20): one logical call tree of name "r".
        let spans = vec![
            span("r", 20, 3, 33, 32),
            span("r", 60, 3, 32, 31),
            span("r", 100, 3, 31, 0),
        ];
        let p = profile_spans(&spans);
        let r = &p.names()["r"];
        assert_eq!(r.calls, 3);
        assert_eq!(r.inclusive_ns, 100, "outermost frame only");
        assert_eq!(r.exclusive_ns, 100);
        assert_eq!(p.stacks()["r;r;r"].exclusive_ns, 20);
    }

    #[test]
    fn orphan_parents_reattach_under_root() {
        // Span 99's parent 42 never closed in this trace; it must fold
        // under the root rather than vanish, keeping the identity exact.
        let spans = vec![span("stray", 10, 5, 99, 42), span("root", 30, 5, 50, 0)];
        let p = profile_spans(&spans);
        let t = p.recent_traces().next().unwrap();
        assert_eq!(t.spans, 2);
        assert_eq!(t.exclusive_sum_ns, 30);
        assert_eq!(p.stacks()["root;stray"].count, 1);
    }

    #[test]
    fn incremental_poll_matches_one_shot() {
        let rec = Recorder::new();
        rec.enable();
        {
            let _root = rec.span("outer");
            let _inner = rec.span("inner");
        }
        {
            let _root = rec.span("outer");
        }
        let mut prof = Profiler::new();
        // Poll twice; the second poll must consume nothing new.
        let first = prof.poll(&rec);
        assert_eq!(first, 3);
        assert_eq!(prof.poll(&rec), 0);
        assert_eq!(prof.profile().traces(), 2);
        let one_shot = profile_spans(rec.spans().iter());
        assert_eq!(prof.profile().names(), one_shot.names());
        assert_eq!(prof.profile().stacks(), one_shot.stacks());
        for t in prof.profile().recent_traces() {
            assert_eq!(t.exclusive_sum_ns, t.inclusive_ns as i64, "{t:?}");
        }
    }

    #[test]
    fn recorder_reset_discards_stale_offsets() {
        let rec = Recorder::new();
        rec.enable();
        {
            let _s = rec.span("before");
        }
        let mut prof = Profiler::new();
        prof.poll(&rec);
        assert_eq!(prof.profile().traces(), 1);
        rec.reset();
        {
            let _s = rec.span("after");
        }
        prof.poll(&rec);
        assert_eq!(prof.profile().traces(), 1, "profile restarted at reset");
        assert!(prof.profile().names().contains_key("after"));
        assert!(!prof.profile().names().contains_key("before"));
    }

    #[test]
    fn pending_overflow_evicts_and_counts_drops() {
        let mut prof = Profiler::new();
        // One giant trace that never closes its root...
        for i in 0..MAX_PENDING_SPANS {
            prof.ingest(&span("leak", 1, 1, 10 + i as u64, 2));
        }
        // ...plus one more span from a small healthy trace tips it over.
        prof.ingest(&span("ok_child", 1, 2, 1_000_000, 1_000_001));
        assert!(prof.pending_spans() <= MAX_PENDING_SPANS);
        assert_eq!(prof.profile().dropped_spans(), MAX_PENDING_SPANS as u64);
        // The healthy trace still completes.
        prof.ingest(&span("ok_root", 2, 2, 1_000_001, 0));
        assert_eq!(prof.profile().traces(), 1);
        assert_eq!(prof.profile().names()["ok_root"].calls, 1);
    }

    #[test]
    fn collapsed_lines_are_sorted_and_parseable() {
        let p = profile_spans(&linear_trace());
        let collapsed = p.collapsed();
        let lines: Vec<&str> = collapsed.lines().collect();
        assert_eq!(
            lines,
            vec!["root 15", "root;a 50", "root;a;b 10", "root;c 25"]
        );
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted);
    }

    #[test]
    fn flamegraph_svg_is_self_contained() {
        let p = profile_spans(&linear_trace());
        let svg = p.flamegraph_svg();
        assert!(svg.starts_with("<svg"), "{}", &svg[..60.min(svg.len())]);
        assert!(svg.ends_with("</svg>\n"));
        for name in ["root", "a", "b", "c"] {
            assert!(svg.contains(&format!("<title>{name}")), "missing {name}");
        }
        assert!(!svg.contains("<script"), "no scripts in the SVG");
        // Deterministic render.
        assert_eq!(svg, p.flamegraph_svg());
    }

    #[test]
    fn empty_profile_renders() {
        let p = Profile::default();
        assert_eq!(p.collapsed(), "");
        let svg = p.flamegraph_svg();
        assert!(svg.starts_with("<svg"));
    }
}
