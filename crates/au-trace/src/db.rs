//! The analysis database: dependence graph + traces + usage map.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::Arc;

/// An interned program variable.
///
/// Produced by [`AnalysisDb::var`]; stable for the lifetime of the database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// The raw index (useful for dense side tables).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Dynamic-analysis facts recorded while an instrumented program runs.
///
/// This is the Rust substitute for the paper's Valgrind tooling: it stores
/// the dynamic dependence graph `GDep`, per-variable runtime value traces,
/// the `UseFunc` map (variable → functions in which it is used), and the
/// input (`In`) and target (`Trg`) variable sets consumed by Algorithms 1–2.
///
/// The facts live behind an `Arc` with copy-on-write mutation
/// (`Arc::make_mut`): [`AnalysisDb::snapshot`] / `clone()` are O(1) and
/// share storage, which lets the extraction algorithms hand owned handles
/// to persistent-pool workers without deep-copying traces. A later
/// `record_*` on a still-shared database transparently unshares it first.
#[derive(Debug, Clone, Default)]
pub struct AnalysisDb {
    core: Arc<DbCore>,
}

#[derive(Debug, Clone, Default)]
struct DbCore {
    names: Vec<String>,
    index: HashMap<String, VarId>,
    /// `forward[a]` = variables with a direct dependence edge `a → b`
    /// (i.e. `b` is computed from `a`; `b` is a *dependent* of `a`).
    forward: Vec<BTreeSet<VarId>>,
    traces: Vec<Vec<f64>>,
    use_funcs: Vec<BTreeSet<String>>,
    inputs: BTreeSet<VarId>,
    targets: BTreeSet<VarId>,
}

impl AnalysisDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        AnalysisDb::default()
    }

    /// An O(1) copy-on-write handle to the same facts: reads see identical
    /// data; a write to either side unshares first. This is what the
    /// pooled extraction loops move into their `'static` worker closures.
    pub fn snapshot(&self) -> AnalysisDb {
        AnalysisDb {
            core: Arc::clone(&self.core),
        }
    }

    /// The copy-on-write mutation point: unshares the core if any
    /// snapshot is still alive, then hands out the unique reference.
    fn core_mut(&mut self) -> &mut DbCore {
        Arc::make_mut(&mut self.core)
    }

    /// Interns `name`, returning its stable id.
    pub fn var(&mut self, name: &str) -> VarId {
        let core = self.core_mut();
        if let Some(&id) = core.index.get(name) {
            return id;
        }
        let id = VarId(core.names.len());
        core.names.push(name.to_owned());
        core.index.insert(name.to_owned(), id);
        core.forward.push(BTreeSet::new());
        core.traces.push(Vec::new());
        core.use_funcs.push(BTreeSet::new());
        id
    }

    /// Looks up an already-interned variable.
    pub fn id(&self, name: &str) -> Option<VarId> {
        self.core.index.get(name).copied()
    }

    /// The variable's source name.
    ///
    /// # Panics
    ///
    /// Panics if `id` came from a different database.
    pub fn name(&self, id: VarId) -> &str {
        &self.core.names[id.0]
    }

    /// Number of distinct variables recorded.
    pub fn var_count(&self) -> usize {
        self.core.names.len()
    }

    /// All variables, in interning order — the paper's `ProgVar` set.
    pub fn all_vars(&self) -> impl Iterator<Item = VarId> + '_ {
        (0..self.core.names.len()).map(VarId)
    }

    /// Records a dynamic assignment `dst := f(srcs…)` executed inside
    /// function `func`, optionally observing the assigned numeric `value`.
    ///
    /// Adds dependence edges `src → dst`, appends `value` to `dst`'s runtime
    /// trace, and marks every involved variable as used in `func`.
    pub fn record_assign(&mut self, dst: &str, srcs: &[&str], value: Option<f64>, func: &str) {
        t_count!("au_trace.records");
        let d = self.var(dst);
        let src_ids: Vec<VarId> = srcs.iter().map(|src| self.var(src)).collect();
        let core = self.core_mut();
        for s in src_ids {
            if s != d {
                core.forward[s.0].insert(d);
            }
            core.use_funcs[s.0].insert(func.to_owned());
        }
        if let Some(v) = value {
            core.traces[d.0].push(v);
        }
        core.use_funcs[d.0].insert(func.to_owned());
    }

    /// Adds a bare dependence edge `src → dst` without touching traces or
    /// usage maps — used when reloading a persisted graph, where the
    /// original function names are restored separately.
    pub fn record_edge(&mut self, src: &str, dst: &str) {
        let s = self.var(src);
        let d = self.var(dst);
        let core = self.core_mut();
        if s != d {
            core.forward[s.0].insert(d);
        }
    }

    /// Records an observed runtime value for `var` without any new edges
    /// (e.g. loop-carried updates sampled once per iteration).
    pub fn record_value(&mut self, var: &str, value: f64) {
        t_count!("au_trace.records");
        let v = self.var(var);
        self.core_mut().traces[v.0].push(value);
    }

    /// Notes that `var` is used inside `func` without recording dataflow.
    pub fn record_use(&mut self, var: &str, func: &str) {
        let v = self.var(var);
        self.core_mut().use_funcs[v.0].insert(func.to_owned());
    }

    /// Marks a variable as a program input (`In` in Algorithm 1).
    pub fn mark_input(&mut self, name: &str) {
        let v = self.var(name);
        self.core_mut().inputs.insert(v);
    }

    /// Marks a variable as a prediction target (`Trg`).
    pub fn mark_target(&mut self, name: &str) {
        let v = self.var(name);
        self.core_mut().targets.insert(v);
    }

    /// The input variable set.
    pub fn inputs(&self) -> &BTreeSet<VarId> {
        &self.core.inputs
    }

    /// The target variable set.
    pub fn targets(&self) -> &BTreeSet<VarId> {
        &self.core.targets
    }

    /// The recorded runtime trace of `var` (possibly empty).
    pub fn trace(&self, var: VarId) -> &[f64] {
        &self.core.traces[var.0]
    }

    /// Functions in which `var` is used.
    pub fn use_funcs(&self, var: VarId) -> &BTreeSet<String> {
        &self.core.use_funcs[var.0]
    }

    /// Direct dependents of `var` (one dependence edge away).
    pub fn direct_dependents(&self, var: VarId) -> &BTreeSet<VarId> {
        &self.core.forward[var.0]
    }

    /// The paper's `dep(v)`: all variables transitively computed from `v`
    /// (excluding `v` itself unless it is on a dependence cycle).
    pub fn dependents(&self, var: VarId) -> BTreeSet<VarId> {
        let forward = &self.core.forward;
        let mut seen = BTreeSet::new();
        let mut queue: VecDeque<VarId> = forward[var.0].iter().copied().collect();
        while let Some(v) = queue.pop_front() {
            if seen.insert(v) {
                queue.extend(forward[v.0].iter().copied());
            }
        }
        seen
    }

    /// `dep` of a whole set, unioned.
    pub fn dependents_of_set(&self, vars: &BTreeSet<VarId>) -> BTreeSet<VarId> {
        let mut out = BTreeSet::new();
        for &v in vars {
            out.extend(self.dependents(v));
        }
        out
    }

    /// BFS distance (#edges) from `from` to `to` along dependence edges, or
    /// `None` if unreachable. Distance 0 means `from == to`.
    pub fn bfs_distance(&self, from: VarId, to: VarId) -> Option<usize> {
        if from == to {
            return Some(0);
        }
        let mut dist: HashMap<VarId, usize> = HashMap::new();
        let mut queue = VecDeque::new();
        dist.insert(from, 0);
        queue.push_back(from);
        while let Some(v) = queue.pop_front() {
            let d = dist[&v];
            for &next in &self.core.forward[v.0] {
                if next == to {
                    return Some(d + 1);
                }
                if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(next) {
                    e.insert(d + 1);
                    queue.push_back(next);
                }
            }
        }
        None
    }

    /// Renders the dependence graph in Graphviz DOT syntax. Inputs are
    /// drawn as boxes, targets as double circles; every other variable is a
    /// plain ellipse.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("digraph gdep {\n  rankdir=LR;\n");
        for v in self.all_vars() {
            let shape = if self.inputs().contains(&v) {
                "box"
            } else if self.targets().contains(&v) {
                "doublecircle"
            } else {
                "ellipse"
            };
            let _ = writeln!(out, "  \"{}\" [shape={shape}];", self.name(v));
        }
        for v in self.all_vars() {
            for &d in self.direct_dependents(v) {
                let _ = writeln!(out, "  \"{}\" -> \"{}\";", self.name(v), self.name(d));
            }
        }
        out.push_str("}\n");
        out
    }

    /// Shortest BFS distance from `from` to any member of `goals` —
    /// Algorithm 1's "first common descendent found by BFS".
    pub fn bfs_distance_to_set(&self, from: VarId, goals: &BTreeSet<VarId>) -> Option<usize> {
        if goals.contains(&from) {
            return Some(0);
        }
        let mut seen: BTreeSet<VarId> = BTreeSet::new();
        let mut queue = VecDeque::new();
        seen.insert(from);
        queue.push_back((from, 0usize));
        while let Some((v, d)) = queue.pop_front() {
            for &next in &self.core.forward[v.0] {
                if goals.contains(&next) {
                    return Some(d + 1);
                }
                if seen.insert(next) {
                    queue.push_back((next, d + 1));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> AnalysisDb {
        // a -> b -> d ; a -> c -> d
        let mut db = AnalysisDb::new();
        db.record_assign("b", &["a"], None, "f");
        db.record_assign("c", &["a"], None, "f");
        db.record_assign("d", &["b", "c"], None, "g");
        db
    }

    #[test]
    fn interning_is_stable() {
        let mut db = AnalysisDb::new();
        let a1 = db.var("a");
        let a2 = db.var("a");
        assert_eq!(a1, a2);
        assert_eq!(db.name(a1), "a");
        assert_eq!(db.var_count(), 1);
        assert_eq!(db.id("missing"), None);
    }

    #[test]
    fn dependents_are_transitive() {
        let db = diamond();
        let a = db.id("a").unwrap();
        let deps: Vec<&str> = db.dependents(a).iter().map(|&v| db.name(v)).collect();
        assert_eq!(deps, vec!["b", "c", "d"]);
    }

    #[test]
    fn dependents_exclude_self_without_cycle() {
        let db = diamond();
        let a = db.id("a").unwrap();
        assert!(!db.dependents(a).contains(&a));
    }

    #[test]
    fn cycle_includes_self() {
        let mut db = AnalysisDb::new();
        // player.x depends on itself across loop iterations (Fig. 10).
        db.record_assign("x", &["x", "speed"], None, "update");
        let x = db.id("x").unwrap();
        // `x -> x` self edges are skipped, but x -> speed? No: speed -> x.
        let speed = db.id("speed").unwrap();
        assert!(db.dependents(speed).contains(&x));
    }

    #[test]
    fn bfs_distance_shortest_path() {
        let mut db = AnalysisDb::new();
        // a -> b -> c and a -> c directly: distance 1 wins.
        db.record_assign("b", &["a"], None, "f");
        db.record_assign("c", &["b"], None, "f");
        db.record_assign("c", &["a"], None, "f");
        let a = db.id("a").unwrap();
        let c = db.id("c").unwrap();
        assert_eq!(db.bfs_distance(a, c), Some(1));
        assert_eq!(db.bfs_distance(c, a), None, "edges are directed");
        assert_eq!(db.bfs_distance(a, a), Some(0));
    }

    #[test]
    fn bfs_distance_to_set_takes_nearest() {
        let db = diamond();
        let a = db.id("a").unwrap();
        let goals: BTreeSet<VarId> = [db.id("d").unwrap(), db.id("b").unwrap()]
            .into_iter()
            .collect();
        assert_eq!(db.bfs_distance_to_set(a, &goals), Some(1));
    }

    #[test]
    fn traces_and_use_funcs_record() {
        let mut db = AnalysisDb::new();
        db.record_assign("y", &["x"], Some(3.0), "main");
        db.record_value("y", 4.0);
        db.record_use("x", "helper");
        let y = db.id("y").unwrap();
        let x = db.id("x").unwrap();
        assert_eq!(db.trace(y), &[3.0, 4.0]);
        assert!(db.use_funcs(x).contains("main"));
        assert!(db.use_funcs(x).contains("helper"));
        assert!(db.use_funcs(y).contains("main"));
    }

    #[test]
    fn inputs_and_targets_are_sets() {
        let mut db = AnalysisDb::new();
        db.mark_input("img");
        db.mark_input("img");
        db.mark_target("lo");
        assert_eq!(db.inputs().len(), 1);
        assert_eq!(db.targets().len(), 1);
    }

    #[test]
    fn dot_export_names_all_nodes_and_edges() {
        let db = diamond();
        let mut db = db;
        db.mark_input("a");
        db.mark_target("d");
        let dot = db.to_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("\"a\" [shape=box]"), "{dot}");
        assert!(dot.contains("\"d\" [shape=doublecircle]"), "{dot}");
        assert!(dot.contains("\"a\" -> \"b\""));
        assert!(dot.contains("\"c\" -> \"d\""));
    }

    #[test]
    fn dependents_of_set_unions() {
        let db = diamond();
        let set: BTreeSet<VarId> = [db.id("b").unwrap(), db.id("c").unwrap()]
            .into_iter()
            .collect();
        let deps = db.dependents_of_set(&set);
        assert_eq!(deps.len(), 1);
        assert!(deps.contains(&db.id("d").unwrap()));
    }
}
