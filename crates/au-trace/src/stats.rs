//! Trace statistics used by Algorithm 2: min–max scaling, Euclidean
//! distance with zero-padding, and variance.

/// Min–max scales a trace into `[0, 1]` (the paper cites sklearn's
/// `minmax_scale`). A constant trace scales to all zeros.
pub fn min_max_scale(trace: &[f64]) -> Vec<f64> {
    if trace.is_empty() {
        return Vec::new();
    }
    let min = trace.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = trace.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let range = max - min;
    if range == 0.0 {
        return vec![0.0; trace.len()];
    }
    trace.iter().map(|v| (v - min) / range).collect()
}

/// Euclidean distance between two traces; the shorter one is zero-padded,
/// exactly as in the paper's footnote ("If the sequences' lengths are
/// different, we append zeros to the shorter one").
pub fn euclidean_distance(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().max(b.len());
    let mut sum = 0.0;
    for i in 0..n {
        let x = a.get(i).copied().unwrap_or(0.0);
        let y = b.get(i).copied().unwrap_or(0.0);
        sum += (x - y) * (x - y);
    }
    sum.sqrt()
}

/// Summary statistics of one trace: the per-feature distribution snapshot
/// Algorithm 2's pruning reasons over, reused by the `au-monitor` drift
/// detector as a model's persisted training-time feature baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSummary {
    /// Smallest value observed.
    pub min: f64,
    /// Largest value observed.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population variance.
    pub var: f64,
}

impl TraceSummary {
    /// The observed range (`max - min`); zero for constant or empty traces.
    pub fn range(&self) -> f64 {
        self.max - self.min
    }
}

/// Summarizes a trace into min/max/mean/variance. An empty trace summarizes
/// to all zeros.
pub fn summarize(trace: &[f64]) -> TraceSummary {
    if trace.is_empty() {
        return TraceSummary {
            min: 0.0,
            max: 0.0,
            mean: 0.0,
            var: 0.0,
        };
    }
    let min = trace.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = trace.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mean = trace.iter().sum::<f64>() / trace.len() as f64;
    TraceSummary {
        min,
        max,
        mean,
        var: variance(trace),
    }
}

/// Population variance of a trace. Empty traces have zero variance.
pub fn variance(trace: &[f64]) -> f64 {
    if trace.is_empty() {
        return 0.0;
    }
    let mean = trace.iter().sum::<f64>() / trace.len() as f64;
    trace.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / trace.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_maps_extremes() {
        let s = min_max_scale(&[2.0, 4.0, 6.0]);
        assert_eq!(s, vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn scale_constant_trace_is_zero() {
        assert_eq!(min_max_scale(&[5.0, 5.0]), vec![0.0, 0.0]);
        assert!(min_max_scale(&[]).is_empty());
    }

    #[test]
    fn paper_example_distance() {
        // From Section 4: [0.1,0.3,0.4] vs [0.1,0.2] => sqrt(0.17)
        let d = euclidean_distance(&[0.1, 0.3, 0.4], &[0.1, 0.2]);
        assert!((d - 0.17f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_equal() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0];
        assert_eq!(euclidean_distance(&a, &b), euclidean_distance(&b, &a));
        assert_eq!(euclidean_distance(&a, &a), 0.0);
    }

    #[test]
    fn variance_of_constant_is_zero() {
        assert_eq!(variance(&[3.0, 3.0, 3.0]), 0.0);
        assert_eq!(variance(&[]), 0.0);
    }

    #[test]
    fn variance_known_value() {
        // var([0,2]) = 1
        assert!((variance(&[0.0, 2.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn summarize_known_trace() {
        let s = summarize(&[2.0, 4.0, 6.0]);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 6.0);
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.range(), 4.0);
        assert!((s.var - 8.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn summarize_empty_and_constant() {
        let empty = summarize(&[]);
        assert_eq!(
            empty,
            TraceSummary {
                min: 0.0,
                max: 0.0,
                mean: 0.0,
                var: 0.0
            }
        );
        let c = summarize(&[3.0, 3.0]);
        assert_eq!(c.range(), 0.0);
        assert_eq!(c.mean, 3.0);
        assert_eq!(c.var, 0.0);
    }
}
