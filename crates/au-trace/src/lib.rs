//! Dynamic program analysis for the Autonomizer reproduction.
//!
//! The PLDI 2019 paper selects *feature variables* (model inputs) for a
//! user-annotated *target variable* (model output) by analyzing a **dynamic
//! dependence graph** collected with Valgrind. This crate is the Rust
//! stand-in for that infrastructure:
//!
//! - [`AnalysisDb`]: the recording substrate — a dependence graph over
//!   interned variables, per-variable runtime value traces, a
//!   variable→functions usage map (`UseFunc` in the paper), and the
//!   input/target variable sets. Instrumented programs (the `au-lang`
//!   interpreter, or Rust apps via the explicit API) emit events into it.
//! - [`extract_sl`]: **Algorithm 1** — supervised-learning feature extraction
//!   with BFS distance ranking, from which the paper's `Min`/`Med`/`Raw`
//!   variants are selected ([`DistanceBand`], [`select_band`]).
//! - [`extract_rl`]: **Algorithm 2** — reinforcement-learning feature
//!   extraction with ε₁ redundancy pruning (Euclidean distance between
//!   min–max-scaled traces) and ε₂ variance pruning.
//! - [`extract_sl_pruned`] / [`extract_rl_pruned`]: the same algorithms
//!   behind a [`StaticFilter`] pre-pass that uses a *static* dependence
//!   graph to discard candidates provably unrelated to a target before the
//!   per-candidate dynamic BFS — same results, fewer graph walks
//!   ([`PrepruneStats`] reports the savings).
//!
//! # Example
//!
//! ```
//! use au_trace::{AnalysisDb, DistanceBand, extract_sl, select_band};
//!
//! let mut db = AnalysisDb::new();
//! // image -> sImg -> mag -> hist -> result; lo -> result  (the Canny shape)
//! db.record_assign("sImg", &["image"], None, "canny");
//! db.record_assign("mag", &["sImg"], None, "canny");
//! db.record_assign("hist", &["mag"], None, "hysteresis");
//! db.record_assign("result", &["hist", "lo"], None, "hysteresis");
//! db.mark_input("image");
//! db.mark_target("lo");
//!
//! let features = extract_sl(&db);
//! let ranked = &features[&db.id("lo").unwrap()];
//! // hist is the closest feature to the common dependent `result`.
//! assert_eq!(db.name(ranked[0].var), "hist");
//! let min = select_band(ranked, DistanceBand::Min);
//! assert_eq!(min.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[macro_use]
mod telem;

mod db;
pub mod persist;
mod preprune;
mod rl;
mod sl;
mod stats;

pub use db::{AnalysisDb, VarId};
pub use preprune::{extract_rl_pruned, extract_sl_pruned, PrepruneStats, StaticFilter};
pub use rl::{extract_rl, extract_rl_detailed, RlExtraction, RlParams};
pub use sl::{extract_sl, select_band, DistanceBand, RankedFeature};
pub use stats::{euclidean_distance, min_max_scale, summarize, variance, TraceSummary};
