//! Algorithm 1: automatic supervised-learning feature extraction.

use crate::db::{AnalysisDb, VarId};
use std::collections::BTreeMap;

/// A candidate feature variable with its dependence-graph distance to the
/// first common dependent shared with the target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankedFeature {
    /// The feature variable.
    pub var: VarId,
    /// BFS distance from the feature to the nearest common dependent.
    /// Smaller ⇒ more abstract ⇒ better (the paper's key ranking insight).
    pub distance: usize,
}

/// Which slice of the distance ranking to use — the paper's three SL
/// evaluation versions (Section 6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DistanceBand {
    /// Feature variables with the minimum distance (best quality).
    Min,
    /// Feature variables with the median distance.
    Med,
    /// Feature variables with the maximum distance — typically the raw
    /// program inputs.
    Raw,
}

/// Runs **Algorithm 1** from the paper on the recorded dynamic facts.
///
/// For each target variable `v`:
/// 1. candidates are the input variables plus their transitive dependents;
/// 2. a candidate `w` is a feature of `v` iff `dep(w) ∩ dep(v) ≠ ∅` (they
///    share a common dependent) and `w` does not itself depend on `v` (a
///    variable downstream of the prediction cannot be an input to it);
/// 3. each feature is ranked by the BFS distance from `w` to the nearest
///    common dependent, ascending.
///
/// Returns a map from each target to its ranked feature list. Targets with
/// no correlated candidates map to an empty list.
pub fn extract_sl(db: &AnalysisDb) -> BTreeMap<VarId, Vec<RankedFeature>> {
    let _s = t_span!("extract_sl", targets = db.targets().len());
    let _t = t_time!("au_trace.extract_sl");
    t_count!("au_trace.sl_extractions");
    // Candidate ← In ∪ dep(In)
    let mut candidates = db.inputs().clone();
    candidates.extend(db.dependents_of_set(db.inputs()));

    // Each target's ranking reads the database immutably and is independent
    // of every other target's, so the per-target loop fans out across the
    // persistent au-par pool. The closure owns an O(1) copy-on-write
    // snapshot of the database (the pool needs `'static` jobs), and results
    // recombine in target order, so the returned map is identical for every
    // thread count.
    let targets: Vec<VarId> = db.targets().iter().copied().collect();
    let db = db.snapshot();
    let per_target = au_par::pool_map(targets.len(), 1, move |ti| {
        let v = targets[ti];
        let dep_v = db.dependents(v);
        let mut ranked = Vec::new();
        for &w in &candidates {
            if w == v || db.targets().contains(&w) {
                continue;
            }
            // Exclude w that depends on v: prediction-time unavailable.
            if dep_v.contains(&w) {
                continue;
            }
            let dep_w = db.dependents(w);
            let common: std::collections::BTreeSet<VarId> =
                dep_w.intersection(&dep_v).copied().collect();
            if common.is_empty() {
                continue;
            }
            let distance = db
                .bfs_distance_to_set(w, &common)
                .expect("common dependent is reachable from w by construction");
            ranked.push(RankedFeature { var: w, distance });
        }
        ranked.sort_by_key(|f| (f.distance, f.var));
        (v, ranked)
    });
    per_target.into_iter().collect()
}

/// Selects the feature variables in the requested distance band:
/// all features whose distance equals the minimum / median / maximum
/// distance present in the ranking.
///
/// Returns an empty vector for an empty ranking.
pub fn select_band(ranked: &[RankedFeature], band: DistanceBand) -> Vec<VarId> {
    if ranked.is_empty() {
        return Vec::new();
    }
    let distances: Vec<usize> = ranked.iter().map(|f| f.distance).collect();
    let pick = match band {
        DistanceBand::Min => *distances.first().expect("non-empty"),
        DistanceBand::Raw => *distances.last().expect("non-empty"),
        DistanceBand::Med => distances[distances.len() / 2],
    };
    ranked
        .iter()
        .filter(|f| f.distance == pick)
        .map(|f| f.var)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Canny shape from Fig. 9:
    /// image -> sImg -> mag -> hist -> result, with lo/hi -> result.
    fn canny_db() -> AnalysisDb {
        let mut db = AnalysisDb::new();
        db.record_assign("sImg", &["image"], None, "canny");
        db.record_assign("mag", &["sImg"], None, "canny");
        db.record_assign("hist", &["mag"], None, "hysteresis");
        db.record_assign("result", &["hist", "lo", "hi"], None, "hysteresis");
        db.mark_input("image");
        db.mark_target("lo");
        db.mark_target("hi");
        db
    }

    #[test]
    fn fig9_ranking_matches_paper() {
        let db = canny_db();
        let features = extract_sl(&db);
        let lo = db.id("lo").unwrap();
        let ranked = &features[&lo];
        let names: Vec<(&str, usize)> = ranked
            .iter()
            .map(|f| (db.name(f.var), f.distance))
            .collect();
        // Paper: hist has distance 1, sImg distance 3 (via mag -> hist ->
        // result), mag distance 2, image distance 4.
        assert_eq!(
            names,
            vec![("hist", 1), ("mag", 2), ("sImg", 3), ("image", 4)]
        );
    }

    #[test]
    fn band_selection() {
        let db = canny_db();
        let features = extract_sl(&db);
        let lo = db.id("lo").unwrap();
        let ranked = &features[&lo];
        let min = select_band(ranked, DistanceBand::Min);
        let med = select_band(ranked, DistanceBand::Med);
        let raw = select_band(ranked, DistanceBand::Raw);
        assert_eq!(db.name(min[0]), "hist");
        assert_eq!(db.name(med[0]), "sImg");
        assert_eq!(db.name(raw[0]), "image");
    }

    #[test]
    fn other_targets_are_not_features() {
        let db = canny_db();
        let features = extract_sl(&db);
        let lo = db.id("lo").unwrap();
        let hi = db.id("hi").unwrap();
        assert!(features[&lo].iter().all(|f| f.var != hi));
    }

    #[test]
    fn uncorrelated_candidates_are_excluded() {
        let mut db = canny_db();
        // `noise` flows from the input but shares no dependent with lo.
        db.record_assign("noise", &["image"], None, "other");
        let features = extract_sl(&db);
        let lo = db.id("lo").unwrap();
        assert!(features[&lo].iter().all(|f| db.name(f.var) != "noise"));
    }

    #[test]
    fn downstream_of_target_is_excluded() {
        let mut db = canny_db();
        // `post` depends on lo (and on the input chain); it is downstream of
        // the prediction and must not be selected.
        db.record_assign("post", &["lo", "sImg"], None, "post");
        db.record_assign("final", &["post", "result"], None, "post");
        let features = extract_sl(&db);
        let lo = db.id("lo").unwrap();
        assert!(features[&lo].iter().all(|f| db.name(f.var) != "post"));
    }

    #[test]
    fn target_without_correlation_gets_empty_list() {
        let mut db = AnalysisDb::new();
        db.mark_input("x");
        db.mark_target("t");
        let features = extract_sl(&db);
        let t = db.id("t").unwrap();
        assert!(features[&t].is_empty());
        assert!(select_band(&features[&t], DistanceBand::Min).is_empty());
    }

    #[test]
    fn band_with_uniform_distances_selects_all() {
        let mut db = AnalysisDb::new();
        // a and b both feed result directly; lo also feeds result.
        db.record_assign("result", &["a", "b", "lo"], None, "f");
        db.mark_input("a");
        db.mark_input("b");
        db.mark_target("lo");
        let features = extract_sl(&db);
        let lo = db.id("lo").unwrap();
        let min = select_band(&features[&lo], DistanceBand::Min);
        assert_eq!(min.len(), 2);
    }
}
