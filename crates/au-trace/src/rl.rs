//! Algorithm 2: automatic reinforcement-learning feature extraction.

use crate::db::{AnalysisDb, VarId};
use crate::stats::{euclidean_distance, min_max_scale, variance};
use std::collections::BTreeMap;

/// Pruning thresholds for [`extract_rl`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RlParams {
    /// ε₁: two candidates whose scaled traces are within this Euclidean
    /// distance are redundant; the later one is pruned. The TORCS case study
    /// uses 0 (prune exact duplicates only).
    pub epsilon1: f64,
    /// ε₂: candidates whose scaled-trace variance is at most this threshold
    /// are unchanging and pruned. The TORCS case study uses 0.01.
    pub epsilon2: f64,
}

impl Default for RlParams {
    fn default() -> Self {
        // The thresholds used in the paper's TORCS case study (Section 6.3).
        RlParams {
            epsilon1: 0.0,
            epsilon2: 0.01,
        }
    }
}

/// Runs **Algorithm 2** from the paper on the recorded dynamic facts.
///
/// For each target variable `v`, a program variable `w` is a candidate iff
/// `w ≠ v`, `w` is used in some function that also uses a dependent of `v`
/// (`UseFunc[dep(v)] ∩ UseFunc[w] ≠ ∅`), and `v` and `w` share a common
/// descendent (`dep(v) ∩ dep(w) ≠ ∅`). Candidates are then pruned:
///
/// - **redundant**: if the min–max-scaled traces of `w` and a later
///   candidate `x` are within Euclidean distance ε₁, `x` is deleted
///   (Fig. 15's `posX` vs `roll`);
/// - **unchanging**: if the scaled trace of `w` has variance ≤ ε₂, `w` is
///   skipped (Fig. 16's `accX`).
///
/// Returns, per target, the surviving feature variables in interning order.
/// Variables with empty traces are treated as unchanging.
pub fn extract_rl(db: &AnalysisDb, params: RlParams) -> BTreeMap<VarId, Vec<VarId>> {
    extract_rl_detailed(db, params)
        .into_iter()
        .map(|(v, d)| (v, d.selected))
        .collect()
}

/// Per-target diagnostics from Algorithm 2 — exposes the pre-pruning
/// candidate set (Table 1's "Candidate Vars" column) alongside the final
/// selection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RlExtraction {
    /// Candidates before ε₁/ε₂ pruning.
    pub candidates: Vec<VarId>,
    /// Candidates removed as redundant (ε₁).
    pub pruned_redundant: Vec<VarId>,
    /// Candidates removed as unchanging (ε₂).
    pub pruned_unchanging: Vec<VarId>,
    /// Surviving feature variables.
    pub selected: Vec<VarId>,
}

/// Runs Algorithm 2 returning full diagnostics per target.
pub fn extract_rl_detailed(db: &AnalysisDb, params: RlParams) -> BTreeMap<VarId, RlExtraction> {
    let _s = t_span!("extract_rl", targets = db.targets().len());
    let _t = t_time!("au_trace.extract_rl");
    t_count!("au_trace.rl_extractions");
    // Targets are extracted independently (immutable reads of the db), so
    // fan the per-target loop out across the persistent au-par pool. The
    // closure owns an O(1) copy-on-write snapshot of the database (pool
    // jobs are `'static`), and results recombine in target order — the
    // result is identical for every thread count. The inner ε₁ `par_map`
    // below runs inline inside pool workers (nested-region suppression).
    let targets: Vec<VarId> = db.targets().iter().copied().collect();
    let db = db.snapshot();
    let per_target = au_par::pool_map(targets.len(), 1, move |ti| {
        let v = targets[ti];
        let dep_v = db.dependents(v);
        // UseFunc[dep(v)]: union of usage functions over v's dependents.
        let mut dep_funcs: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
        for &d in &dep_v {
            dep_funcs.extend(db.use_funcs(d).iter().map(|s| s.as_str()));
        }

        // Candidate map: VarId -> scaled trace (BTreeMap keeps a stable,
        // interning-ordered iteration like the paper's insertion order).
        let mut candidates: BTreeMap<VarId, Vec<f64>> = BTreeMap::new();
        for w in db.all_vars() {
            if w == v || db.targets().contains(&w) {
                continue;
            }
            let shares_func = db
                .use_funcs(w)
                .iter()
                .any(|f| dep_funcs.contains(f.as_str()));
            if !shares_func {
                continue;
            }
            let dep_w = db.dependents(w);
            if dep_v.intersection(&dep_w).next().is_none() {
                continue;
            }
            candidates.insert(w, min_max_scale(db.trace(w)));
        }

        // Redundancy pruning (ε₁): keep the first of each similar pair.
        // For a fixed basis `w`, the distance tests against every later
        // candidate are independent (deleting `x` never changes whether
        // some other `x'` is within ε₁ of `w`), so each basis row of the
        // pairwise-distance triangle is computed in parallel and the
        // deletions applied afterwards — the surviving set is exactly the
        // sequential algorithm's.
        let order: Vec<VarId> = candidates.keys().copied().collect();
        let mut deleted: std::collections::BTreeSet<VarId> = std::collections::BTreeSet::new();
        for (i, &w) in order.iter().enumerate() {
            if deleted.contains(&w) {
                continue;
            }
            let tail = &order[i + 1..];
            let prune = au_par::par_map(tail.len(), 8, |j| {
                let x = tail[j];
                !deleted.contains(&x)
                    && euclidean_distance(&candidates[&w], &candidates[&x]) <= params.epsilon1
            });
            for (&x, doomed) in tail.iter().zip(prune) {
                if doomed {
                    deleted.insert(x);
                }
            }
        }

        // Variance pruning (ε₂) over the survivors.
        let mut selected = Vec::new();
        let mut pruned_unchanging = Vec::new();
        for &w in &order {
            if deleted.contains(&w) {
                continue;
            }
            if variance(&candidates[&w]) <= params.epsilon2 {
                pruned_unchanging.push(w);
                continue;
            }
            selected.push(w);
        }
        (
            v,
            RlExtraction {
                candidates: order.clone(),
                pruned_redundant: deleted.into_iter().collect(),
                pruned_unchanging,
                selected,
            },
        )
    });
    per_target.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Mario shape from Fig. 10: player.x and minion.x update themselves
    /// each frame, feed `speed`/`collide`, which feed the action `right`.
    fn mario_db() -> AnalysisDb {
        let mut db = AnalysisDb::new();
        for i in 0..20 {
            let t = i as f64;
            db.record_assign(
                "playerX",
                &["playerX", "speed"],
                Some(t * 2.0),
                "updatePlayer",
            );
            db.record_assign("minionX", &["minionX"], Some(100.0 - t), "minionCollision");
            // mX is a duplicate alias of minionX (pruned by ε₁).
            db.record_assign("mX", &["minionX"], Some(100.0 - t), "minionCollision");
            // lives is unchanging (pruned by ε₂).
            db.record_assign("lives", &["lives"], Some(3.0), "updatePlayer");
            db.record_assign("speed", &["right"], Some((t * 0.5).sin()), "updatePlayer");
            db.record_assign(
                "collide",
                &["playerX", "minionX", "mX"],
                Some(t % 2.0),
                "gameLoop",
            );
            db.record_assign("score", &["collide", "speed", "lives"], Some(t), "gameLoop");
        }
        db.mark_target("right");
        db
    }

    #[test]
    fn fig10_selects_positions_and_prunes_duplicates() {
        let db = mario_db();
        let features = extract_rl(&db, RlParams::default());
        let right = db.id("right").unwrap();
        let names: Vec<&str> = features[&right].iter().map(|&v| db.name(v)).collect();
        assert!(names.contains(&"playerX"), "got {names:?}");
        assert!(names.contains(&"minionX"), "got {names:?}");
        assert!(
            !names.contains(&"mX"),
            "duplicate of minionX must be ε₁-pruned: {names:?}"
        );
        assert!(
            !names.contains(&"lives"),
            "constant must be ε₂-pruned: {names:?}"
        );
    }

    #[test]
    fn target_itself_never_selected() {
        let db = mario_db();
        let features = extract_rl(&db, RlParams::default());
        let right = db.id("right").unwrap();
        assert!(!features[&right].contains(&right));
    }

    #[test]
    fn epsilon1_widens_pruning() {
        let mut db = AnalysisDb::new();
        for i in 0..10 {
            let t = i as f64;
            db.record_assign("a", &["a"], Some(t), "f");
            // b is *near*-identical to a after scaling, but not exact.
            db.record_assign("b", &["b"], Some(t + 0.001 * (i % 2) as f64), "f");
            db.record_assign("out", &["a", "b", "act"], Some(t), "f");
        }
        db.mark_target("act");
        let act = db.id("act").unwrap();

        let strict = extract_rl(
            &db,
            RlParams {
                epsilon1: 0.0,
                epsilon2: 0.0,
            },
        );
        assert_eq!(
            strict[&act].len(),
            2,
            "no pruning at ε₁=0 for near-equal traces"
        );
        let loose = extract_rl(
            &db,
            RlParams {
                epsilon1: 0.1,
                epsilon2: 0.0,
            },
        );
        assert_eq!(loose[&act].len(), 1, "ε₁=0.1 prunes the near-duplicate");
    }

    #[test]
    fn epsilon2_prunes_low_variance() {
        let mut db = AnalysisDb::new();
        for i in 0..10 {
            let t = i as f64;
            db.record_assign("wiggle", &["wiggle"], Some((t * 10.0).sin() * 0.01), "f");
            db.record_assign("big", &["big"], Some(t), "f");
            db.record_assign("out", &["wiggle", "big", "act"], Some(t), "f");
        }
        db.mark_target("act");
        let act = db.id("act").unwrap();
        // Note: variance is computed on the *scaled* trace, so both have
        // non-trivial variance after scaling; ε₂=0.2 keeps both, ε₂ large
        // prunes everything.
        let keep = extract_rl(
            &db,
            RlParams {
                epsilon1: 0.0,
                epsilon2: 0.0,
            },
        );
        assert_eq!(keep[&act].len(), 2);
        let prune_all = extract_rl(
            &db,
            RlParams {
                epsilon1: 0.0,
                epsilon2: 10.0,
            },
        );
        assert!(prune_all[&act].is_empty());
    }

    #[test]
    fn empty_trace_counts_as_unchanging() {
        let mut db = AnalysisDb::new();
        db.record_assign("ghost", &["ghost"], None, "f");
        db.record_assign("out", &["ghost", "act"], Some(1.0), "f");
        db.record_value("out", 2.0);
        db.mark_target("act");
        let act = db.id("act").unwrap();
        let features = extract_rl(&db, RlParams::default());
        assert!(features[&act].iter().all(|&v| db.name(v) != "ghost"));
    }

    #[test]
    fn candidates_require_shared_function() {
        let mut db = AnalysisDb::new();
        for i in 0..5 {
            let t = i as f64;
            // `far` varies and shares a descendent, but is used only in a
            // function where no dependent of the target appears.
            db.record_assign("near", &["near"], Some(t), "gameLoop");
            db.record_assign("out", &["near", "act"], Some(t), "gameLoop");
        }
        // far -> out edge recorded from an unrelated function: the edge
        // exists but far's UseFunc does not intersect UseFunc[dep(act)].
        db.record_value("far", 1.0);
        db.record_value("far", 5.0);
        db.record_use("far", "elsewhere");
        db.mark_target("act");
        let act = db.id("act").unwrap();
        let features = extract_rl(
            &db,
            RlParams {
                epsilon1: 0.0,
                epsilon2: 0.0,
            },
        );
        let names: Vec<&str> = features[&act].iter().map(|&v| db.name(v)).collect();
        assert_eq!(names, vec!["near"]);
    }
}
