//! Feature-gated telemetry shims.
//!
//! Instrumentation sites use these `t_*` macros so the exact same code
//! compiles with and without the `telemetry` feature: when the feature is
//! off every macro expands to nothing (argument expressions stay
//! type-checked inside `if false` but are never evaluated), keeping the
//! recorder entirely out of the hot path.

// Not every crate uses every shim; keep the set uniform.
#![allow(unused_macros)]

/// Adds to a named global counter (`t_count!("name", n)` or `t_count!("name")`).
#[cfg(feature = "telemetry")]
macro_rules! t_count {
    ($($t:tt)*) => { ::au_telemetry::count!($($t)*) };
}
#[cfg(not(feature = "telemetry"))]
macro_rules! t_count {
    ($name:expr) => {};
    ($name:expr, $n:expr) => {
        if false {
            let _ = $n;
        }
    };
}

/// Starts a latency-histogram timer; bind the guard:
/// `let _t = t_time!("au_core.au_extract");`
#[cfg(feature = "telemetry")]
macro_rules! t_time {
    ($name:expr) => {
        ::au_telemetry::time!($name)
    };
}
#[cfg(not(feature = "telemetry"))]
macro_rules! t_time {
    // Expands to a trivially-droppable non-unit dummy so call sites can
    // bind it like the real guard without tripping let_unit_value.
    ($name:expr) => {
        0u8
    };
}

/// Opens a structured span; bind the guard:
/// `let _s = t_span!("au_nn", model = name);`
#[cfg(feature = "telemetry")]
macro_rules! t_span {
    ($($t:tt)*) => { ::au_telemetry::span!($($t)*) };
}
#[cfg(not(feature = "telemetry"))]
macro_rules! t_span {
    // Same dummy-guard trick as `t_time!`; the arg expressions stay
    // type-checked inside `if false` but are never evaluated.
    ($name:expr $(, $key:ident = $val:expr)* $(,)?) => {{
        if false {
            $( let _ = &$val; )*
        }
        0u8
    }};
}

/// Sets a named gauge to a value.
#[cfg(feature = "telemetry")]
macro_rules! t_gauge {
    ($($t:tt)*) => { ::au_telemetry::gauge_set!($($t)*) };
}
#[cfg(not(feature = "telemetry"))]
macro_rules! t_gauge {
    ($name:expr, $v:expr) => {
        if false {
            let _ = $v;
        }
    };
}
