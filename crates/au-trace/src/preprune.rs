//! Static pre-pruning for Algorithms 1 and 2.
//!
//! The paper chose dynamic dependence analysis because static analysis has
//! too many *false positives* — but over-approximation cuts the other way
//! too: when the **static** graph proves that `w` and target `v` share no
//! dependent, the dynamic graph (a subgraph, edge-wise) cannot contain one
//! either, so Algorithm 1/2 would reject `w` anyway. A static pre-pass can
//! therefore discard such candidates *before* the per-candidate dynamic
//! BFS, without ever changing the extraction result. The win is pure cost:
//! the static graph is computed once per program (not per run), and each
//! pruned candidate skips a transitive-closure walk of the dynamic graph.
//!
//! Soundness rests on two rules, both enforced here:
//!
//! 1. prune only candidates whose *disjointness* the static graph proves —
//!    a shared static dependent never causes pruning (that would be using
//!    static false positives for selection, which the paper rejects);
//! 2. a variable the static graph has never heard of (runtime-only
//!    recording, e.g. a game's per-frame state) is always kept.
//!
//! `extract_sl_pruned`/`extract_rl_pruned` mirror [`crate::extract_sl`] /
//! [`crate::extract_rl_detailed`] exactly, adding only the filter; the
//! repo's end-to-end tests assert result equality on all nine benchmarks.

use crate::db::{AnalysisDb, VarId};
use crate::rl::{RlExtraction, RlParams};
use crate::sl::RankedFeature;
use crate::stats::{euclidean_distance, min_max_scale, variance};
use std::collections::{BTreeMap, BTreeSet};

/// How much work the static pre-pass saved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrepruneStats {
    /// (target, candidate) pairs that reached the static filter.
    pub considered: usize,
    /// Pairs the filter discarded, each skipping one dynamic
    /// transitive-closure walk.
    pub pruned: usize,
}

impl PrepruneStats {
    /// Fraction of candidate pairs removed, in `[0, 1]`.
    pub fn reduction(&self) -> f64 {
        if self.considered == 0 {
            0.0
        } else {
            self.pruned as f64 / self.considered as f64
        }
    }

    fn absorb(&mut self, other: PrepruneStats) {
        self.considered += other.considered;
        self.pruned += other.pruned;
    }
}

/// Precomputed reachability over a static dependence graph (from
/// `au_lang::static_analysis::analyze`, or any [`AnalysisDb`] built from
/// program text rather than a run).
///
/// The closures live behind an `Arc`, so `clone()` is O(1) — the pooled
/// extraction loops hand each `'static` worker job its own handle without
/// recomputing or deep-copying the reachability sets.
#[derive(Clone)]
pub struct StaticFilter {
    core: std::sync::Arc<FilterCore>,
}

struct FilterCore {
    index: BTreeMap<String, VarId>,
    deps: BTreeMap<VarId, BTreeSet<VarId>>,
    /// Variables an abstract interpretation proved single-valued on every
    /// execution (e.g. `au_lang::absint::analyze`'s `constants`). A
    /// constant candidate carries zero information for θ — its recorded
    /// trace has zero variance, so Algorithm 2's ε₂ pass always discards
    /// it — and is dropped before the dynamic walk.
    constants: BTreeSet<String>,
}

impl StaticFilter {
    /// Computes the transitive-dependents closure of every static variable
    /// once, so each candidate test is two map lookups and a set
    /// intersection.
    pub fn new(static_db: &AnalysisDb) -> Self {
        Self::with_constants(static_db, std::iter::empty::<String>())
    }

    /// Like [`StaticFilter::new`], additionally treating every name in
    /// `constants` as provably unrelated to all targets (the
    /// absint-tightened filter). Callers supply names a sound analysis
    /// proved constant-valued on every execution; the repo's differential
    /// suite asserts selection identity against the full-db oracle across
    /// the nine corpus programs.
    pub fn with_constants(
        static_db: &AnalysisDb,
        constants: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        let mut index = BTreeMap::new();
        let mut deps = BTreeMap::new();
        for v in static_db.all_vars() {
            index.insert(static_db.name(v).to_owned(), v);
            deps.insert(v, static_db.dependents(v));
        }
        StaticFilter {
            core: std::sync::Arc::new(FilterCore {
                index,
                deps,
                constants: constants.into_iter().map(Into::into).collect(),
            }),
        }
    }

    /// True when `name` was supplied to
    /// [`with_constants`](StaticFilter::with_constants): the candidate is
    /// provably single-valued on every execution.
    pub fn proves_constant(&self, name: &str) -> bool {
        self.core.constants.contains(name)
    }

    /// True when the static graph *proves* `w` and `v` share no dependent,
    /// or `w` is a proven constant (zero-information candidate). Unknown
    /// names prove nothing (rule 2): the candidate is kept.
    pub fn proves_unrelated(&self, w: &str, v: &str) -> bool {
        let core = &*self.core;
        if core.constants.contains(w) {
            return true;
        }
        match (core.index.get(w), core.index.get(v)) {
            (Some(wi), Some(vi)) => {
                wi != vi
                    && !core.deps[wi].contains(vi)
                    && !core.deps[vi].contains(wi)
                    && core.deps[wi].is_disjoint(&core.deps[vi])
            }
            _ => false,
        }
    }
}

/// Algorithm 1 with the static pre-pass: identical output to
/// [`crate::extract_sl`], plus a count of the dynamic BFS walks skipped.
pub fn extract_sl_pruned(
    db: &AnalysisDb,
    filter: &StaticFilter,
) -> (BTreeMap<VarId, Vec<RankedFeature>>, PrepruneStats) {
    let _t = t_time!("au_trace.extract_sl_pruned");
    let mut candidates = db.inputs().clone();
    candidates.extend(db.dependents_of_set(db.inputs()));

    // Pooled like `extract_sl`: each `'static` job owns cheap Arc handles
    // to the database snapshot and the precomputed static filter.
    let targets: Vec<VarId> = db.targets().iter().copied().collect();
    let db = db.snapshot();
    let filter = filter.clone();
    let per_target = au_par::pool_map(targets.len(), 1, move |ti| {
        let v = targets[ti];
        let dep_v = db.dependents(v);
        let mut ranked = Vec::new();
        let mut stats = PrepruneStats::default();
        for &w in &candidates {
            if w == v || db.targets().contains(&w) {
                continue;
            }
            if dep_v.contains(&w) {
                continue;
            }
            stats.considered += 1;
            if filter.proves_unrelated(db.name(w), db.name(v)) {
                stats.pruned += 1;
                continue;
            }
            let dep_w = db.dependents(w);
            let common: BTreeSet<VarId> = dep_w.intersection(&dep_v).copied().collect();
            if common.is_empty() {
                continue;
            }
            let distance = db
                .bfs_distance_to_set(w, &common)
                .expect("common dependent is reachable from w by construction");
            ranked.push(RankedFeature { var: w, distance });
        }
        ranked.sort_by_key(|f| (f.distance, f.var));
        (v, ranked, stats)
    });

    let mut total = PrepruneStats::default();
    let map = per_target
        .into_iter()
        .map(|(v, ranked, stats)| {
            total.absorb(stats);
            (v, ranked)
        })
        .collect();
    (map, total)
}

/// Algorithm 2 with the static pre-pass: identical output to
/// [`crate::extract_rl_detailed`]. A statically-unrelated variable was
/// never a dynamic candidate, so the ε₁/ε₂ pruning passes see the same
/// candidate sequence and make the same decisions.
pub fn extract_rl_pruned(
    db: &AnalysisDb,
    filter: &StaticFilter,
    params: RlParams,
) -> (BTreeMap<VarId, RlExtraction>, PrepruneStats) {
    let _t = t_time!("au_trace.extract_rl_pruned");
    // Pooled like `extract_rl_detailed`; the inner ε₁ `par_map` runs inline
    // inside pool workers (nested-region suppression).
    let targets: Vec<VarId> = db.targets().iter().copied().collect();
    let db = db.snapshot();
    let filter = filter.clone();
    let per_target = au_par::pool_map(targets.len(), 1, move |ti| {
        let v = targets[ti];
        let dep_v = db.dependents(v);
        let mut dep_funcs: BTreeSet<&str> = BTreeSet::new();
        for &d in &dep_v {
            dep_funcs.extend(db.use_funcs(d).iter().map(|s| s.as_str()));
        }

        let mut stats = PrepruneStats::default();
        let mut candidates: BTreeMap<VarId, Vec<f64>> = BTreeMap::new();
        for w in db.all_vars() {
            if w == v || db.targets().contains(&w) {
                continue;
            }
            let shares_func = db
                .use_funcs(w)
                .iter()
                .any(|f| dep_funcs.contains(f.as_str()));
            if !shares_func {
                continue;
            }
            stats.considered += 1;
            if filter.proves_unrelated(db.name(w), db.name(v)) {
                stats.pruned += 1;
                continue;
            }
            let dep_w = db.dependents(w);
            if dep_v.intersection(&dep_w).next().is_none() {
                continue;
            }
            candidates.insert(w, min_max_scale(db.trace(w)));
        }

        // ε₁/ε₂ passes — byte-for-byte the logic of extract_rl_detailed.
        let order: Vec<VarId> = candidates.keys().copied().collect();
        let mut deleted: BTreeSet<VarId> = BTreeSet::new();
        for (i, &w) in order.iter().enumerate() {
            if deleted.contains(&w) {
                continue;
            }
            let tail = &order[i + 1..];
            let prune = au_par::par_map(tail.len(), 8, |j| {
                let x = tail[j];
                !deleted.contains(&x)
                    && euclidean_distance(&candidates[&w], &candidates[&x]) <= params.epsilon1
            });
            for (&x, doomed) in tail.iter().zip(prune) {
                if doomed {
                    deleted.insert(x);
                }
            }
        }

        let mut selected = Vec::new();
        let mut pruned_unchanging = Vec::new();
        for &w in &order {
            if deleted.contains(&w) {
                continue;
            }
            if variance(&candidates[&w]) <= params.epsilon2 {
                pruned_unchanging.push(w);
                continue;
            }
            selected.push(w);
        }
        (
            v,
            RlExtraction {
                candidates: order.clone(),
                pruned_redundant: deleted.into_iter().collect(),
                pruned_unchanging,
                selected,
            },
            stats,
        )
    });

    let mut total = PrepruneStats::default();
    let map = per_target
        .into_iter()
        .map(|(v, e, stats)| {
            total.absorb(stats);
            (v, e)
        })
        .collect();
    (map, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{extract_rl_detailed, extract_sl};

    /// The Canny shape plus an uncorrelated `noise` branch.
    fn canny_db() -> AnalysisDb {
        let mut db = AnalysisDb::new();
        db.record_assign("sImg", &["image"], None, "canny");
        db.record_assign("mag", &["sImg"], None, "canny");
        db.record_assign("hist", &["mag"], None, "hysteresis");
        db.record_assign("result", &["hist", "lo", "hi"], None, "hysteresis");
        db.record_assign("noise", &["image"], None, "other");
        db.mark_input("image");
        db.mark_target("lo");
        db.mark_target("hi");
        db
    }

    #[test]
    fn sl_pruned_matches_unpruned_with_exact_static_graph() {
        let db = canny_db();
        // The static graph is the same shape (the best case: zero
        // over-approximation), so `noise` is provably unrelated to lo/hi.
        let filter = StaticFilter::new(&db);
        let (pruned, stats) = extract_sl_pruned(&db, &filter);
        assert_eq!(pruned, extract_sl(&db));
        assert!(
            stats.pruned >= 2,
            "noise pruned for both targets: {stats:?}"
        );
        assert!(stats.pruned <= stats.considered);
        assert!(stats.reduction() > 0.0);
    }

    #[test]
    fn sl_pruned_matches_unpruned_with_over_approximated_static_graph() {
        let db = canny_db();
        // A strictly larger static graph (extra false-positive edges) may
        // prune less, but never changes the result.
        let mut static_db = canny_db();
        static_db.record_assign("noise", &["image", "hist"], None, "other");
        static_db.record_assign("result", &["noise"], None, "other");
        let filter = StaticFilter::new(&static_db);
        let (pruned, stats) = extract_sl_pruned(&db, &filter);
        assert_eq!(pruned, extract_sl(&db));
        // noise now statically shares `result` with lo: nothing is provably
        // unrelated, so nothing is pruned...
        assert_eq!(stats.pruned, 0);
        // ...and the dynamic pass still rejects it.
        let lo = db.id("lo").unwrap();
        assert!(pruned[&lo].iter().all(|f| db.name(f.var) != "noise"));
    }

    #[test]
    fn unknown_static_names_are_never_pruned() {
        let db = canny_db();
        let empty = AnalysisDb::new();
        let filter = StaticFilter::new(&empty);
        let (pruned, stats) = extract_sl_pruned(&db, &filter);
        assert_eq!(pruned, extract_sl(&db));
        assert_eq!(stats.pruned, 0, "no static knowledge, no pruning");
        assert!(stats.considered > 0);
    }

    #[test]
    fn rl_pruned_matches_unpruned() {
        let mut db = AnalysisDb::new();
        for i in 0..20 {
            let t = i as f64;
            db.record_assign("playerX", &["playerX", "speed"], Some(t * 2.0), "update");
            db.record_assign("minionX", &["minionX"], Some(100.0 - t), "update");
            db.record_assign("lives", &["lives"], Some(3.0), "update");
            db.record_assign("speed", &["right"], Some((t * 0.5).sin()), "update");
            // `hud` shares functions with dep(right) but never a dependent.
            db.record_assign("hud", &["hud"], Some(t * 3.0), "update");
            db.record_assign(
                "score",
                &["playerX", "minionX", "speed", "lives"],
                Some(t),
                "update",
            );
        }
        db.mark_target("right");
        let filter = StaticFilter::new(&db);
        let params = RlParams::default();
        let (pruned, stats) = extract_rl_pruned(&db, &filter, params);
        assert_eq!(pruned, extract_rl_detailed(&db, params));
        assert!(stats.pruned >= 1, "hud is provably unrelated: {stats:?}");
        let right = db.id("right").unwrap();
        assert!(pruned[&right]
            .candidates
            .iter()
            .all(|&w| db.name(w) != "hud"));
    }

    #[test]
    fn filter_proofs_are_directional_and_exact() {
        let db = canny_db();
        let filter = StaticFilter::new(&db);
        // image reaches result, lo reaches result: shared dependent.
        assert!(!filter.proves_unrelated("image", "lo"));
        // noise's only dependent set is empty; lo's is {result}.
        assert!(filter.proves_unrelated("noise", "lo"));
        assert!(filter.proves_unrelated("lo", "noise"));
        // A direct ancestor/descendant pair is related even when the
        // downstream var has no further dependents.
        assert!(!filter.proves_unrelated("hist", "result"));
        assert!(!filter.proves_unrelated("result", "hist"));
        // Unknown names prove nothing.
        assert!(!filter.proves_unrelated("ghost", "lo"));
        assert!(!filter.proves_unrelated("lo", "ghost"));
    }

    #[test]
    fn stats_reduction_is_safe_on_empty() {
        assert_eq!(PrepruneStats::default().reduction(), 0.0);
    }

    #[test]
    fn constant_candidates_are_dropped_by_the_tightened_filter() {
        let db = canny_db();
        let plain = StaticFilter::new(&db);
        let tight = StaticFilter::with_constants(&db, ["sImg"]);
        // The plain filter keeps sImg (it shares `result` with lo)...
        assert!(!plain.proves_unrelated("sImg", "lo"));
        assert!(!plain.proves_constant("sImg"));
        // ...the tightened one drops it as a zero-information candidate.
        assert!(tight.proves_constant("sImg"));
        assert!(tight.proves_unrelated("sImg", "lo"));
        // Constancy applies to the candidate side only: targets are
        // model-written and never constant, so `v` is not consulted.
        assert!(!tight.proves_unrelated("lo", "hist"));
        // Unrelated non-constants behave exactly as before.
        assert!(tight.proves_unrelated("noise", "lo"));
        assert!(!tight.proves_unrelated("image", "lo"));
    }

    #[test]
    fn rl_with_tightened_filter_keeps_selected_sets() {
        // `lives` is constant (value 3.0 every frame): ε₂ discards it in
        // the unpruned pipeline, the tightened filter discards it up
        // front — the selected sets must agree.
        let mut db = AnalysisDb::new();
        for i in 0..20 {
            let t = i as f64;
            db.record_assign("playerX", &["playerX", "speed"], Some(t * 2.0), "update");
            db.record_assign("lives", &["lives"], Some(3.0), "update");
            db.record_assign("speed", &["right"], Some((t * 0.5).sin()), "update");
            db.record_assign("score", &["playerX", "speed", "lives"], Some(t), "update");
        }
        db.mark_target("right");
        let params = RlParams::default();
        let tight = StaticFilter::with_constants(&db, ["lives"]);
        let (pruned, stats) = extract_rl_pruned(&db, &tight, params);
        let full = extract_rl_detailed(&db, params);
        let right = db.id("right").unwrap();
        assert_eq!(pruned[&right].selected, full[&right].selected);
        assert!(
            pruned[&right]
                .candidates
                .iter()
                .all(|&w| db.name(w) != "lives"),
            "constant candidate must not reach the ε passes"
        );
        assert!(stats.pruned >= 1);
    }
}
