//! Persistence for analysis databases.
//!
//! The paper's workflow separates *profiling* (run the instrumented program
//! once under Valgrind) from *extraction* (run Algorithms 1–2 on the
//! recorded facts). Persisting the [`AnalysisDb`] lets those phases live in
//! different processes, exactly as the original toolchain does.

use crate::db::AnalysisDb;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Serializable mirror of [`AnalysisDb`].
#[derive(Debug, Serialize, Deserialize)]
struct DbFile {
    names: Vec<String>,
    /// Edges as (source index, dependent index).
    edges: Vec<(usize, usize)>,
    traces: Vec<Vec<f64>>,
    use_funcs: Vec<Vec<String>>,
    inputs: Vec<usize>,
    targets: Vec<usize>,
}

/// Errors from persisting analysis databases.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed file contents.
    Format(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "analysis db i/o failed: {e}"),
            PersistError::Format(msg) => write!(f, "invalid analysis db: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Format(_) => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Serializes the database to a JSON string.
pub fn to_json(db: &AnalysisDb) -> String {
    let mut edges = Vec::new();
    for v in db.all_vars() {
        for &d in db.direct_dependents(v) {
            edges.push((v.index(), d.index()));
        }
    }
    let file = DbFile {
        names: db.all_vars().map(|v| db.name(v).to_owned()).collect(),
        edges,
        traces: db.all_vars().map(|v| db.trace(v).to_vec()).collect(),
        use_funcs: db
            .all_vars()
            .map(|v| db.use_funcs(v).iter().cloned().collect())
            .collect(),
        inputs: db.inputs().iter().map(|v| v.index()).collect(),
        targets: db.targets().iter().map(|v| v.index()).collect(),
    };
    serde_json::to_string(&file).expect("analysis db serializes")
}

/// Reconstructs a database from [`to_json`] output.
///
/// # Errors
///
/// Returns [`PersistError::Format`] for malformed JSON or out-of-range
/// indices.
pub fn from_json(json: &str) -> Result<AnalysisDb, PersistError> {
    let file: DbFile =
        serde_json::from_str(json).map_err(|e| PersistError::Format(e.to_string()))?;
    let n = file.names.len();
    let check = |i: usize| -> Result<(), PersistError> {
        if i < n {
            Ok(())
        } else {
            Err(PersistError::Format(format!(
                "variable index {i} out of range ({n} variables)"
            )))
        }
    };
    let mut db = AnalysisDb::new();
    for name in &file.names {
        db.var(name);
    }
    for &(s, d) in &file.edges {
        check(s)?;
        check(d)?;
        db.record_edge(&file.names[s], &file.names[d]);
    }
    for (i, trace) in file.traces.iter().enumerate() {
        check(i)?;
        for &v in trace {
            db.record_value(&file.names[i], v);
        }
    }
    for (i, funcs) in file.use_funcs.iter().enumerate() {
        check(i)?;
        for func in funcs {
            db.record_use(&file.names[i], func);
        }
    }
    for &i in &file.inputs {
        check(i)?;
        db.mark_input(&file.names[i]);
    }
    for &i in &file.targets {
        check(i)?;
        db.mark_target(&file.names[i]);
    }
    Ok(db)
}

/// Saves the database to a file.
///
/// # Errors
///
/// Returns [`PersistError::Io`] on filesystem failure.
pub fn save(db: &AnalysisDb, path: impl AsRef<Path>) -> Result<(), PersistError> {
    std::fs::write(path, to_json(db))?;
    Ok(())
}

/// Loads a database saved by [`save`].
///
/// # Errors
///
/// Returns [`PersistError::Io`] or [`PersistError::Format`].
pub fn load(path: impl AsRef<Path>) -> Result<AnalysisDb, PersistError> {
    let json = std::fs::read_to_string(path)?;
    from_json(&json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{extract_sl, RlParams};

    fn sample_db() -> AnalysisDb {
        let mut db = AnalysisDb::new();
        db.record_assign("sImg", &["image"], None, "canny");
        db.record_assign("hist", &["sImg"], Some(1.0), "canny");
        db.record_assign("result", &["hist", "lo"], None, "hysteresis");
        db.record_value("hist", 2.5);
        db.mark_input("image");
        db.mark_target("lo");
        db
    }

    #[test]
    fn round_trip_preserves_everything() {
        let db = sample_db();
        let restored = from_json(&to_json(&db)).unwrap();
        assert_eq!(restored.var_count(), db.var_count());
        for v in db.all_vars() {
            let rv = restored.id(db.name(v)).expect("variable survives");
            assert_eq!(restored.trace(rv), db.trace(v), "trace of {}", db.name(v));
            assert_eq!(
                restored.use_funcs(rv),
                db.use_funcs(v),
                "use-functions of {} must round-trip exactly",
                db.name(v)
            );
            assert_eq!(
                restored.dependents(rv).len(),
                db.dependents(v).len(),
                "dep({}) size",
                db.name(v)
            );
        }
        assert_eq!(restored.inputs().len(), 1);
        assert_eq!(restored.targets().len(), 1);
    }

    #[test]
    fn extraction_agrees_after_round_trip() {
        let db = sample_db();
        let restored = from_json(&to_json(&db)).unwrap();
        let before = extract_sl(&db);
        let after = extract_sl(&restored);
        let lo_before = db.id("lo").unwrap();
        let lo_after = restored.id("lo").unwrap();
        let names = |db: &AnalysisDb, list: &[crate::RankedFeature]| -> Vec<String> {
            list.iter().map(|f| db.name(f.var).to_owned()).collect()
        };
        assert_eq!(
            names(&db, &before[&lo_before]),
            names(&restored, &after[&lo_after])
        );
        let _ = RlParams::default();
    }

    #[test]
    fn file_round_trip() {
        let path = std::env::temp_dir().join("au_trace_persist_test.json");
        let db = sample_db();
        save(&db, &path).unwrap();
        let restored = load(&path).unwrap();
        assert_eq!(restored.var_count(), db.var_count());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(from_json("nope"), Err(PersistError::Format(_))));
    }

    #[test]
    fn rejects_out_of_range_indices() {
        let json = r#"{"names":["a"],"edges":[[0,5]],"traces":[[]],"use_funcs":[[]],"inputs":[],"targets":[]}"#;
        assert!(matches!(from_json(json), Err(PersistError::Format(_))));
    }
}
