//! Mario: a side-scrolling platformer with goombas, pits, pipes, coins, a
//! flag pole — and instrumented code-coverage regions for the paper's
//! software self-testing case study.
//!
//! The reward structure is the paper's Fig. 2: `+2` for moving forward,
//! `-1` otherwise, `+10` on reaching the flag (terminal), `-10` on death
//! (terminal). The self-testing variant additionally rewards coverage
//! improvements (`+30`), which the harness layers on top using
//! [`Mario::coverage`].
//!
//! The level also reproduces the *boundary-check bug* the paper's AI found:
//! in the dungeon section the developer "missed a boundary check", so a
//! jump executed while hugging the dungeon ceiling pushes Mario above the
//! screen and crashes the program. [`Mario::bug_triggered`] reports it.

use crate::coverage::Coverage;
use crate::game::{Game, StepResult};
use au_trace::AnalysisDb;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const LEVEL_LEN: f64 = 120.0;
const GRAVITY: f64 = 0.22;
const JUMP_VY: f64 = 1.35;
const WALK: f64 = 0.45;
const CEILING_Y: f64 = 3.0;

/// Coverage regions instrumented in the game code (the gcov universe).
pub const REGIONS: &[&str] = &[
    "walk_left",
    "walk_right",
    "idle",
    "jump",
    "airborne",
    "land",
    "stomp_goomba",
    "hit_goomba",
    "fall_pit",
    "pipe_block",
    "clear_pipe",
    "collect_coin",
    "reach_flag",
    "backward_move",
    "dungeon_enter",
    "dungeon_ceiling",
    "oob_ceiling_bug",
    "high_air",
    // Level-chunk handlers: each zone of the level executes its own slice
    // of game logic (spawners, decorations, physics specials), so code
    // coverage grows with the deepest point reached — like gcov on a real
    // level loader.
    "zone_0",
    "zone_1",
    "zone_2",
    "zone_3",
    "zone_4",
    "zone_5",
    "zone_6",
    "zone_7",
    "zone_8",
    "zone_9",
];

/// Zone region names indexed by level chunk.
const ZONES: [&str; 10] = [
    "zone_0", "zone_1", "zone_2", "zone_3", "zone_4", "zone_5", "zone_6", "zone_7", "zone_8",
    "zone_9",
];

#[derive(Debug, Clone, PartialEq)]
struct Goomba {
    x: f64,
    dir: f64,
    lo: f64,
    hi: f64,
    alive: bool,
}

/// The Mario benchmark.
///
/// Actions (5, as in the paper's `au_write_back("output", 5, actionKey)`):
/// `0` = idle, `1` = left, `2` = right, `3` = jump, `4` = right+jump.
#[derive(Debug, Clone)]
pub struct Mario {
    x: f64,
    y: f64,
    vy: f64,
    on_ground: bool,
    goombas: Vec<Goomba>,
    /// Pits as (start, end) ranges with no ground.
    pits: Vec<(f64, f64)>,
    /// Pipe obstacle x positions (height 1.5 world units).
    pipes: Vec<f64>,
    /// Coin positions (x, y).
    coins: Vec<(f64, f64, bool)>,
    /// Dungeon section (low ceiling) as (start, end).
    dungeon: (f64, f64),
    dead: bool,
    finished: bool,
    crashed: bool,
    coverage: Coverage,
    seed: u64,
}

impl Mario {
    /// Builds the level deterministically from `seed`.
    pub fn new(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let goombas = (0..5)
            .map(|i| {
                let base = 15.0 + i as f64 * 20.0 + rng.gen_range(0.0..6.0);
                Goomba {
                    x: base,
                    dir: if rng.gen_bool(0.5) { 1.0 } else { -1.0 },
                    lo: base - 4.0,
                    hi: base + 4.0,
                    alive: true,
                }
            })
            .collect();
        let pits = vec![(34.0, 37.0), (72.0, 75.5)];
        let pipes = vec![25.0, 55.0, 88.0];
        let coins = (0..6)
            .map(|i| (12.0 + i as f64 * 17.0, 2.2, false))
            .collect();
        Mario {
            x: 1.0,
            y: 0.0,
            vy: 0.0,
            on_ground: true,
            goombas,
            pits,
            pipes,
            coins,
            dungeon: (95.0, 110.0),
            dead: false,
            finished: false,
            crashed: false,
            coverage: Coverage::new(REGIONS),
            seed,
        }
    }

    /// Coverage counters (the self-testing substrate).
    pub fn coverage(&self) -> &Coverage {
        &self.coverage
    }

    /// Whether the out-of-bounds ceiling bug fired (program crash in the
    /// original; here it ends the episode and sets this flag).
    pub fn bug_triggered(&self) -> bool {
        self.crashed
    }

    /// Mario's x position (world units).
    pub fn x(&self) -> f64 {
        self.x
    }

    fn over_pit(&self, x: f64) -> bool {
        self.pits.iter().any(|&(a, b)| x >= a && x <= b)
    }

    fn pipe_ahead(&self, x: f64) -> Option<f64> {
        self.pipes
            .iter()
            .copied()
            .filter(|&p| p >= x - 0.5)
            .min_by(|a, b| a.total_cmp(b))
    }

    fn nearest_goomba(&self) -> Option<&Goomba> {
        self.goombas
            .iter()
            .filter(|g| g.alive)
            .min_by(|a, b| (a.x - self.x).abs().total_cmp(&(b.x - self.x).abs()))
    }

    fn in_dungeon(&self) -> bool {
        self.x >= self.dungeon.0 && self.x <= self.dungeon.1
    }
}

impl Game for Mario {
    fn name(&self) -> &'static str {
        "Mario"
    }

    fn n_actions(&self) -> usize {
        5
    }

    fn reset(&mut self) {
        *self = Mario::new(self.seed);
    }

    fn step(&mut self, action: usize) -> StepResult {
        assert!(action < 5, "mario has 5 actions");
        if self.dead || self.finished || self.crashed {
            return StepResult {
                reward: 0.0,
                terminal: true,
            };
        }
        let x_before = self.x;

        // Horizontal intent.
        let mut dx = match action {
            1 => {
                self.coverage.hit("walk_left");
                self.coverage.hit("backward_move");
                -WALK
            }
            2 | 4 => {
                self.coverage.hit("walk_right");
                WALK
            }
            _ => {
                self.coverage.hit("idle");
                0.0
            }
        };
        // Jump intent.
        if matches!(action, 3 | 4) && self.on_ground {
            self.coverage.hit("jump");
            self.vy = JUMP_VY;
            self.on_ground = false;
        }

        // Pipe blocking: a pipe stops ground-level walking through it.
        if let Some(pipe) = self.pipe_ahead(self.x) {
            let next_x = self.x + dx;
            let crossing = (self.x - pipe).abs() <= 0.6 || (next_x - pipe).abs() <= 0.6;
            if crossing && self.y < 1.5 {
                if dx > 0.0 && next_x > self.x {
                    self.coverage.hit("pipe_block");
                    dx = 0.0;
                }
            } else if crossing && self.y >= 1.5 {
                self.coverage.hit("clear_pipe");
            }
        }

        self.x = (self.x + dx).max(0.0);

        // Vertical physics.
        if !self.on_ground {
            self.coverage.hit("airborne");
            if self.y > 2.2 {
                self.coverage.hit("high_air");
            }
            self.y += self.vy;
            self.vy -= GRAVITY;
            // Dungeon ceiling.
            if self.in_dungeon() {
                self.coverage.hit("dungeon_enter");
                if self.y >= CEILING_Y - 0.2 {
                    self.coverage.hit("dungeon_ceiling");
                    // THE BUG: the developer forgot the boundary check that
                    // clamps y here; jumping again while scraping the
                    // ceiling escapes the screen (paper Fig. 7).
                    if matches!(action, 3 | 4) && self.vy > 0.0 && self.y > CEILING_Y {
                        self.coverage.hit("oob_ceiling_bug");
                        self.crashed = true;
                        return StepResult {
                            reward: -10.0,
                            terminal: true,
                        };
                    }
                    self.y = self.y.min(CEILING_Y + 0.4);
                }
            }
            if self.y <= 0.0 {
                self.y = 0.0;
                self.vy = 0.0;
                self.on_ground = true;
                self.coverage.hit("land");
            }
        }

        // Pit check (only on the ground).
        if self.on_ground && self.over_pit(self.x) {
            self.coverage.hit("fall_pit");
            self.dead = true;
            return StepResult {
                reward: -10.0,
                terminal: true,
            };
        }

        // Zone handler dispatch: the level chunk under Mario executes its
        // own code region.
        let zone = ((self.x / LEVEL_LEN) * ZONES.len() as f64) as usize;
        self.coverage.hit(ZONES[zone.min(ZONES.len() - 1)]);
        if self.in_dungeon() {
            self.coverage.hit("dungeon_enter");
        }

        // Goomba updates and collision. Contact is lethal unless Mario is
        // clearly above and falling (a stomp) or sails well over the top.
        let (px, py) = (self.x, self.y);
        let mut stomped = false;
        let mut hit = false;
        let falling = self.vy < 0.0 && !self.on_ground;
        for goomba in &mut self.goombas {
            if !goomba.alive {
                continue;
            }
            goomba.x += goomba.dir * 0.12;
            if goomba.x <= goomba.lo || goomba.x >= goomba.hi {
                goomba.dir = -goomba.dir;
            }
            if (goomba.x - px).abs() < 0.5 {
                if py > 0.25 && py < 1.2 && falling {
                    goomba.alive = false;
                    stomped = true;
                } else if py <= 0.6 {
                    hit = true;
                }
            }
        }
        if stomped {
            self.coverage.hit("stomp_goomba");
        }
        if hit {
            self.coverage.hit("hit_goomba");
            self.dead = true;
            return StepResult {
                reward: -10.0,
                terminal: true,
            };
        }

        // Coins.
        for coin in &mut self.coins {
            if !coin.2 && (coin.0 - px).abs() < 0.6 && (coin.1 - py).abs() < 0.8 {
                coin.2 = true;
                self.coverage.hit("collect_coin");
            }
        }

        // Flag.
        if self.x >= LEVEL_LEN {
            self.coverage.hit("reach_flag");
            self.finished = true;
            return StepResult {
                reward: 10.0,
                terminal: true,
            };
        }

        // Paper reward: +2 if Mario moved forward, −1 otherwise.
        let reward = if self.x > x_before + 1e-9 { 2.0 } else { -1.0 };
        StepResult {
            reward,
            terminal: false,
        }
    }

    fn features(&self) -> Vec<f64> {
        let goomba = self.nearest_goomba();
        let (gdx, gdir) = goomba
            .map(|g| ((g.x - self.x).clamp(-10.0, 10.0), g.dir))
            .unwrap_or((10.0, 0.0));
        let pit_dx = self
            .pits
            .iter()
            .map(|&(a, _)| a - self.x)
            .filter(|&d| d > -1.0)
            .fold(20.0f64, f64::min)
            .clamp(-1.0, 20.0);
        let pipe_dx = self
            .pipes
            .iter()
            .map(|&p| p - self.x)
            .filter(|&d| d > -1.0)
            .fold(20.0f64, f64::min)
            .clamp(-1.0, 20.0);
        let coin = self
            .coins
            .iter()
            .filter(|c| !c.2)
            .map(|&(cx, _, _)| (cx - self.x).clamp(-10.0, 10.0))
            .fold(10.0f64, |acc, d| if d.abs() < acc.abs() { d } else { acc });
        vec![
            self.x / LEVEL_LEN,
            self.y,
            self.vy,
            if self.on_ground { 1.0 } else { 0.0 },
            gdx,
            gdir,
            pit_dx,
            pipe_dx,
            coin,
            (LEVEL_LEN - self.x) / LEVEL_LEN,
            if self.in_dungeon() { 1.0 } else { 0.0 },
        ]
    }

    fn feature_names(&self) -> Vec<&'static str> {
        vec![
            "PX",
            "PY",
            "PVY",
            "onGround",
            "MnX",
            "MnDir",
            "pitDX",
            "pipeDX",
            "coinDX",
            "flagDX",
            "inDungeon",
        ]
    }

    fn render(&self, width: usize, height: usize) -> Vec<f64> {
        let mut frame = vec![0.0; width * height];
        let window = 16.0; // world units visible
        let to_col = |wx: f64| -> Option<usize> {
            let rel = wx - self.x + 2.0;
            if !(0.0..window).contains(&rel) {
                return None;
            }
            Some(((rel / window) * width as f64) as usize % width)
        };
        let to_row = |wy: f64| -> usize {
            let r = height as f64 - 1.0 - (wy / 4.0) * (height as f64 - 1.0);
            (r.max(0.0) as usize).min(height - 1)
        };
        // Ground line with pit holes.
        for col in 0..width {
            let wx = self.x - 2.0 + (col as f64 / width as f64) * window;
            if !self.over_pit(wx) {
                frame[to_row(0.0) * width + col] = 0.4;
            }
        }
        // Pipes.
        for &p in &self.pipes {
            if let Some(col) = to_col(p) {
                for h in 0..=3 {
                    frame[to_row(h as f64 * 0.5) * width + col] = 0.7;
                }
            }
        }
        // Goombas.
        for g in self.goombas.iter().filter(|g| g.alive) {
            if let Some(col) = to_col(g.x) {
                frame[to_row(0.2) * width + col] = 0.85;
            }
        }
        // Coins.
        for &(cx, cy, taken) in &self.coins {
            if taken {
                continue;
            }
            if let Some(col) = to_col(cx) {
                frame[to_row(cy) * width + col] = 0.55;
            }
        }
        // Mario.
        if let Some(col) = to_col(self.x) {
            frame[to_row(self.y.clamp(0.0, 3.9)) * width + col] = 1.0;
        }
        frame
    }

    fn oracle_action(&self) -> usize {
        // Run right; jump when an obstacle or enemy is close ahead.
        let danger_goomba = self
            .nearest_goomba()
            .map(|g| {
                let d = g.x - self.x;
                (0.0..1.8).contains(&d)
            })
            .unwrap_or(false);
        let pit_close = self
            .pits
            .iter()
            .any(|&(a, _)| (0.0..1.5).contains(&(a - self.x)));
        let pipe_close = self
            .pipes
            .iter()
            .any(|&p| (0.0..1.4).contains(&(p - self.x)));
        if (danger_goomba || pit_close || pipe_close) && self.on_ground {
            4 // right + jump
        } else {
            2 // right
        }
    }

    fn progress(&self) -> f64 {
        (self.x / LEVEL_LEN).min(1.0)
    }

    fn succeeded(&self) -> bool {
        self.finished
    }

    fn record_dependences(&self, db: &mut AnalysisDb) {
        // Fig. 10's shape: positions update themselves; speed couples the
        // action to the position; collision couples player and minions.
        db.record_assign("speed", &["actionKey"], None, "updatePlayer");
        db.record_assign("PX", &["PX", "speed"], None, "updatePlayer");
        db.record_assign("PVY", &["PVY", "actionKey"], None, "updatePlayer");
        db.record_assign("PY", &["PY", "PVY"], None, "updatePlayer");
        db.record_assign("onGround", &["PY"], None, "updatePlayer");
        db.record_assign("MnX", &["MnX", "MnDir"], None, "minionCollision");
        db.record_assign("MnDir", &["MnX", "MnDir"], None, "minionCollision");
        db.record_assign("collide", &["PX", "PY", "MnX"], None, "gameLoop");
        db.record_assign("pitDX", &["PX"], None, "gameLoop");
        db.record_assign("pipeDX", &["PX"], None, "checkObj");
        db.record_assign("coinDX", &["PX"], None, "gameLoop");
        db.record_assign("flagDX", &["PX"], None, "gameLoop");
        db.record_assign("inDungeon", &["PX"], None, "gameLoop");
        db.record_assign("reward", &["collide", "pitDX", "flagDX"], None, "gameLoop");
        db.record_assign("score", &["reward", "actionKey"], None, "gameLoop");
        db.mark_target("actionKey");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let mut a = Mario::new(1);
        let mut b = Mario::new(1);
        for step in 0..100 {
            let action = step % 5;
            assert_eq!(a.step(action), b.step(action));
        }
    }

    #[test]
    fn moving_right_earns_forward_reward() {
        let mut game = Mario::new(1);
        let r = game.step(2);
        assert_eq!(r.reward, 2.0);
        let r = game.step(0);
        assert_eq!(r.reward, -1.0);
    }

    #[test]
    fn oracle_reaches_the_flag() {
        let mut game = Mario::new(1);
        let mut steps = 0;
        loop {
            let a = game.oracle_action();
            let r = game.step(a);
            steps += 1;
            if r.terminal || steps > 3000 {
                break;
            }
        }
        assert!(
            game.succeeded(),
            "oracle should clear the stage; progress {}",
            game.progress()
        );
    }

    #[test]
    fn idling_never_finishes() {
        let mut game = Mario::new(2);
        for _ in 0..500 {
            if game.step(0).terminal {
                break;
            }
        }
        assert!(!game.succeeded());
        assert!(game.progress() < 0.1);
    }

    #[test]
    fn walking_into_goombas_eventually_dies() {
        let mut game = Mario::new(3);
        let mut died = false;
        for _ in 0..2000 {
            // Walk right without ever jumping: the first pit or goomba wins.
            if game.step(2).terminal {
                died = true;
                break;
            }
        }
        assert!(died);
        assert!(!game.succeeded());
    }

    #[test]
    fn coverage_grows_during_play() {
        let mut game = Mario::new(4);
        assert_eq!(game.coverage().fraction(), 0.0);
        for _ in 0..200 {
            let a = game.oracle_action();
            if game.step(a).terminal {
                break;
            }
        }
        assert!(game.coverage().fraction() > 0.2);
        assert!(game.coverage().hits("walk_right") > 0);
    }

    #[test]
    fn features_and_names_align() {
        let game = Mario::new(1);
        assert_eq!(game.features().len(), game.feature_names().len());
    }

    #[test]
    fn render_shows_mario() {
        let game = Mario::new(1);
        let frame = game.render(24, 24);
        assert_eq!(frame.len(), 576);
        assert!(frame.contains(&1.0));
    }

    #[test]
    fn dungeon_ceiling_bug_is_reachable() {
        // Drive Mario to the dungeon, then jump repeatedly at the ceiling.
        let mut game = Mario::new(1);
        let mut steps = 0;
        while game.x() < 96.0 && steps < 3000 {
            let a = game.oracle_action();
            if game.step(a).terminal {
                panic!("oracle died before the dungeon at x={}", game.x());
            }
            steps += 1;
        }
        let mut crashed = false;
        for _ in 0..200 {
            let r = game.step(3); // jump in place at the ceiling
            if game.bug_triggered() {
                crashed = true;
                break;
            }
            if r.terminal {
                break;
            }
        }
        assert!(crashed, "the missing boundary check should be reachable");
        assert!(game.coverage().hits("oob_ceiling_bug") > 0);
    }

    #[test]
    fn reset_restores_everything() {
        let mut game = Mario::new(9);
        for _ in 0..50 {
            game.step(4);
        }
        game.reset();
        assert_eq!(game.progress(), 1.0 / LEVEL_LEN);
        assert_eq!(game.coverage().fraction(), 0.0);
    }

    #[test]
    fn clone_checkpoints_full_state() {
        let mut game = Mario::new(6);
        for _ in 0..30 {
            game.step(game.oracle_action());
        }
        let snapshot = game.clone();
        for _ in 0..30 {
            game.step(2);
        }
        assert_ne!(game.features(), snapshot.features());
        let restored = snapshot.clone();
        assert_eq!(restored.features(), snapshot.features());
    }
}
