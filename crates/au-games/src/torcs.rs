//! Torcs: track driving with steering control.
//!
//! The paper's TORCS case study (Section 6.3) annotates the `steer`
//! variable as the target and lets Algorithm 2 extract twenty feature
//! variables, pruning `roll` (a near-duplicate of `posX`, Fig. 15) and
//! `accX` (near-constant, Fig. 16). This simulator exposes exactly those
//! variables: `posX`/`roll` track the lateral offset redundantly, and
//! `accX` barely moves because the car drives at constant speed.

use crate::game::{Game, StepResult};
use au_trace::AnalysisDb;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TRACK_SEGMENTS: usize = 400;
const HALF_WIDTH: f64 = 1.0;
const STEER_STEP: f64 = 0.05;
/// Lookahead segments exposed as features.
const LOOKAHEAD: usize = 5;

/// The Torcs benchmark.
///
/// Actions: `0` = steer left, `1` = straight, `2` = steer right (the three
/// model outputs of the paper's comparison).
#[derive(Debug, Clone)]
pub struct Torcs {
    /// Curvature per track segment.
    track: Vec<f64>,
    /// Current segment index.
    s: usize,
    /// Lateral offset from the center line (`posX` in the paper).
    pos: f64,
    /// Heading angle relative to the track direction.
    angle: f64,
    /// Longitudinal acceleration — near-constant (cruise control), the
    /// paper's `accX` pruning example.
    acc_x: f64,
    bumped: bool,
    finished: bool,
    seed: u64,
}

impl Torcs {
    /// Builds a seeded track of smooth alternating curves.
    pub fn new(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut track = Vec::with_capacity(TRACK_SEGMENTS);
        let mut curv = 0.0f64;
        for _ in 0..TRACK_SEGMENTS {
            // Smooth random walk over curvature, bounded.
            curv = (curv + rng.gen_range(-0.01..0.01)).clamp(-0.05, 0.05);
            track.push(curv);
        }
        Torcs {
            track,
            s: 0,
            pos: 0.0,
            angle: 0.0,
            acc_x: 0.0,
            bumped: false,
            finished: false,
            seed,
        }
    }

    /// Lateral offset (`posX`).
    pub fn pos_x(&self) -> f64 {
        self.pos
    }

    /// The redundant `roll` variable: physically tied to the lateral
    /// offset, so its trace duplicates `posX` (Fig. 15).
    pub fn roll(&self) -> f64 {
        self.pos
    }

    /// The near-constant `accX` variable (Fig. 16): cruise control keeps
    /// longitudinal acceleration within a hair of zero.
    pub fn acc_x(&self) -> f64 {
        self.acc_x
    }

    fn curvature_at(&self, offset: usize) -> f64 {
        let idx = (self.s + offset).min(TRACK_SEGMENTS - 1);
        self.track[idx]
    }
}

impl Game for Torcs {
    fn name(&self) -> &'static str {
        "Torcs"
    }

    fn n_actions(&self) -> usize {
        3
    }

    fn reset(&mut self) {
        *self = Torcs::new(self.seed);
    }

    fn step(&mut self, action: usize) -> StepResult {
        assert!(action < 3, "torcs has 3 actions");
        if self.bumped || self.finished {
            return StepResult {
                reward: 0.0,
                terminal: true,
            };
        }
        let steer = match action {
            0 => -STEER_STEP,
            2 => STEER_STEP,
            _ => 0.0,
        };
        self.angle += steer;
        // The track curving under the car shifts its relative position.
        self.pos += self.angle + self.curvature_at(0);
        // accX: a launch burst on the very first frame, then cruise-control
        // jitter near zero — so the min-max-scaled trace has variance just
        // under the paper's ε₂ = 0.01 (Fig. 16 reports ~0.007).
        self.acc_x = if self.s == 0 {
            1.0
        } else {
            0.002 * ((self.s as f64) * 0.7).sin()
        };
        self.s += 1;

        if self.pos.abs() > HALF_WIDTH {
            self.bumped = true;
            return StepResult {
                reward: -10.0,
                terminal: true,
            };
        }
        if self.s >= TRACK_SEGMENTS {
            self.finished = true;
            return StepResult {
                reward: 10.0,
                terminal: true,
            };
        }
        // Centered driving pays more.
        StepResult {
            reward: 1.0 - self.pos.abs() / HALF_WIDTH,
            terminal: false,
        }
    }

    fn features(&self) -> Vec<f64> {
        let mut f = vec![
            self.pos,
            self.angle,
            self.roll(),
            self.acc_x,
            1.0, /* speed */
        ];
        for i in 1..=LOOKAHEAD {
            f.push(self.curvature_at(i) * 20.0);
        }
        f
    }

    fn feature_names(&self) -> Vec<&'static str> {
        vec![
            "posX", "angle", "roll", "accX", "speedX", "curv1", "curv2", "curv3", "curv4", "curv5",
        ]
    }

    fn render(&self, width: usize, height: usize) -> Vec<f64> {
        // Driver's view: each row is an upcoming segment; road edges drawn
        // relative to the accumulating curvature; car marked on the bottom
        // row.
        let mut frame = vec![0.0; width * height];
        let mut drift = 0.0;
        for row in 0..height {
            let seg = height - 1 - row; // far rows at top
            drift += self.curvature_at(seg) * 8.0;
            let center = 0.5 + drift;
            let half = 0.35;
            for side in [-1.0, 1.0] {
                let edge = center + side * half;
                if (0.0..1.0).contains(&edge) {
                    let col = (edge * width as f64) as usize;
                    frame[row * width + col.min(width - 1)] = 0.6;
                }
            }
        }
        let car_col = (((self.pos / HALF_WIDTH) * 0.35 + 0.5) * width as f64)
            .clamp(0.0, width as f64 - 1.0) as usize;
        frame[(height - 1) * width + car_col] = 1.0;
        frame
    }

    fn oracle_action(&self) -> usize {
        // Proportional controller: align the heading against the offset and
        // the upcoming curvature.
        let desired = -(self.pos * 0.35) - self.curvature_at(1) * 1.5;
        if self.angle > desired + STEER_STEP / 2.0 {
            0
        } else if self.angle < desired - STEER_STEP / 2.0 {
            2
        } else {
            1
        }
    }

    fn progress(&self) -> f64 {
        self.s as f64 / TRACK_SEGMENTS as f64
    }

    fn succeeded(&self) -> bool {
        self.finished
    }

    fn record_dependences(&self, db: &mut AnalysisDb) {
        db.record_assign("angle", &["angle", "steer"], None, "drive");
        db.record_assign("posX", &["posX", "angle", "curv1"], None, "drive");
        db.record_assign("roll", &["posX"], None, "physics");
        db.record_assign("accX", &["speedX"], None, "physics");
        db.record_assign("curv1", &["curv1"], None, "trackSensor");
        db.record_assign("curv2", &["curv2"], None, "trackSensor");
        db.record_assign("curv3", &["curv3"], None, "trackSensor");
        db.record_assign("curv4", &["curv4"], None, "trackSensor");
        db.record_assign("curv5", &["curv5"], None, "trackSensor");
        db.record_assign("speedX", &["speedX"], None, "physics");
        db.record_assign("damage", &["posX", "roll", "curv1"], None, "drive");
        db.record_assign(
            "score",
            &[
                "damage", "steer", "accX", "curv2", "curv3", "curv4", "curv5",
            ],
            None,
            "gameLoop",
        );
        db.mark_target("steer");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use au_trace::{extract_rl, RlParams};

    #[test]
    fn deterministic_under_seed() {
        let mut a = Torcs::new(1);
        let mut b = Torcs::new(1);
        for i in 0..300 {
            assert_eq!(a.step(i % 3), b.step(i % 3));
        }
    }

    #[test]
    fn oracle_finishes_the_track() {
        let mut game = Torcs::new(7);
        for _ in 0..1000 {
            let a = game.oracle_action();
            if game.step(a).terminal {
                break;
            }
        }
        assert!(game.succeeded(), "oracle progress {}", game.progress());
    }

    #[test]
    fn never_steering_bumps_the_wall() {
        let mut game = Torcs::new(3);
        let mut terminal = false;
        for _ in 0..TRACK_SEGMENTS + 10 {
            if game.step(1).terminal {
                terminal = true;
                break;
            }
        }
        assert!(terminal);
        assert!(!game.succeeded(), "curvature accumulates without steering");
    }

    #[test]
    fn roll_duplicates_pos_x() {
        let mut game = Torcs::new(5);
        for _ in 0..50 {
            game.step(game.oracle_action());
            assert_eq!(game.roll(), game.pos_x());
        }
    }

    #[test]
    fn acc_x_is_nearly_constant_after_launch() {
        let mut game = Torcs::new(5);
        let mut values = Vec::new();
        for i in 0..100 {
            game.step(game.oracle_action());
            if i >= 5 {
                values.push(game.acc_x());
            }
        }
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64;
        assert!(var < 1e-4, "accX variance {var}");
    }

    #[test]
    fn algorithm2_prunes_roll_and_accx() {
        // Reproduce the paper's Fig. 15/16 pruning on live traces.
        let mut game = Torcs::new(9);
        let mut db = AnalysisDb::new();
        game.record_dependences(&mut db);
        for _ in 0..120 {
            game.record_frame(&mut db);
            let a = game.oracle_action();
            if game.step(a).terminal {
                break;
            }
        }
        let features = extract_rl(&db, RlParams::default());
        let steer = db.id("steer").unwrap();
        let names: Vec<&str> = features[&steer].iter().map(|&v| db.name(v)).collect();
        assert!(names.contains(&"posX"), "{names:?}");
        assert!(!names.contains(&"roll"), "roll is ε₁-pruned: {names:?}");
        assert!(!names.contains(&"accX"), "accX is ε₂-pruned: {names:?}");
    }

    #[test]
    fn features_and_names_align() {
        let game = Torcs::new(1);
        assert_eq!(game.features().len(), game.feature_names().len());
    }
}
