//! Breakout: the Atari-style full brick wall — the simplest RL benchmark,
//! and the only one whose `Raw` pixel model also converges in the paper
//! ("the playing field for this game is not as complex as other
//! benchmarks").

use crate::game::{Game, StepResult};
use crate::paddle::PaddleCore;
use au_trace::AnalysisDb;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The Breakout benchmark.
///
/// Actions: `0` = stay, `1` = left, `2` = right. The paper's score is the
/// number of bricks hit before missing the ball ([`Breakout::bricks_hit`]).
#[derive(Debug, Clone)]
pub struct Breakout {
    core: PaddleCore,
    seed: u64,
}

impl Breakout {
    /// Builds a seeded game: 3 full rows × 12 columns.
    pub fn new(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let serve = rng.gen_range(-0.5..0.5f64);
        Breakout {
            core: PaddleCore::new(3, 12, |_, _| true, serve),
            seed,
        }
    }

    /// Bricks hit so far — the paper's Breakout score.
    pub fn bricks_hit(&self) -> usize {
        self.core.hits
    }
}

impl Game for Breakout {
    fn name(&self) -> &'static str {
        "Breakout"
    }

    fn n_actions(&self) -> usize {
        3
    }

    fn reset(&mut self) {
        *self = Breakout::new(self.seed);
    }

    fn step(&mut self, action: usize) -> StepResult {
        if self.core.missed || self.core.cleared() {
            return StepResult {
                reward: 0.0,
                terminal: true,
            };
        }
        let broken = self.core.step(action);
        if self.core.missed {
            return StepResult {
                reward: -5.0,
                terminal: true,
            };
        }
        if self.core.cleared() {
            return StepResult {
                reward: 10.0,
                terminal: true,
            };
        }
        StepResult {
            reward: broken as f64,
            terminal: false,
        }
    }

    fn features(&self) -> Vec<f64> {
        self.core.features()
    }

    fn feature_names(&self) -> Vec<&'static str> {
        PaddleCore::feature_names()
    }

    fn render(&self, width: usize, height: usize) -> Vec<f64> {
        self.core.render(width, height)
    }

    fn oracle_action(&self) -> usize {
        self.core.oracle_action()
    }

    fn progress(&self) -> f64 {
        self.core.hits as f64 / self.core.total_bricks.max(1) as f64
    }

    fn succeeded(&self) -> bool {
        self.core.cleared()
    }

    fn record_dependences(&self, db: &mut AnalysisDb) {
        db.record_assign("paddleX", &["paddleX", "actionKey"], None, "updatePaddle");
        db.record_assign("ballX", &["ballX", "ballVX"], None, "updateBall");
        db.record_assign("ballY", &["ballY", "ballVY"], None, "updateBall");
        db.record_assign(
            "ballVX",
            &["ballVX", "paddleX", "ballX"],
            None,
            "updateBall",
        );
        db.record_assign("ballVY", &["ballVY", "ballY"], None, "updateBall");
        db.record_assign("relBallX", &["ballX", "paddleX"], None, "gameLoop");
        db.record_assign(
            "bricksLeft",
            &["bricksLeft", "ballX", "ballY"],
            None,
            "brickCollision",
        );
        db.record_assign(
            "score",
            &["bricksLeft", "relBallX", "actionKey"],
            None,
            "gameLoop",
        );
        db.mark_target("actionKey");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_wall_layout() {
        let game = Breakout::new(1);
        assert_eq!(game.core.total_bricks, 36);
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = Breakout::new(2);
        let mut b = Breakout::new(2);
        for i in 0..200 {
            assert_eq!(a.step(i % 3), b.step(i % 3));
        }
    }

    #[test]
    fn oracle_hits_many_bricks() {
        let mut game = Breakout::new(3);
        for _ in 0..8000 {
            let a = game.oracle_action();
            if game.step(a).terminal {
                break;
            }
        }
        assert!(
            game.bricks_hit() >= 8,
            "oracle should rack up hits, got {}",
            game.bricks_hit()
        );
    }

    #[test]
    fn score_counts_hits_before_miss() {
        let mut game = Breakout::new(4);
        // Play badly on purpose: hold left.
        for _ in 0..5000 {
            if game.step(1).terminal {
                break;
            }
        }
        assert!(game.bricks_hit() <= game.core.total_bricks);
        assert_eq!(game.progress(), game.bricks_hit() as f64 / 36.0);
    }
}
