//! The [`Game`] trait: the contract every interactive benchmark implements.

use au_trace::AnalysisDb;

/// Outcome of one game step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepResult {
    /// Reward for the action just taken.
    pub reward: f64,
    /// Whether the episode ended (death, wall bump, stage clear, …).
    pub terminal: bool,
}

/// An interactive program that the Autonomizer can drive.
///
/// Implementations are deterministic given their construction seed and are
/// `Clone` so checkpoint/restore can snapshot the whole program state σ.
pub trait Game: std::fmt::Debug {
    /// Benchmark name as used in the paper's tables.
    fn name(&self) -> &'static str;

    /// Size of the discrete action space.
    fn n_actions(&self) -> usize;

    /// Resets to the initial state (a fresh episode).
    fn reset(&mut self);

    /// Advances one frame under `action`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `action >= n_actions()`.
    fn step(&mut self, action: usize) -> StepResult;

    /// Internal program state — the paper's `All` feature vector, i.e. the
    /// variables Algorithm 2 selects and `au_extract` collects each frame.
    fn features(&self) -> Vec<f64>;

    /// Names of the feature variables, parallel to [`Game::features`].
    fn feature_names(&self) -> Vec<&'static str>;

    /// Rasterizes the current state into a `width × height` grayscale frame
    /// in `[0, 1]` — the `Raw` input.
    fn render(&self, width: usize, height: usize) -> Vec<f64>;

    /// A scripted near-optimal action — the stand-in for the paper's human
    /// players.
    fn oracle_action(&self) -> usize;

    /// Episode progress in `[0, 1]` (distance travelled, bricks cleared…).
    fn progress(&self) -> f64;

    /// Whether the episode's success condition has been reached (flag
    /// taken, all bricks cleared, finish line crossed).
    fn succeeded(&self) -> bool;

    /// Records this frame's variable values and usage sites into the
    /// analysis database (what Valgrind-style tracing observes per
    /// iteration). The default implementation records every feature
    /// variable as a loop-carried update inside `gameLoop`.
    fn record_frame(&self, db: &mut AnalysisDb) {
        let names = self.feature_names();
        let values = self.features();
        for (name, value) in names.iter().zip(values) {
            db.record_value(name, value);
            db.record_use(name, "gameLoop");
        }
    }

    /// Records the program's static dependence shape once (edges between
    /// state variables and the action target) — what dynamic tracing
    /// accumulates over a profiled run.
    fn record_dependences(&self, db: &mut AnalysisDb);

    /// Renders the current state as ASCII art (for terminal demos and
    /// debugging). Each brightness band maps to a character ramp.
    fn render_ascii(&self, width: usize, height: usize) -> String {
        const RAMP: [char; 6] = [' ', '.', ':', 'o', '#', '@'];
        let frame = self.render(width, height);
        let mut out = String::with_capacity((width + 1) * height);
        for row in 0..height {
            for col in 0..width {
                let v = frame[row * width + col].clamp(0.0, 1.0);
                let idx = ((v * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1);
                out.push(RAMP[idx]);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{Game, Mario};

    #[test]
    fn ascii_render_has_expected_shape() {
        let game = Mario::new(1);
        let art = game.render_ascii(20, 10);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 10);
        assert!(lines.iter().all(|l| l.chars().count() == 20));
        // Mario's bright pixel maps to the densest character.
        assert!(art.contains('@'));
    }
}
