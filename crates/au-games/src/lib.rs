//! Interactive benchmark programs (the paper's RL case studies).
//!
//! Five game/driving simulators reproduce the paper's reinforcement-learning
//! evaluation suite, each exposing both **internal program state** (the
//! paper's `All` setting — what `au_extract` collects from program
//! variables) and **raw pixel frames** (the `Raw` / DeepMind-style setting):
//!
//! - [`Flappybird`]: one-button pipe-gap navigation;
//! - [`Mario`]: a side-scrolling platformer with goombas, pits, pipes,
//!   coins, and a flag pole, plus [`Coverage`] counters for the paper's
//!   *software self-testing* case study (Section 2);
//! - [`Arkanoid`]: paddle/ball/bricks with a structured layout;
//! - [`Breakout`]: the simpler Atari-style variant (the one game where the
//!   paper's `Raw` model also converges);
//! - [`Torcs`]: track driving with steering control, including the
//!   redundant (`roll`) and unchanging (`accX`) state variables behind the
//!   paper's Figs. 15–16 pruning examples.
//!
//! All games implement the [`Game`] trait, are deterministic under their
//! seed, and are `Clone` so `au_checkpoint`/`au_restore` can snapshot them.
//! [`harness`] trains agents through the Autonomizer primitives exactly as
//! the paper's Fig. 2 game loop does.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arkanoid;
pub mod breakout;
mod coverage;
pub mod flappy;
mod game;
pub mod harness;
pub mod mario;
mod paddle;
pub mod torcs;

pub use arkanoid::Arkanoid;
pub use breakout::Breakout;
pub use coverage::Coverage;
pub use flappy::Flappybird;
pub use game::{Game, StepResult};
pub use mario::Mario;
pub use torcs::Torcs;
