//! Flappybird: one-button navigation through pipe gaps.

use crate::game::{Game, StepResult};
use au_trace::AnalysisDb;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const GRAVITY: f64 = 0.004;
const FLAP_VY: f64 = -0.02;
const SPEED: f64 = 0.004;
const GAP_HALF: f64 = 0.14;
const PIPE_HALF_WIDTH: f64 = 0.015;

/// The Flappybird benchmark. Vertical position grows downward in `[0, 1]`.
///
/// Actions: `0` = glide, `1` = flap.
#[derive(Debug, Clone)]
pub struct Flappybird {
    bird_y: f64,
    bird_vy: f64,
    x: f64,
    /// `(x, gap_center)` per pipe, sorted by x.
    pipes: Vec<(f64, f64)>,
    dead: bool,
    finished: bool,
    seed: u64,
}

impl Flappybird {
    /// Creates a course determined by `seed` (12 pipes over a unit-length
    /// course).
    pub fn new(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        // Gap centers follow a bounded random walk so consecutive pipes
        // stay physically reachable at the bird's climb rate.
        let mut gap = 0.5f64;
        let pipes = (0..12)
            .map(|i| {
                let x = 0.15 + i as f64 * 0.07;
                gap = (gap + rng.gen_range(-0.18..0.18f64)).clamp(0.25, 0.75);
                (x, gap)
            })
            .collect();
        Flappybird {
            bird_y: 0.5,
            bird_vy: 0.0,
            x: 0.0,
            pipes,
            dead: false,
            finished: false,
            seed,
        }
    }

    /// The next pipe at or ahead of the bird, if any.
    fn next_pipe(&self) -> Option<(f64, f64)> {
        self.pipes
            .iter()
            .copied()
            .find(|&(px, _)| px + PIPE_HALF_WIDTH >= self.x)
    }

    fn pipe_after_next(&self) -> Option<(f64, f64)> {
        self.pipes
            .iter()
            .copied()
            .filter(|&(px, _)| px + PIPE_HALF_WIDTH >= self.x)
            .nth(1)
    }

    /// Whether the bird has collided or flown out of bounds.
    pub fn dead(&self) -> bool {
        self.dead
    }
}

impl Game for Flappybird {
    fn name(&self) -> &'static str {
        "Flappybird"
    }

    fn n_actions(&self) -> usize {
        2
    }

    fn reset(&mut self) {
        *self = Flappybird::new(self.seed);
    }

    fn step(&mut self, action: usize) -> StepResult {
        assert!(action < 2, "flappy has 2 actions");
        if self.dead || self.finished {
            return StepResult {
                reward: 0.0,
                terminal: true,
            };
        }
        if action == 1 {
            self.bird_vy = FLAP_VY;
        }
        self.bird_vy += GRAVITY;
        self.bird_y += self.bird_vy;
        self.x += SPEED;

        // Out of bounds.
        if !(0.0..=1.0).contains(&self.bird_y) {
            self.dead = true;
            return StepResult {
                reward: -10.0,
                terminal: true,
            };
        }
        // Pipe collision.
        for &(px, gap) in &self.pipes {
            if (self.x - px).abs() <= PIPE_HALF_WIDTH && (self.bird_y - gap).abs() > GAP_HALF {
                self.dead = true;
                return StepResult {
                    reward: -10.0,
                    terminal: true,
                };
            }
        }
        if self.x >= 1.0 {
            self.finished = true;
            return StepResult {
                reward: 10.0,
                terminal: true,
            };
        }
        StepResult {
            reward: 0.1,
            terminal: false,
        }
    }

    fn features(&self) -> Vec<f64> {
        let (nx, ngap) = self.next_pipe().unwrap_or((1.0, 0.5));
        let (_, ngap2) = self.pipe_after_next().unwrap_or((1.2, 0.5));
        vec![
            self.bird_y,
            self.bird_vy * 20.0, // scale velocity into a comparable range
            (nx - self.x) * 5.0,
            ngap,
            self.bird_y - ngap,
            ngap2,
        ]
    }

    fn feature_names(&self) -> Vec<&'static str> {
        vec!["birdY", "birdVY", "pipeDX", "gapY", "relY", "gap2Y"]
    }

    fn render(&self, width: usize, height: usize) -> Vec<f64> {
        let mut frame = vec![0.0; width * height];
        // Pipes within the visible window [x, x+0.25).
        let window = 0.25;
        for &(px, gap) in &self.pipes {
            if px < self.x || px >= self.x + window {
                continue;
            }
            let col = (((px - self.x) / window) * width as f64) as usize;
            let col = col.min(width - 1);
            for row in 0..height {
                let y = row as f64 / height as f64;
                if (y - gap).abs() > GAP_HALF {
                    frame[row * width + col] = 0.6;
                }
            }
        }
        // Bird at the left edge.
        let row = ((self.bird_y * height as f64) as usize).min(height - 1);
        frame[row * width] = 1.0;
        frame
    }

    fn oracle_action(&self) -> usize {
        let target = self.next_pipe().map(|(_, g)| g).unwrap_or(0.5);
        // Flap whenever below the gap center (y grows downward); the weak
        // flap impulse makes repeated flapping a steady climb.
        if self.bird_y > target {
            1
        } else {
            0
        }
    }

    fn progress(&self) -> f64 {
        self.x.min(1.0)
    }

    fn succeeded(&self) -> bool {
        self.finished
    }

    fn record_dependences(&self, db: &mut AnalysisDb) {
        // The loop-carried updates a dynamic tracer observes: the bird
        // integrates its own state; collisions combine bird and pipe state.
        db.record_assign("birdVY", &["birdVY", "actionKey"], None, "updateBird");
        db.record_assign("birdY", &["birdY", "birdVY"], None, "updateBird");
        db.record_assign("pipeDX", &["pipeDX"], None, "checkPipes");
        db.record_assign("gapY", &["gapY"], None, "checkPipes");
        db.record_assign("gap2Y", &["gap2Y"], None, "checkPipes");
        db.record_assign("relY", &["birdY", "gapY"], None, "checkPipes");
        db.record_assign("collide", &["birdY", "relY", "pipeDX"], None, "gameLoop");
        db.record_assign("score", &["collide", "actionKey"], None, "gameLoop");
        db.mark_target("actionKey");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let mut a = Flappybird::new(3);
        let mut b = Flappybird::new(3);
        for _ in 0..50 {
            assert_eq!(a.step(0), b.step(0));
        }
        assert_eq!(a.features(), b.features());
    }

    #[test]
    fn gliding_forever_dies() {
        let mut game = Flappybird::new(1);
        let mut terminal = false;
        for _ in 0..2000 {
            if game.step(0).terminal {
                terminal = true;
                break;
            }
        }
        assert!(terminal, "gravity must end a glide-only run");
        assert!(game.dead());
    }

    #[test]
    fn oracle_beats_random_glide() {
        let mut oracle_game = Flappybird::new(7);
        for _ in 0..2000 {
            let a = oracle_game.oracle_action();
            if oracle_game.step(a).terminal {
                break;
            }
        }
        let mut glide_game = Flappybird::new(7);
        for _ in 0..2000 {
            if glide_game.step(0).terminal {
                break;
            }
        }
        assert!(
            oracle_game.progress() > glide_game.progress(),
            "oracle {} vs glide {}",
            oracle_game.progress(),
            glide_game.progress()
        );
    }

    #[test]
    fn oracle_finishes_the_course() {
        let mut game = Flappybird::new(11);
        for _ in 0..5000 {
            let a = game.oracle_action();
            if game.step(a).terminal {
                break;
            }
        }
        assert!(
            game.progress() > 0.9,
            "oracle should clear most of the course, got {}",
            game.progress()
        );
    }

    #[test]
    fn features_and_names_align() {
        let game = Flappybird::new(1);
        assert_eq!(game.features().len(), game.feature_names().len());
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut game = Flappybird::new(5);
        let initial = game.features();
        game.step(1);
        game.step(1);
        game.reset();
        assert_eq!(game.features(), initial);
    }

    #[test]
    fn render_contains_bird_and_pipes() {
        let game = Flappybird::new(2);
        let frame = game.render(16, 16);
        assert_eq!(frame.len(), 256);
        assert!(frame.contains(&1.0), "bird pixel present");
        assert!(
            frame.iter().any(|&p| p > 0.5 && p < 1.0),
            "pipe pixels present"
        );
    }

    #[test]
    fn terminal_steps_are_absorbing() {
        let mut game = Flappybird::new(1);
        while !game.step(0).terminal {}
        let r = game.step(1);
        assert!(r.terminal);
        assert_eq!(r.reward, 0.0);
    }
}
