//! Code-coverage substrate (the reproduction's gcov).
//!
//! The paper's self-testing case study rewards Mario for *covering new
//! code*: "any improvement of code coverage results in large reward"
//! (Section 2, line 38 of Fig. 2). This module provides the counters that
//! play gcov's role: games mark named code regions as they execute, and the
//! harness turns first-time hits into reward.

use std::collections::BTreeMap;

/// Region-hit counters over a fixed universe of named code regions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Coverage {
    regions: BTreeMap<&'static str, u64>,
    universe: Vec<&'static str>,
}

impl Coverage {
    /// Creates coverage tracking for the given region universe.
    pub fn new(universe: &[&'static str]) -> Self {
        Coverage {
            regions: BTreeMap::new(),
            universe: universe.to_vec(),
        }
    }

    /// Marks a region as executed. Returns `true` when this is the region's
    /// first hit (i.e. coverage just improved).
    pub fn hit(&mut self, region: &'static str) -> bool {
        let counter = self.regions.entry(region).or_insert(0);
        *counter += 1;
        *counter == 1
    }

    /// Fraction of the universe covered, in `[0, 1]`.
    pub fn fraction(&self) -> f64 {
        if self.universe.is_empty() {
            return 0.0;
        }
        let covered = self
            .universe
            .iter()
            .filter(|r| self.regions.get(*r).copied().unwrap_or(0) > 0)
            .count();
        covered as f64 / self.universe.len() as f64
    }

    /// Number of distinct regions hit.
    pub fn covered(&self) -> usize {
        self.regions.values().filter(|&&c| c > 0).count()
    }

    /// Total hits of a specific region.
    pub fn hits(&self, region: &str) -> u64 {
        self.regions.get(region).copied().unwrap_or(0)
    }

    /// Clears all counters (fresh measurement window).
    pub fn clear(&mut self) {
        self.regions.clear();
    }

    /// Regions never executed — the self-testing targets.
    pub fn uncovered(&self) -> Vec<&'static str> {
        self.universe
            .iter()
            .filter(|r| self.regions.get(*r).copied().unwrap_or(0) == 0)
            .copied()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_hit_reports_improvement() {
        let mut cov = Coverage::new(&["a", "b"]);
        assert!(cov.hit("a"));
        assert!(!cov.hit("a"));
        assert_eq!(cov.hits("a"), 2);
    }

    #[test]
    fn fraction_counts_universe_only() {
        let mut cov = Coverage::new(&["a", "b", "c", "d"]);
        cov.hit("a");
        cov.hit("b");
        cov.hit("zzz"); // outside the universe: counted in covered(), not fraction
        assert!((cov.fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn uncovered_lists_missing_regions() {
        let mut cov = Coverage::new(&["a", "b"]);
        cov.hit("b");
        assert_eq!(cov.uncovered(), vec!["a"]);
    }

    #[test]
    fn clear_resets() {
        let mut cov = Coverage::new(&["a"]);
        cov.hit("a");
        cov.clear();
        assert_eq!(cov.fraction(), 0.0);
    }

    #[test]
    fn empty_universe_fraction_is_zero() {
        let cov = Coverage::new(&[]);
        assert_eq!(cov.fraction(), 0.0);
    }
}
