//! Training/deployment harness: drives a [`Game`] through the Autonomizer
//! primitives exactly as the paper's annotated game loop does (Fig. 2).
//!
//! Per frame the harness `au_extract`s the feature variables (or the raw
//! pixel frame for the `Raw` baseline), `au_serialize`s them,
//! calls `au_NN` with the reward/terminal signals, and `au_write_back`s the
//! action. Episodes end through `au_restore` of a checkpoint taken at the
//! start, mirroring lines 27 and 48 of the paper's Mario example.

use crate::game::Game;
use au_core::{AuError, Engine, Mode};

/// Where the model inputs come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureSource {
    /// Extracted internal program state — the paper's `All` setting.
    Internal,
    /// Rasterized pixel frames — the paper's `Raw` (DeepMind-style)
    /// setting.
    Pixels {
        /// Frame width.
        width: usize,
        /// Frame height.
        height: usize,
    },
}

/// Result of one episode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpisodeOutcome {
    /// Final progress in `[0, 1]`.
    pub progress: f64,
    /// Whether the success condition was reached.
    pub succeeded: bool,
    /// Frames played.
    pub steps: usize,
    /// Sum of environment rewards.
    pub total_reward: f64,
}

/// Result of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Per-episode outcomes, in order.
    pub episodes: Vec<EpisodeOutcome>,
    /// Total scalars ever appended to the database store — the paper's
    /// trace-size metric (Table 2).
    pub trace_values: u64,
}

impl TrainReport {
    /// Mean progress over the last `n` episodes (the evaluation window).
    pub fn recent_progress(&self, n: usize) -> f64 {
        let tail: Vec<&EpisodeOutcome> = self.episodes.iter().rev().take(n).collect();
        if tail.is_empty() {
            return 0.0;
        }
        tail.iter().map(|e| e.progress).sum::<f64>() / tail.len() as f64
    }

    /// Success rate over the last `n` episodes.
    pub fn recent_success(&self, n: usize) -> f64 {
        let tail: Vec<&EpisodeOutcome> = self.episodes.iter().rev().take(n).collect();
        if tail.is_empty() {
            return 0.0;
        }
        tail.iter().filter(|e| e.succeeded).count() as f64 / tail.len() as f64
    }
}

/// Plays one full episode with the scripted oracle (the "human player").
pub fn run_oracle(game: &mut dyn Game, max_steps: usize) -> EpisodeOutcome {
    game.reset();
    let mut total_reward = 0.0;
    let mut steps = 0;
    for _ in 0..max_steps {
        let action = game.oracle_action();
        let result = game.step(action);
        total_reward += result.reward;
        steps += 1;
        if result.terminal {
            break;
        }
    }
    EpisodeOutcome {
        progress: game.progress(),
        succeeded: game.succeeded(),
        steps,
        total_reward,
    }
}

/// Plays one episode through the Autonomizer primitives.
///
/// In the engine's TR mode this trains the model online (Q-learning); in TS
/// mode it runs the greedy policy. An optional `shape_reward` callback adds
/// to the environment reward after each step — the self-testing case study
/// passes a coverage-delta bonus here.
///
/// # Errors
///
/// Propagates engine errors (unknown model, mismatched algorithm, …).
pub fn play_episode<G: Game + Clone>(
    engine: &mut Engine,
    model: &str,
    game: &mut G,
    max_steps: usize,
    source: FeatureSource,
    shape_reward: Option<&mut dyn FnMut(&G) -> f64>,
) -> Result<EpisodeOutcome, AuError> {
    let mut extract = move |game: &G, engine: &mut Engine| match source {
        FeatureSource::Internal => {
            let names = game.feature_names();
            for (name, value) in names.iter().zip(game.features()) {
                engine.au_extract(name, &[value]);
            }
            engine.au_serialize(&names)
        }
        FeatureSource::Pixels { width, height } => {
            engine.au_extract("FRAME", &game.render(width, height));
            "FRAME".to_owned()
        }
    };
    play_episode_custom(engine, model, game, max_steps, &mut extract, shape_reward)
}

/// Like [`play_episode`] but with a caller-supplied feature extractor —
/// used for the paper's `Manual` comparison setting (expert-preprocessed
/// features, Fig. 17).
///
/// The extractor receives the game and the engine; it must `au_extract` its
/// features and return the π name to feed `au_NN` (typically the result of
/// [`Engine::au_serialize`]).
///
/// # Errors
///
/// Propagates engine errors (unknown model, mismatched algorithm, …).
pub fn play_episode_custom<G: Game + Clone>(
    engine: &mut Engine,
    model: &str,
    game: &mut G,
    max_steps: usize,
    extract: &mut dyn FnMut(&G, &mut Engine) -> String,
    mut shape_reward: Option<&mut dyn FnMut(&G) -> f64>,
) -> Result<EpisodeOutcome, AuError> {
    game.reset();
    let checkpoint = engine.checkpoint_with(game);
    let n_actions = game.n_actions();
    let mut reward = 0.0;
    let mut terminal = false;
    let mut total_reward = 0.0;
    let mut steps = 0;
    let mut final_progress = game.progress();
    let mut final_success = game.succeeded();

    for _ in 0..max_steps {
        // Extract model inputs (Fig. 2 lines 9-22 / raw-frame variant).
        let ser = extract(game, engine);

        // au_NN: completes the previous transition with `reward`, selects
        // the next action (Fig. 2 lines 40-43).
        let action = engine.au_nn_rl(model, &ser, reward, terminal, "output", n_actions)?;
        if terminal {
            // Fig. 2 line 48: restore the checkpoint. The outcome was
            // recorded when the terminal step happened, below.
            *game = engine.restore_with(&checkpoint);
            break;
        }

        // au_write_back + act (lines 44-46).
        let mut action_key = vec![0.0; n_actions];
        engine.au_write_back("output", &mut action_key)?;
        debug_assert_eq!(action_key[action], 1.0);
        let result = game.step(action);
        steps += 1;
        reward = result.reward;
        if let Some(shaper) = shape_reward.as_deref_mut() {
            reward += shaper(game);
        }
        terminal = result.terminal;
        total_reward += reward;
        final_progress = game.progress();
        final_success = game.succeeded();
    }
    // Close the episode's pending transition so the next episode starts
    // clean. This runs both when the step budget expired mid-episode and
    // when the terminal step landed exactly on the last iteration (in
    // which case the in-loop delivery never executed).
    if steps >= max_steps {
        let ser = extract(game, engine);
        let _ = engine.au_nn_rl(model, &ser, reward, true, "output", n_actions)?;
    }

    Ok(EpisodeOutcome {
        progress: final_progress,
        succeeded: final_success,
        steps,
        total_reward,
    })
}

/// Builds a feature extractor for [`play_episode_custom`] that applies an
/// affine corruption `v * scale + offset` to every internal feature before
/// extraction — a drifted-sensor simulation for monitoring demos.
///
/// Train with [`FeatureSource::Internal`], deploy in TS mode with this
/// extractor, and the engine's drift detector sees inputs shifted off the
/// training distribution while the game itself plays unperturbed (only the
/// model's view of it drifts). `drift_extractor(1.0, 0.0)` is the identity
/// and reproduces [`FeatureSource::Internal`] exactly.
pub fn drift_extractor<G: Game>(scale: f64, offset: f64) -> impl FnMut(&G, &mut Engine) -> String {
    move |game: &G, engine: &mut Engine| {
        let names = game.feature_names();
        for (name, value) in names.iter().zip(game.features()) {
            engine.au_extract(name, &[value * scale + offset]);
        }
        engine.au_serialize(&names)
    }
}

/// Trains for `episodes` episodes (TR mode) and reports the learning curve.
///
/// # Errors
///
/// Propagates engine errors.
pub fn train<G: Game + Clone>(
    engine: &mut Engine,
    model: &str,
    game: &mut G,
    episodes: usize,
    max_steps: usize,
    source: FeatureSource,
) -> Result<TrainReport, AuError> {
    assert_eq!(engine.mode(), Mode::Train, "training requires TR mode");
    let mut outcomes = Vec::with_capacity(episodes);
    for _ in 0..episodes {
        outcomes.push(play_episode(engine, model, game, max_steps, source, None)?);
    }
    Ok(TrainReport {
        episodes: outcomes,
        trace_values: engine.total_extracted(),
    })
}

/// Evaluates the current policy greedily over `episodes` episodes without
/// learning (temporarily switching the engine to TS mode).
///
/// # Errors
///
/// Propagates engine errors.
pub fn evaluate<G: Game + Clone>(
    engine: &mut Engine,
    model: &str,
    game: &mut G,
    episodes: usize,
    max_steps: usize,
    source: FeatureSource,
) -> Result<TrainReport, AuError> {
    let prev = engine.mode();
    engine.set_mode(Mode::Test);
    let mut outcomes = Vec::with_capacity(episodes);
    for _ in 0..episodes {
        let out = play_episode(engine, model, game, max_steps, source, None);
        match out {
            Ok(o) => outcomes.push(o),
            Err(e) => {
                engine.set_mode(prev);
                return Err(e);
            }
        }
    }
    engine.set_mode(prev);
    Ok(TrainReport {
        episodes: outcomes,
        trace_values: engine.total_extracted(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flappy::Flappybird;
    use crate::mario::Mario;
    use crate::torcs::Torcs;
    use au_core::ModelConfig;
    use au_nn::rl::DqnConfig;

    fn small_q_config(seed: u64) -> ModelConfig {
        ModelConfig::q_dnn(&[32]).with_dqn(DqnConfig {
            hidden: vec![32],
            batch_size: 16,
            replay_capacity: 2000,
            target_sync_every: 50,
            epsilon_decay: 0.995,
            learning_rate: 2e-3,
            seed,
            ..DqnConfig::default()
        })
    }

    #[test]
    fn oracle_outcomes_are_sane() {
        let mut game = Flappybird::new(3);
        let out = run_oracle(&mut game, 2000);
        assert!(out.steps > 10);
        assert!(out.progress > 0.5);
    }

    #[test]
    fn episode_through_primitives_runs() {
        au_nn::set_init_seed(41);
        let mut engine = Engine::new(Mode::Train);
        engine.au_config("F", small_q_config(1)).unwrap();
        let mut game = Flappybird::new(1);
        let out = play_episode(
            &mut engine,
            "F",
            &mut game,
            500,
            FeatureSource::Internal,
            None,
        )
        .unwrap();
        assert!(out.steps > 0);
        // After restore, the database store is back to the checkpoint.
        assert_eq!(engine.db().get("output"), &[] as &[f64]);
    }

    #[test]
    fn training_improves_torcs_progress() {
        au_nn::set_init_seed(42);
        let mut engine = Engine::new(Mode::Train);
        engine.au_config("T", small_q_config(2)).unwrap();
        let mut game = Torcs::new(4);
        let report = train(
            &mut engine,
            "T",
            &mut game,
            60,
            450,
            FeatureSource::Internal,
        )
        .unwrap();
        let early: f64 = report.episodes[..10]
            .iter()
            .map(|e| e.progress)
            .sum::<f64>()
            / 10.0;
        let late = report.recent_progress(10);
        assert!(
            late > early,
            "learning should improve driving: early {early:.3} late {late:.3}"
        );
    }

    #[test]
    fn pixel_source_feeds_frames() {
        au_nn::set_init_seed(43);
        let mut engine = Engine::new(Mode::Train);
        let cfg = ModelConfig::q_cnn(1, 8, 8, &[16]).with_dqn(DqnConfig {
            hidden: vec![16],
            batch_size: 4,
            replay_capacity: 100,
            seed: 3,
            ..DqnConfig::default()
        });
        engine.au_config("Raw", cfg).unwrap();
        let mut game = Flappybird::new(2);
        let out = play_episode(
            &mut engine,
            "Raw",
            &mut game,
            30,
            FeatureSource::Pixels {
                width: 8,
                height: 8,
            },
            None,
        )
        .unwrap();
        assert!(out.steps > 0);
    }

    #[test]
    fn reward_shaping_hook_fires() {
        au_nn::set_init_seed(44);
        let mut engine = Engine::new(Mode::Train);
        engine.au_config("M", small_q_config(5)).unwrap();
        let mut game = Mario::new(1);
        let mut covered = 0usize;
        let mut bonus_total = 0.0;
        {
            let mut shaper = |g: &Mario| {
                let now = g.coverage().covered();
                let bonus = if now > covered { 30.0 } else { 0.0 };
                covered = now;
                bonus_total += bonus;
                bonus
            };
            play_episode(
                &mut engine,
                "M",
                &mut game,
                120,
                FeatureSource::Internal,
                Some(&mut shaper),
            )
            .unwrap();
        }
        assert!(
            bonus_total > 0.0,
            "coverage bonus should fire at least once"
        );
    }

    #[test]
    fn drift_extractor_applies_affine_corruption() {
        let mut engine = Engine::new(Mode::Train);
        let game = Flappybird::new(9);
        let expected: Vec<f64> = game.features().iter().map(|v| v * 2.0 + 10.0).collect();
        let mut extract = drift_extractor(2.0, 10.0);
        // au_serialize consumes the per-feature lists, so the corrupted
        // values are inspected through the combined entry it returns.
        let ser = extract(&game, &mut engine);
        assert_eq!(engine.db().get(&ser), expected.as_slice());
    }

    #[cfg(feature = "monitor")]
    #[test]
    fn drifted_deployment_trips_monitor() {
        use au_core::monitor::{AlertKind, MonitorConfig};

        au_nn::set_init_seed(46);
        let mut engine = Engine::new(Mode::Train);
        // Greedy on-policy play legitimately wanders somewhat off the
        // exploratory training distribution (and may warn about it); the
        // high threshold reserves the *drift* alert for injected sensor
        // faults, which shift every feature by many training ranges.
        engine.set_monitor_config(MonitorConfig::default().with_drift_threshold(5.0));
        engine.au_config("D", small_q_config(8)).unwrap();
        let mut game = Flappybird::new(3);
        for _ in 0..3 {
            play_episode(
                &mut engine,
                "D",
                &mut game,
                200,
                FeatureSource::Internal,
                None,
            )
            .unwrap();
        }

        engine.set_mode(Mode::Test);
        let mut clean = drift_extractor(1.0, 0.0);
        play_episode_custom(&mut engine, "D", &mut game, 100, &mut clean, None).unwrap();
        // Reports are taken before the monitor guard: both acquire the
        // monitor lock, and the guard must drop before the next episode.
        let report = engine.monitor_report();
        let mon = engine.monitor("D").unwrap();
        assert!(
            mon.alerts().iter().all(|a| a.kind != AlertKind::Drift),
            "on-policy play must not look like sensor drift: {report}"
        );
        drop(mon);

        // Drifted sensors: every feature shifted far outside training range.
        let mut drifted = drift_extractor(1.0, 50.0);
        play_episode_custom(&mut engine, "D", &mut game, 100, &mut drifted, None).unwrap();
        let report = engine.monitor_report();
        let mon = engine.monitor("D").unwrap();
        assert!(
            mon.alerts().iter().any(|a| a.kind == AlertKind::Drift),
            "drifted extraction should raise a drift alert: {report}"
        );
        let last = mon.last_drift().expect("baseline attached");
        assert_eq!(
            last.out_of_range,
            game.feature_names().len(),
            "every corrupted feature is outside the learned range"
        );
    }

    #[test]
    fn evaluate_does_not_learn() {
        au_nn::set_init_seed(45);
        let mut engine = Engine::new(Mode::Train);
        engine.au_config("E", small_q_config(6)).unwrap();
        let mut game = Flappybird::new(5);
        // One training episode to build the backend.
        play_episode(
            &mut engine,
            "E",
            &mut game,
            50,
            FeatureSource::Internal,
            None,
        )
        .unwrap();
        let steps_before = engine.model_stats("E").unwrap().train_steps;
        evaluate(&mut engine, "E", &mut game, 2, 50, FeatureSource::Internal).unwrap();
        assert_eq!(engine.model_stats("E").unwrap().train_steps, steps_before);
        assert_eq!(engine.mode(), Mode::Train, "mode restored");
    }
}
