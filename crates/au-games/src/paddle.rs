//! Shared paddle/ball/bricks physics used by Arkanoid and Breakout.

/// A brick wall: rows × cols of breakable cells in the top part of a unit
/// square playfield.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct PaddleCore {
    pub ball_x: f64,
    pub ball_y: f64,
    pub ball_vx: f64,
    pub ball_vy: f64,
    pub paddle_x: f64,
    pub paddle_half: f64,
    pub rows: usize,
    pub cols: usize,
    /// `true` = brick still present.
    pub bricks: Vec<bool>,
    pub total_bricks: usize,
    pub hits: usize,
    pub missed: bool,
}

/// Ball speed per frame.
const SPEED: f64 = 0.02;
/// Top region occupied by the brick wall.
const WALL_TOP: f64 = 0.08;
const WALL_BOTTOM: f64 = 0.38;
/// Paddle vertical position.
const PADDLE_Y: f64 = 0.95;
const PADDLE_STEP: f64 = 0.03;

impl PaddleCore {
    /// Creates a playfield; `layout(row, col)` decides which cells hold a
    /// brick.
    pub fn new(
        rows: usize,
        cols: usize,
        layout: impl Fn(usize, usize) -> bool,
        serve_angle: f64,
    ) -> Self {
        let bricks: Vec<bool> = (0..rows * cols)
            .map(|i| layout(i / cols, i % cols))
            .collect();
        let total = bricks.iter().filter(|&&b| b).count();
        PaddleCore {
            ball_x: 0.5,
            ball_y: 0.6,
            ball_vx: SPEED * serve_angle.sin(),
            ball_vy: -SPEED * serve_angle.cos().abs(),
            paddle_x: 0.5,
            paddle_half: 0.09,
            rows,
            cols,
            bricks,
            total_bricks: total,
            hits: 0,
            missed: false,
        }
    }

    pub fn bricks_left(&self) -> usize {
        self.bricks.iter().filter(|&&b| b).count()
    }

    pub fn cleared(&self) -> bool {
        self.bricks_left() == 0
    }

    fn brick_at(&self, x: f64, y: f64) -> Option<usize> {
        if !(0.0..1.0).contains(&x) || !(WALL_TOP..WALL_BOTTOM).contains(&y) {
            return None;
        }
        let row = ((y - WALL_TOP) / (WALL_BOTTOM - WALL_TOP) * self.rows as f64) as usize;
        let col = (x * self.cols as f64) as usize;
        let idx = row.min(self.rows - 1) * self.cols + col.min(self.cols - 1);
        self.bricks[idx].then_some(idx)
    }

    /// Advances one frame. `action`: 0 = stay, 1 = left, 2 = right.
    /// Returns the number of bricks broken this frame.
    pub fn step(&mut self, action: usize) -> usize {
        assert!(action < 3, "paddle games have 3 actions");
        if self.missed || self.cleared() {
            return 0;
        }
        match action {
            1 => self.paddle_x = (self.paddle_x - PADDLE_STEP).max(self.paddle_half),
            2 => self.paddle_x = (self.paddle_x + PADDLE_STEP).min(1.0 - self.paddle_half),
            _ => {}
        }
        self.ball_x += self.ball_vx;
        self.ball_y += self.ball_vy;

        // Side and top walls.
        if self.ball_x <= 0.0 {
            self.ball_x = -self.ball_x;
            self.ball_vx = self.ball_vx.abs();
        } else if self.ball_x >= 1.0 {
            self.ball_x = 2.0 - self.ball_x;
            self.ball_vx = -self.ball_vx.abs();
        }
        if self.ball_y <= 0.0 {
            self.ball_y = -self.ball_y;
            self.ball_vy = self.ball_vy.abs();
        }

        // Brick collision.
        let mut broken = 0;
        if let Some(idx) = self.brick_at(self.ball_x, self.ball_y) {
            self.bricks[idx] = false;
            self.hits += 1;
            broken += 1;
            self.ball_vy = -self.ball_vy;
        }

        // Paddle bounce.
        if self.ball_vy > 0.0
            && self.ball_y >= PADDLE_Y
            && self.ball_y <= PADDLE_Y + 0.03
            && (self.ball_x - self.paddle_x).abs() <= self.paddle_half
        {
            self.ball_vy = -self.ball_vy.abs();
            // English: contact point shapes the outgoing angle.
            let offset = (self.ball_x - self.paddle_x) / self.paddle_half;
            self.ball_vx = SPEED * offset * 0.9;
        }

        // Miss.
        if self.ball_y > 1.0 {
            self.missed = true;
        }
        broken
    }

    /// Internal feature vector shared by both games.
    pub fn features(&self) -> Vec<f64> {
        vec![
            self.ball_x,
            self.ball_y,
            self.ball_vx / SPEED,
            self.ball_vy / SPEED,
            self.paddle_x,
            self.ball_x - self.paddle_x,
            self.bricks_left() as f64 / self.total_bricks.max(1) as f64,
        ]
    }

    pub fn feature_names() -> Vec<&'static str> {
        vec![
            "ballX",
            "ballY",
            "ballVX",
            "ballVY",
            "paddleX",
            "relBallX",
            "bricksLeft",
        ]
    }

    /// Oracle: track the ball's x position.
    pub fn oracle_action(&self) -> usize {
        let diff = self.ball_x - self.paddle_x;
        if diff < -PADDLE_STEP / 2.0 {
            1
        } else if diff > PADDLE_STEP / 2.0 {
            2
        } else {
            0
        }
    }

    /// Grayscale render shared by both games.
    pub fn render(&self, width: usize, height: usize) -> Vec<f64> {
        let mut frame = vec![0.0; width * height];
        let to_px = |x: f64, y: f64| -> usize {
            let col = ((x * width as f64) as usize).min(width - 1);
            let row = ((y * height as f64) as usize).min(height - 1);
            row * width + col
        };
        for row in 0..self.rows {
            for col in 0..self.cols {
                if self.bricks[row * self.cols + col] {
                    let x = (col as f64 + 0.5) / self.cols as f64;
                    let y =
                        WALL_TOP + (row as f64 + 0.5) / self.rows as f64 * (WALL_BOTTOM - WALL_TOP);
                    frame[to_px(x, y)] = 0.6;
                }
            }
        }
        // Paddle.
        let steps = 5;
        for i in 0..=steps {
            let x =
                self.paddle_x - self.paddle_half + 2.0 * self.paddle_half * i as f64 / steps as f64;
            frame[to_px(x.clamp(0.0, 1.0), PADDLE_Y)] = 0.8;
        }
        frame[to_px(self.ball_x.clamp(0.0, 1.0), self.ball_y.clamp(0.0, 1.0))] = 1.0;
        frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full() -> PaddleCore {
        PaddleCore::new(2, 4, |_, _| true, 0.3)
    }

    #[test]
    fn serve_moves_up() {
        let mut core = full();
        let y0 = core.ball_y;
        core.step(0);
        assert!(core.ball_y < y0);
    }

    #[test]
    fn walls_reflect() {
        let mut core = full();
        core.ball_x = 0.01;
        core.ball_vx = -SPEED;
        core.ball_vy = 0.0;
        core.step(0);
        assert!(core.ball_vx > 0.0);
    }

    #[test]
    fn bricks_break_and_count() {
        let mut core = full();
        core.ball_x = 0.5;
        core.ball_y = WALL_BOTTOM + 0.01;
        core.ball_vx = 0.0;
        core.ball_vy = -SPEED;
        let broken = core.step(0);
        assert_eq!(broken, 1);
        assert_eq!(core.hits, 1);
        assert_eq!(core.bricks_left(), core.total_bricks - 1);
        assert!(core.ball_vy > 0.0, "ball reflects off the brick");
    }

    #[test]
    fn missing_the_ball_ends_play() {
        let mut core = full();
        core.ball_y = 0.99;
        core.ball_x = 0.1;
        core.paddle_x = 0.9; // far away
        core.ball_vy = SPEED;
        for _ in 0..5 {
            core.step(0);
        }
        assert!(core.missed);
    }

    #[test]
    fn paddle_bounce_applies_english() {
        let mut core = full();
        core.ball_x = core.paddle_x + core.paddle_half * 0.8;
        core.ball_y = PADDLE_Y - 0.005;
        core.ball_vx = 0.0;
        core.ball_vy = SPEED;
        core.step(0);
        assert!(core.ball_vy < 0.0);
        assert!(core.ball_vx > 0.0, "off-center hit angles the ball");
    }

    #[test]
    fn oracle_tracks_ball() {
        let mut core = full();
        core.ball_x = 0.1;
        core.paddle_x = 0.9;
        assert_eq!(core.oracle_action(), 1);
        core.ball_x = 0.95;
        assert_eq!(core.oracle_action(), 2);
    }

    #[test]
    fn paddle_clamped_to_field() {
        let mut core = full();
        for _ in 0..100 {
            core.step(1);
        }
        assert!(core.paddle_x >= core.paddle_half);
    }
}
