//! Arkanoid: paddle/ball/bricks with a structured, partially filled layout
//! (the "more complex playing field" the paper contrasts with Breakout).

use crate::game::{Game, StepResult};
use crate::paddle::PaddleCore;
use au_trace::AnalysisDb;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The Arkanoid benchmark.
///
/// Actions: `0` = stay, `1` = left, `2` = right. Score is the pair
/// (fraction of bricks cleared, all-clear success), as in the paper.
#[derive(Debug, Clone)]
pub struct Arkanoid {
    core: PaddleCore,
    seed: u64,
}

impl Arkanoid {
    /// Builds a seeded level: 4 rows × 10 columns with a patterned,
    /// hole-punched layout.
    pub fn new(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let holes: Vec<(usize, usize)> = (0..8)
            .map(|_| (rng.gen_range(0..4usize), rng.gen_range(0..10usize)))
            .collect();
        let serve = rng.gen_range(-0.6..0.6f64);
        let core = PaddleCore::new(
            4,
            10,
            |r, c| {
                // Checker-dense pattern with random holes — an uneven field.
                ((r + c) % 3 != 0) && !holes.contains(&(r, c))
            },
            serve,
        );
        Arkanoid { core, seed }
    }

    /// Bricks destroyed so far.
    pub fn bricks_hit(&self) -> usize {
        self.core.hits
    }
}

impl Game for Arkanoid {
    fn name(&self) -> &'static str {
        "Arkanoid"
    }

    fn n_actions(&self) -> usize {
        3
    }

    fn reset(&mut self) {
        *self = Arkanoid::new(self.seed);
    }

    fn step(&mut self, action: usize) -> StepResult {
        if self.core.missed || self.core.cleared() {
            return StepResult {
                reward: 0.0,
                terminal: true,
            };
        }
        let broken = self.core.step(action);
        if self.core.missed {
            return StepResult {
                reward: -10.0,
                terminal: true,
            };
        }
        if self.core.cleared() {
            return StepResult {
                reward: 10.0,
                terminal: true,
            };
        }
        StepResult {
            reward: broken as f64 * 2.0,
            terminal: false,
        }
    }

    fn features(&self) -> Vec<f64> {
        self.core.features()
    }

    fn feature_names(&self) -> Vec<&'static str> {
        PaddleCore::feature_names()
    }

    fn render(&self, width: usize, height: usize) -> Vec<f64> {
        self.core.render(width, height)
    }

    fn oracle_action(&self) -> usize {
        self.core.oracle_action()
    }

    fn progress(&self) -> f64 {
        1.0 - self.core.bricks_left() as f64 / self.core.total_bricks.max(1) as f64
    }

    fn succeeded(&self) -> bool {
        self.core.cleared()
    }

    fn record_dependences(&self, db: &mut AnalysisDb) {
        db.record_assign("paddleX", &["paddleX", "actionKey"], None, "updatePaddle");
        db.record_assign("ballX", &["ballX", "ballVX"], None, "updateBall");
        db.record_assign("ballY", &["ballY", "ballVY"], None, "updateBall");
        db.record_assign(
            "ballVX",
            &["ballVX", "paddleX", "ballX"],
            None,
            "updateBall",
        );
        db.record_assign("ballVY", &["ballVY", "ballY"], None, "updateBall");
        db.record_assign("relBallX", &["ballX", "paddleX"], None, "gameLoop");
        db.record_assign(
            "bricksLeft",
            &["bricksLeft", "ballX", "ballY"],
            None,
            "brickCollision",
        );
        db.record_assign(
            "score",
            &["bricksLeft", "relBallX", "actionKey"],
            None,
            "gameLoop",
        );
        db.mark_target("actionKey");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let mut a = Arkanoid::new(4);
        let mut b = Arkanoid::new(4);
        for i in 0..200 {
            assert_eq!(a.step(i % 3), b.step(i % 3));
        }
    }

    #[test]
    fn layout_has_holes() {
        let game = Arkanoid::new(1);
        let total = game.core.total_bricks;
        assert!(total < 40, "patterned layout leaves holes: {total}");
        assert!(total > 10);
    }

    #[test]
    fn oracle_clears_bricks() {
        let mut game = Arkanoid::new(2);
        for _ in 0..6000 {
            let a = game.oracle_action();
            if game.step(a).terminal {
                break;
            }
        }
        assert!(
            game.progress() > 0.3,
            "oracle should clear a chunk of the wall, got {}",
            game.progress()
        );
    }

    #[test]
    fn idle_paddle_eventually_misses() {
        let mut game = Arkanoid::new(3);
        let mut terminal = false;
        for _ in 0..10_000 {
            if game.step(0).terminal {
                terminal = true;
                break;
            }
        }
        assert!(terminal);
    }

    #[test]
    fn features_and_names_align() {
        let game = Arkanoid::new(1);
        assert_eq!(game.features().len(), game.feature_names().len());
    }

    #[test]
    fn breaking_bricks_rewards() {
        let mut game = Arkanoid::new(5);
        let mut got_reward = false;
        for _ in 0..6000 {
            let a = game.oracle_action();
            let r = game.step(a);
            if r.reward > 0.0 && !r.terminal {
                got_reward = true;
                break;
            }
            if r.terminal {
                break;
            }
        }
        assert!(got_reward, "breaking a brick should pay off");
    }
}
