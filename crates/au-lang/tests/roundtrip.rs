//! Property-based round-trip testing: arbitrary generated ASTs survive
//! pretty-printing and re-parsing unchanged, the lexer/parser reject
//! nothing the printer emits, and every span the parser attaches slices
//! back to exactly the source text of its node.

use au_lang::pretty::print_program;
use au_lang::{parse, BinOp, Expr, ExprKind, Function, Program, Span, Stmt, StmtKind, UnOp};
use proptest::prelude::*;

/// Identifiers that cannot collide with keywords or builtins.
fn ident_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}".prop_map(|s| format!("v_{s}"))
}

fn leaf_expr() -> impl Strategy<Value = Expr> {
    prop_oneof![
        // Integers and simple fractions print/parse exactly.
        (0i64..1000).prop_map(|n| ExprKind::Num(n as f64).into()),
        (0i64..1000).prop_map(|n| ExprKind::Num(n as f64 / 4.0).into()),
        any::<bool>().prop_map(|b| ExprKind::Bool(b).into()),
        "[ -~&&[^\"\\\\]]{0,8}".prop_map(|s| ExprKind::Str(s).into()),
        ident_strategy().prop_map(|v| ExprKind::Var(v).into()),
    ]
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    leaf_expr().prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), bin_op()).prop_map(|(lhs, rhs, op)| {
                ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                }
                .into()
            }),
            (inner.clone(), un_op()).prop_map(|(expr, op)| {
                ExprKind::Unary {
                    op,
                    expr: Box::new(expr),
                }
                .into()
            }),
            prop::collection::vec(inner.clone(), 0..3)
                .prop_map(|items| ExprKind::Array(items).into()),
            (ident_strategy(), prop::collection::vec(inner.clone(), 0..3))
                .prop_map(|(name, args)| ExprKind::Call { name, args }.into()),
            (inner.clone(), inner).prop_map(|(target, index)| ExprKind::Index(
                Box::new(ExprKind::Array(vec![target]).into()),
                Box::new(index)
            )
            .into()),
        ]
    })
}

fn bin_op() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Rem),
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
        Just(BinOp::And),
        Just(BinOp::Or),
    ]
}

fn un_op() -> impl Strategy<Value = UnOp> {
    prop_oneof![Just(UnOp::Neg), Just(UnOp::Not)]
}

fn stmt_strategy() -> impl Strategy<Value = Stmt> {
    let leaf = prop_oneof![
        (ident_strategy(), expr_strategy())
            .prop_map(|(name, init)| StmtKind::Let { name, init }.into()),
        (ident_strategy(), expr_strategy()).prop_map(|(name, value)| StmtKind::Assign {
            name,
            value
        }
        .into()),
        (ident_strategy(), expr_strategy(), expr_strategy())
            .prop_map(|(name, index, value)| StmtKind::AssignIndex { name, index, value }.into()),
        expr_strategy().prop_map(|e| StmtKind::Return(Some(e)).into()),
        Just(StmtKind::Return(None).into()),
        Just(StmtKind::Break.into()),
        Just(StmtKind::Continue.into()),
        expr_strategy().prop_map(|e| StmtKind::Expr(e).into()),
    ];
    leaf.prop_recursive(2, 16, 3, |inner| {
        prop_oneof![
            (
                expr_strategy(),
                prop::collection::vec(inner.clone(), 0..3),
                prop::collection::vec(inner.clone(), 0..3)
            )
                .prop_map(|(cond, then_body, else_body)| {
                    StmtKind::If {
                        cond,
                        then_body,
                        else_body,
                    }
                    .into()
                }),
            (expr_strategy(), prop::collection::vec(inner, 0..3))
                .prop_map(|(cond, body)| StmtKind::While { cond, body }.into()),
        ]
    })
}

fn program_strategy() -> impl Strategy<Value = Program> {
    (
        prop::collection::vec(stmt_strategy(), 0..6),
        prop::collection::vec(
            (
                ident_strategy(),
                prop::collection::vec(ident_strategy(), 0..3),
                prop::collection::vec(stmt_strategy(), 0..4),
            ),
            0..2,
        ),
    )
        .prop_map(|(main_body, helpers)| {
            let mut functions: Vec<Function> = helpers
                .into_iter()
                .map(|(name, mut params, body)| {
                    params.dedup();
                    Function {
                        name,
                        params,
                        body,
                        span: Span::DUMMY,
                    }
                })
                .collect();
            // Helper names must be unique and differ from main.
            functions.dedup_by(|a, b| a.name == b.name);
            functions.push(Function {
                name: "main".to_owned(),
                params: Vec::new(),
                body: main_body,
                span: Span::DUMMY,
            });
            Program { functions }
        })
}

// ---------------------------------------------------------------------
// Span validation: every node of a parsed program must carry a span that
// slices back to text representing exactly that node.
// ---------------------------------------------------------------------

fn check_expr_spans(expr: &Expr, src: &str) -> Result<(), String> {
    let text = expr.span.slice(src);
    match &expr.kind {
        ExprKind::Var(name) => {
            if text != name {
                return Err(format!("Var `{name}` span sliced `{text}`"));
            }
        }
        ExprKind::Num(n) => {
            let parsed: f64 = text
                .parse()
                .map_err(|e| format!("Num span sliced non-number `{text}`: {e}"))?;
            if parsed != *n {
                return Err(format!("Num {n} span sliced `{text}`"));
            }
        }
        ExprKind::Str(_) => {
            if !(text.starts_with('"') && text.ends_with('"') && text.len() >= 2) {
                return Err(format!("Str span sliced unquoted `{text}`"));
            }
        }
        // `true` from a desugared `for` carries the `for` keyword's span.
        ExprKind::Bool(b) => {
            if text != b.to_string() && text != "for" {
                return Err(format!("Bool {b} span sliced `{text}`"));
            }
        }
        ExprKind::Array(items) => {
            for item in items {
                check_expr_spans(item, src)?;
            }
        }
        ExprKind::Index(target, index) => {
            check_expr_spans(target, src)?;
            check_expr_spans(index, src)?;
        }
        ExprKind::Call { name, args } => {
            if !text.starts_with(name.as_str()) {
                return Err(format!("Call `{name}` span sliced `{text}`"));
            }
            for arg in args {
                check_expr_spans(arg, src)?;
            }
        }
        ExprKind::Binary { lhs, rhs, .. } => {
            check_expr_spans(lhs, src)?;
            check_expr_spans(rhs, src)?;
        }
        ExprKind::Unary { expr, .. } => check_expr_spans(expr, src)?,
    }
    Ok(())
}

fn check_stmt_spans(stmt: &Stmt, src: &str) -> Result<(), String> {
    let text = stmt.span.slice(src);
    let starts_ok = match &stmt.kind {
        StmtKind::Let { .. } => text.starts_with("let"),
        StmtKind::Return(_) => text.starts_with("return"),
        StmtKind::Break => text.starts_with("break"),
        StmtKind::Continue => text.starts_with("continue"),
        StmtKind::While { .. } => text.starts_with("while") || text.starts_with("for"),
        StmtKind::If { .. } => text.starts_with("if") || text.starts_with("for"),
        // Assignments and expression statements start with their own text.
        _ => !text.is_empty(),
    };
    if !starts_ok {
        return Err(format!("{:?} span sliced `{text}`", stmt.span));
    }
    match &stmt.kind {
        StmtKind::Let { init: e, .. }
        | StmtKind::Assign { value: e, .. }
        | StmtKind::Expr(e)
        | StmtKind::Return(Some(e)) => check_expr_spans(e, src),
        StmtKind::AssignIndex { index, value, .. } => {
            check_expr_spans(index, src)?;
            check_expr_spans(value, src)
        }
        StmtKind::If {
            cond,
            then_body,
            else_body,
        } => {
            check_expr_spans(cond, src)?;
            then_body
                .iter()
                .chain(else_body)
                .try_for_each(|s| check_stmt_spans(s, src))
        }
        StmtKind::While { cond, body } => {
            check_expr_spans(cond, src)?;
            body.iter().try_for_each(|s| check_stmt_spans(s, src))
        }
        StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue => Ok(()),
    }
}

fn check_program_spans(program: &Program, src: &str) -> Result<(), String> {
    for func in &program.functions {
        let text = func.span.slice(src);
        if !text.starts_with("fn") {
            return Err(format!("function `{}` span sliced `{text}`", func.name));
        }
        for stmt in &func.body {
            check_stmt_spans(stmt, src)?;
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// print ∘ parse ∘ print = print (the printer emits canonical source).
    #[test]
    fn print_parse_print_is_stable(program in program_strategy()) {
        let once = print_program(&program);
        let reparsed = parse(&once);
        prop_assume!(reparsed.is_ok()); // e.g. duplicate param names are rejected
        let twice = print_program(&reparsed.unwrap());
        prop_assert_eq!(once, twice);
    }

    /// parse ∘ print = id on the AST (full round trip).
    #[test]
    fn parse_of_printed_program_matches_ast(program in program_strategy()) {
        let printed = print_program(&program);
        match parse(&printed) {
            Ok(reparsed) => prop_assert_eq!(program, reparsed),
            Err(e) => {
                // The only legitimate rejections are semantic (duplicate
                // function/parameter names); syntax must always re-parse.
                let msg = format!("{e}");
                prop_assert!(
                    msg.contains("main"),
                    "printer emitted unparseable source: {msg}\n{printed}"
                );
            }
        }
    }

    /// Every span the parser attaches slices back to the text of its own
    /// node: identifiers to their name, numbers to an equal literal,
    /// strings to a quoted literal, statements to their leading keyword.
    #[test]
    fn parsed_spans_slice_to_their_nodes(program in program_strategy()) {
        let printed = print_program(&program);
        let reparsed = parse(&printed);
        prop_assume!(reparsed.is_ok());
        if let Err(msg) = check_program_spans(&reparsed.unwrap(), &printed) {
            prop_assert!(false, "span mismatch: {msg}\nsource:\n{printed}");
        }
    }
}
