//! Property-based round-trip testing: arbitrary generated ASTs survive
//! pretty-printing and re-parsing unchanged, and the lexer/parser reject
//! nothing the printer emits.

use au_lang::pretty::print_program;
use au_lang::{parse, BinOp, Expr, Function, Program, Stmt, UnOp};
use proptest::prelude::*;

/// Identifiers that cannot collide with keywords or builtins.
fn ident_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}".prop_map(|s| format!("v_{s}"))
}

fn leaf_expr() -> impl Strategy<Value = Expr> {
    prop_oneof![
        // Integers and simple fractions print/parse exactly.
        (0i64..1000).prop_map(|n| Expr::Num(n as f64)),
        (0i64..1000).prop_map(|n| Expr::Num(n as f64 / 4.0)),
        any::<bool>().prop_map(Expr::Bool),
        "[ -~&&[^\"\\\\]]{0,8}".prop_map(Expr::Str),
        ident_strategy().prop_map(Expr::Var),
    ]
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    leaf_expr().prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), bin_op()).prop_map(|(lhs, rhs, op)| Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            }),
            (inner.clone(), un_op()).prop_map(|(expr, op)| Expr::Unary {
                op,
                expr: Box::new(expr),
            }),
            prop::collection::vec(inner.clone(), 0..3).prop_map(Expr::Array),
            (ident_strategy(), prop::collection::vec(inner.clone(), 0..3))
                .prop_map(|(name, args)| Expr::Call { name, args }),
            (inner.clone(), inner).prop_map(|(target, index)| Expr::Index(
                Box::new(Expr::Array(vec![target])),
                Box::new(index)
            )),
        ]
    })
}

fn bin_op() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Rem),
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
        Just(BinOp::And),
        Just(BinOp::Or),
    ]
}

fn un_op() -> impl Strategy<Value = UnOp> {
    prop_oneof![Just(UnOp::Neg), Just(UnOp::Not)]
}

fn stmt_strategy() -> impl Strategy<Value = Stmt> {
    let leaf = prop_oneof![
        (ident_strategy(), expr_strategy()).prop_map(|(name, init)| Stmt::Let { name, init }),
        (ident_strategy(), expr_strategy()).prop_map(|(name, value)| Stmt::Assign { name, value }),
        (ident_strategy(), expr_strategy(), expr_strategy())
            .prop_map(|(name, index, value)| Stmt::AssignIndex { name, index, value }),
        expr_strategy().prop_map(|e| Stmt::Return(Some(e))),
        Just(Stmt::Return(None)),
        Just(Stmt::Break),
        Just(Stmt::Continue),
        expr_strategy().prop_map(Stmt::Expr),
    ];
    leaf.prop_recursive(2, 16, 3, |inner| {
        prop_oneof![
            (
                expr_strategy(),
                prop::collection::vec(inner.clone(), 0..3),
                prop::collection::vec(inner.clone(), 0..3)
            )
                .prop_map(|(cond, then_body, else_body)| Stmt::If {
                    cond,
                    then_body,
                    else_body,
                }),
            (expr_strategy(), prop::collection::vec(inner, 0..3))
                .prop_map(|(cond, body)| Stmt::While { cond, body }),
        ]
    })
}

fn program_strategy() -> impl Strategy<Value = Program> {
    (
        prop::collection::vec(stmt_strategy(), 0..6),
        prop::collection::vec(
            (
                ident_strategy(),
                prop::collection::vec(ident_strategy(), 0..3),
                prop::collection::vec(stmt_strategy(), 0..4),
            ),
            0..2,
        ),
    )
        .prop_map(|(main_body, helpers)| {
            let mut functions: Vec<Function> = helpers
                .into_iter()
                .map(|(name, mut params, body)| {
                    params.dedup();
                    Function { name, params, body }
                })
                .collect();
            // Helper names must be unique and differ from main.
            functions.dedup_by(|a, b| a.name == b.name);
            functions.push(Function {
                name: "main".to_owned(),
                params: Vec::new(),
                body: main_body,
            });
            Program { functions }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// print ∘ parse ∘ print = print (the printer emits canonical source).
    #[test]
    fn print_parse_print_is_stable(program in program_strategy()) {
        let once = print_program(&program);
        let reparsed = parse(&once);
        prop_assume!(reparsed.is_ok()); // e.g. duplicate param names are rejected
        let twice = print_program(&reparsed.unwrap());
        prop_assert_eq!(once, twice);
    }

    /// parse ∘ print = id on the AST (full round trip).
    #[test]
    fn parse_of_printed_program_matches_ast(program in program_strategy()) {
        let printed = print_program(&program);
        match parse(&printed) {
            Ok(reparsed) => prop_assert_eq!(program, reparsed),
            Err(e) => {
                // The only legitimate rejections are semantic (duplicate
                // function/parameter names); syntax must always re-parse.
                let msg = format!("{e}");
                prop_assert!(
                    msg.contains("main"),
                    "printer emitted unparseable source: {msg}\n{printed}"
                );
            }
        }
    }
}
