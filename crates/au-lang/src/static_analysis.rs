//! Static dependence analysis over AuLang ASTs.
//!
//! Section 4 of the paper justifies its design choice: "We adopt dynamic
//! dependency analysis instead of static analysis which incurs too many
//! false positives." This module implements the static alternative so the
//! claim can be measured: it conservatively over-approximates dataflow
//! (all array elements alias; both branches of every `if` execute; loops
//! reach a def-use fixpoint; calls connect arguments to parameters and the
//! callee's returns to the call result). The `static_vs_dynamic` ablation
//! bench counts the resulting extra candidate edges against the
//! interpreter's observed dynamic graph.

use crate::ast::{Expr, ExprKind, Program, Stmt, StmtKind};
use au_trace::AnalysisDb;
use std::collections::{BTreeMap, BTreeSet};

/// Builds a static over-approximated dependence graph for `program`.
///
/// Edges use the same variable-name space as the dynamic tracer, so the
/// result can be fed to the same extraction algorithms. Function-call
/// dataflow is resolved by connecting argument variables to parameter
/// names and the callee's return-dependence summary (see
/// [`return_summaries`]) to the call result.
pub fn analyze(program: &Program) -> AnalysisDb {
    let mut db = AnalysisDb::new();
    let summaries = return_summaries(program);
    // Iterate to a fixpoint: call-return summaries can feed one another
    // (recursion, out-of-order definitions). The edge set is monotone and
    // bounded by |vars|², so this terminates.
    let mut last_edge_count = u64::MAX;
    let mut analyzer = StaticAnalyzer {
        db: &mut db,
        program,
        summaries: &summaries,
    };
    for _ in 0..program.functions.len() + 2 {
        for func in &program.functions {
            analyzer.block(&func.body, &func.name);
        }
        let count = analyzer.edge_count();
        if count == last_edge_count {
            break;
        }
        last_edge_count = count;
    }
    db
}

/// The ingredients of the *tightened* pre-pruning filter: the static
/// dependence over-approximation plus the set of variables
/// [`crate::absint`] proves constant on every execution. Feed both to
/// `au_trace::StaticFilter::with_constants` — the filter then discards
/// candidates that are either provably unrelated to every target *or*
/// provably constant (zero-variance features that Algorithm 2's ε₂ pass
/// would reject dynamically anyway), while staying selection-identical
/// to the untightened full-database oracle.
pub fn analyze_tightened(program: &Program) -> (AnalysisDb, BTreeSet<String>) {
    let db = analyze(program);
    let constants = crate::absint::analyze(program)
        .constants
        .into_keys()
        .collect();
    (db, constants)
}

/// Per-function *return-dependence summaries*: for every function, the set
/// of variable names the dynamic tracer could report as the dependences of
/// a call's result. The summary must cover nested calls — `fn f(p) {
/// return g(p); }` dynamically yields the deps of `g`'s executed return
/// expression (variables in *`g`'s* scope), so `summary(f) ⊇ summary(g)`.
/// A syntactic `return_vars` walk misses exactly that case, which would
/// break the dyn ⊆ static containment the pre-pruning filter and the VM's
/// selective tracing rely on. Computed as a monotone fixpoint, so
/// recursion and out-of-order definitions converge.
pub fn return_summaries(program: &Program) -> BTreeMap<String, BTreeSet<String>> {
    let mut summaries: BTreeMap<String, BTreeSet<String>> = program
        .functions
        .iter()
        .map(|f| (f.name.clone(), BTreeSet::new()))
        .collect();
    for _ in 0..program.functions.len() + 2 {
        let mut changed = false;
        for func in &program.functions {
            let mut acc = BTreeSet::new();
            summary_of_block(&func.body, program, &summaries, &mut acc);
            let entry = summaries.get_mut(&func.name).expect("seeded above");
            let before = entry.len();
            entry.extend(acc);
            changed |= entry.len() != before;
        }
        if !changed {
            break;
        }
    }
    summaries
}

fn summary_of_block(
    stmts: &[Stmt],
    program: &Program,
    summaries: &BTreeMap<String, BTreeSet<String>>,
    out: &mut BTreeSet<String>,
) {
    for stmt in stmts {
        match &stmt.kind {
            StmtKind::Return(Some(e)) => summary_expr_deps(e, program, summaries, out),
            StmtKind::If {
                then_body,
                else_body,
                ..
            } => {
                summary_of_block(then_body, program, summaries, out);
                summary_of_block(else_body, program, summaries, out);
            }
            StmtKind::While { body, .. } => summary_of_block(body, program, summaries, out),
            _ => {}
        }
    }
}

/// The names an expression's *value* may dynamically depend on, given the
/// current summaries. Call arguments are included conservatively (the
/// dynamic tracer separately flows them into parameters).
fn summary_expr_deps(
    expr: &Expr,
    program: &Program,
    summaries: &BTreeMap<String, BTreeSet<String>>,
    out: &mut BTreeSet<String>,
) {
    match &expr.kind {
        ExprKind::Num(_) | ExprKind::Bool(_) | ExprKind::Str(_) => {}
        ExprKind::Var(name) => {
            out.insert(name.clone());
        }
        ExprKind::Array(items) => {
            for item in items {
                summary_expr_deps(item, program, summaries, out);
            }
        }
        ExprKind::Index(target, index) => {
            summary_expr_deps(target, program, summaries, out);
            summary_expr_deps(index, program, summaries, out);
        }
        ExprKind::Unary { expr, .. } => summary_expr_deps(expr, program, summaries, out),
        ExprKind::Binary { lhs, rhs, .. } => {
            summary_expr_deps(lhs, program, summaries, out);
            summary_expr_deps(rhs, program, summaries, out);
        }
        ExprKind::Call { name, args } => {
            for arg in args {
                summary_expr_deps(arg, program, summaries, out);
            }
            if name == "input" {
                if let Some(ExprKind::Str(input_name)) = args.first().map(|a| &a.kind) {
                    out.insert(input_name.clone());
                }
            }
            if !name.starts_with("au_") && program.function(name).is_some() {
                if let Some(callee_summary) = summaries.get(name) {
                    out.extend(callee_summary.iter().cloned());
                }
            }
        }
    }
}

/// Conservative over-approximation of the variable names `expr`'s value
/// may dynamically depend on, given per-function [`return_summaries`].
/// Every name the tracing interpreter could report as a dependence of this
/// expression is included (arguments of calls are included conservatively,
/// literal `input` keys count as names). The bytecode compiler uses this
/// to decide which sites can be left untraced in selective mode.
pub fn expr_may_deps(
    expr: &Expr,
    program: &Program,
    summaries: &BTreeMap<String, BTreeSet<String>>,
) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    summary_expr_deps(expr, program, summaries, &mut out);
    out
}

struct StaticAnalyzer<'a> {
    db: &'a mut AnalysisDb,
    program: &'a Program,
    summaries: &'a BTreeMap<String, BTreeSet<String>>,
}

impl<'a> StaticAnalyzer<'a> {
    fn edge_count(&self) -> u64 {
        let mut count = 0u64;
        for v in self.db.all_vars() {
            count += self.db.direct_dependents(v).len() as u64;
        }
        count
    }

    fn block(&mut self, stmts: &[Stmt], func: &str) {
        for stmt in stmts {
            self.stmt(stmt, func);
        }
    }

    fn stmt(&mut self, stmt: &Stmt, func: &str) {
        match &stmt.kind {
            StmtKind::Let { name, init } | StmtKind::Assign { name, value: init } => {
                let deps = self.expr_deps(init, func, Some(name));
                let dep_refs: Vec<&str> = deps.iter().map(String::as_str).collect();
                self.db.record_assign(name, &dep_refs, None, func);
                self.mark_write_back_target(name, init);
            }
            StmtKind::AssignIndex { name, index, value } => {
                // All elements alias statically: the whole array depends on
                // the index and value expressions plus itself.
                let mut deps = self.expr_deps(index, func, None);
                deps.extend(self.expr_deps(value, func, None));
                deps.insert(name.clone());
                let dep_refs: Vec<&str> = deps.iter().map(String::as_str).collect();
                self.db.record_assign(name, &dep_refs, None, func);
            }
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                for var in self.expr_deps(cond, func, None) {
                    self.db.record_use(&var, func);
                }
                // Both branches conservatively execute.
                self.block(then_body, func);
                self.block(else_body, func);
            }
            StmtKind::While { cond, body } => {
                for var in self.expr_deps(cond, func, None) {
                    self.db.record_use(&var, func);
                }
                self.block(body, func);
            }
            StmtKind::Return(Some(e)) | StmtKind::Expr(e) => {
                let _ = self.expr_deps(e, func, None);
            }
            StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue => {}
        }
    }

    /// `x = au_write_back("N")` marks x as a target, same as the dynamic
    /// tracer.
    fn mark_write_back_target(&mut self, dst: &str, value: &Expr) {
        if let ExprKind::Call { name, .. } = &value.kind {
            if name == "au_write_back" || name == "au_write_back_n" || name == "au_nn_rl" {
                self.db.mark_target(dst);
            }
        }
    }

    /// Variables an expression may read. For user-function calls, connects
    /// arguments → parameters and returns the callee's return-variable set
    /// (plus the arguments, conservatively). `input("name", d)` marks the
    /// name as a program input.
    #[allow(clippy::only_used_in_recursion)]
    fn expr_deps(&mut self, expr: &Expr, func: &str, _target: Option<&str>) -> BTreeSet<String> {
        let mut deps = BTreeSet::new();
        match &expr.kind {
            ExprKind::Num(_) | ExprKind::Bool(_) | ExprKind::Str(_) => {}
            ExprKind::Var(name) => {
                deps.insert(name.clone());
            }
            ExprKind::Array(items) => {
                for item in items {
                    deps.extend(self.expr_deps(item, func, None));
                }
            }
            ExprKind::Index(target, index) => {
                deps.extend(self.expr_deps(target, func, None));
                deps.extend(self.expr_deps(index, func, None));
            }
            ExprKind::Unary { expr, .. } => {
                deps.extend(self.expr_deps(expr, func, None));
            }
            ExprKind::Binary { lhs, rhs, .. } => {
                deps.extend(self.expr_deps(lhs, func, None));
                deps.extend(self.expr_deps(rhs, func, None));
            }
            ExprKind::Call { name, args } => {
                let mut arg_deps: Vec<BTreeSet<String>> = Vec::with_capacity(args.len());
                for arg in args {
                    arg_deps.push(self.expr_deps(arg, func, None));
                }
                if name == "input" {
                    if let Some(ExprKind::Str(input_name)) = args.first().map(|a| &a.kind) {
                        self.db.mark_input(input_name);
                        deps.insert(input_name.clone());
                    }
                }
                // The dynamic tracer marks these unconditionally at runtime;
                // mirror literal uses so static target/input sets contain
                // their dynamic counterparts.
                if name == "mark_input" {
                    if let Some(ExprKind::Str(var)) = args.first().map(|a| &a.kind) {
                        self.db.mark_input(var);
                    }
                }
                if name == "mark_target" {
                    if let Some(ExprKind::Str(var)) = args.first().map(|a| &a.kind) {
                        self.db.mark_target(var);
                    }
                }
                if let Some(callee) = self.program.function(name).cloned() {
                    // Argument → parameter edges (in the callee's scope).
                    for (param, adeps) in callee.params.iter().zip(&arg_deps) {
                        let refs: Vec<&str> = adeps.iter().map(String::as_str).collect();
                        self.db.record_assign(param, &refs, None, &callee.name);
                    }
                    // The call result may depend on anything the callee's
                    // executed return expression depends on, transitively
                    // through nested calls.
                    if let Some(summary) = self.summaries.get(&callee.name) {
                        deps.extend(summary.iter().cloned());
                    }
                }
                // Conservatively, the result also depends on all arguments.
                for adeps in arg_deps {
                    deps.extend(adeps);
                }
            }
        }
        deps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interpreter;
    use crate::parser::parse;
    use au_trace::extract_sl;

    const BRANCHY: &str = r#"
        fn main() {
            let x = input("x", 1);
            let a = 0;
            let b = 0;
            if (x > 0) {
                a = x * 2;
            } else {
                b = x * 3;
            }
            au_extract("A", a);
            let t = 0;
            t = au_write_back("A");
            let result = a + b + t;
            return result;
        }
    "#;

    #[test]
    fn static_covers_both_branches() {
        let program = parse(BRANCHY).unwrap();
        let db = analyze(&program);
        let x = db.id("x").unwrap();
        let a = db.id("a").unwrap();
        let b = db.id("b").unwrap();
        let deps = db.dependents(x);
        assert!(deps.contains(&a), "then-branch edge");
        assert!(deps.contains(&b), "else-branch edge (static only)");
    }

    #[test]
    fn dynamic_sees_one_branch_static_sees_both() {
        // The false-positive gap the paper talks about: for x > 0 the
        // dynamic trace never records the x -> b edge.
        let program = parse(BRANCHY).unwrap();
        let static_db = analyze(&program);

        let mut interp = Interpreter::compile(BRANCHY).unwrap();
        interp.set_input("x", crate::Value::Num(5.0));
        interp.run().unwrap();
        let dynamic_db = interp.analysis();

        let sx = static_db.id("x").unwrap();
        let dx = dynamic_db.id("x").unwrap();
        let static_deps = static_db.dependents(sx).len();
        let dynamic_deps = dynamic_db.dependents(dx).len();
        assert!(
            static_deps > dynamic_deps,
            "static ({static_deps}) must over-approximate dynamic ({dynamic_deps})"
        );
    }

    #[test]
    fn static_targets_and_inputs_are_marked() {
        let program = parse(BRANCHY).unwrap();
        let db = analyze(&program);
        assert!(db.inputs().contains(&db.id("x").unwrap()));
        assert!(db.targets().contains(&db.id("t").unwrap()));
    }

    #[test]
    fn static_feature_extraction_yields_superset_candidates() {
        let program = parse(BRANCHY).unwrap();
        let static_db = analyze(&program);
        let features = extract_sl(&static_db);
        let t = static_db.id("t").unwrap();
        assert!(!features[&t].is_empty());
    }

    #[test]
    fn call_dataflow_flows_through_functions() {
        let src = r#"
            fn double(v) { return v * 2; }
            fn main() {
                let x = input("x", 1);
                let y = double(x);
                return y;
            }
        "#;
        let program = parse(src).unwrap();
        let db = analyze(&program);
        let x = db.id("x").unwrap();
        let y = db.id("y").unwrap();
        assert!(
            db.dependents(x).contains(&y),
            "x flows through double into y"
        );
    }

    #[test]
    fn nested_return_calls_flow_to_call_result() {
        // `f` returns `g(x)`; dynamically, the deps of `y = f(...)` are the
        // deps of g's executed return expression (`q`, in g's scope). The
        // static graph must contain that edge or dyn ⊄ static.
        let src = r#"
            fn g(p) { let q = p * 2; return q; }
            fn f(x) { return g(x); }
            fn main() {
                let y = f(input("i", 1));
                return y;
            }
        "#;
        let program = parse(src).unwrap();
        let db = analyze(&program);
        let q = db.id("q").unwrap();
        let y = db.id("y").unwrap();
        assert!(
            db.dependents(q).contains(&y),
            "q flows through f's return-of-g into y"
        );

        let summaries = return_summaries(&program);
        assert!(summaries["g"].contains("q"));
        assert!(summaries["f"].contains("q"), "f inherits g's summary");
        assert!(summaries["f"].contains("x"), "args stay conservative");
    }

    #[test]
    fn literal_marks_are_registered_statically() {
        let src = r#"
            fn main() {
                let sensor = input("sensor", 0);
                mark_input("sensor");
                let decision = sensor * 2;
                mark_target("decision");
                return decision;
            }
        "#;
        let program = parse(src).unwrap();
        let db = analyze(&program);
        assert!(db.inputs().contains(&db.id("sensor").unwrap()));
        assert!(db.targets().contains(&db.id("decision").unwrap()));
    }

    #[test]
    fn tightened_analysis_pairs_the_graph_with_proven_constants() {
        let src = r#"
            fn main() {
                let x = input("x", 1);
                let k = 5;
                au_extract("F", [x, k]);
                au_extract("Y", x * 2);
                let t = 0;
                t = au_write_back("Y");
                return t;
            }
        "#;
        let program = parse(src).unwrap();
        let (db, constants) = analyze_tightened(&program);
        assert!(db.id("x").is_some(), "graph side is the plain analysis");
        assert!(constants.contains("k"), "k is provably 5");
        assert!(!constants.contains("x"), "inputs are never constant");
        assert!(!constants.contains("t"), "write-back targets vary");
    }

    #[test]
    fn fixpoint_handles_recursion() {
        let src = r#"
            fn f(n) {
                if (n < 1) { return n; }
                return f(n - 1);
            }
            fn main() { let r = f(3); return r; }
        "#;
        let program = parse(src).unwrap();
        let db = analyze(&program); // must terminate
        assert!(db.id("n").is_some());
        assert!(db.id("r").is_some());
    }
}
