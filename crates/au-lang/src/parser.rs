//! Recursive-descent parser for AuLang.
//!
//! Every produced AST node carries the byte-offset [`Span`] of the source
//! text it was parsed from (desugared `for` loops reuse the spans of the
//! surface tokens they came from), so downstream tooling — `au-lint`
//! diagnostics, error rendering — can point back into the file.

use crate::ast::{BinOp, Expr, ExprKind, Function, Program, Span, Stmt, StmtKind, UnOp};
use crate::lexer::{Lexer, Token, TokenKind};
use crate::LangError;

/// Parses AuLang source into a [`Program`].
///
/// # Errors
///
/// Returns [`LangError::Lex`] or [`LangError::Parse`] with a line number.
pub fn parse(src: &str) -> Result<Program, LangError> {
    let tokens = Lexer::new(src).tokenize()?;
    Parser { tokens, pos: 0 }.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn line(&self) -> usize {
        self.tokens[self.pos].line
    }

    /// Span of the token about to be consumed.
    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    /// End offset of the most recently consumed token — the natural end of
    /// a construct once its last token has been bumped.
    fn prev_end(&self) -> usize {
        self.tokens[self.pos.saturating_sub(1)].span.end
    }

    fn bump(&mut self) -> TokenKind {
        let kind = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        kind
    }

    fn err(&self, message: impl Into<String>) -> LangError {
        LangError::Parse {
            line: self.line(),
            message: message.into(),
        }
    }

    fn expect(&mut self, kind: TokenKind, what: &str) -> Result<(), LangError> {
        if *self.peek() == kind {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, LangError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn program(&mut self) -> Result<Program, LangError> {
        let mut functions = Vec::new();
        while *self.peek() != TokenKind::Eof {
            functions.push(self.function()?);
        }
        if functions.iter().filter(|f| f.name == "main").count() != 1 {
            return Err(self.err("program must define exactly one `main` function"));
        }
        Ok(Program { functions })
    }

    fn function(&mut self) -> Result<Function, LangError> {
        let start = self.span();
        self.expect(TokenKind::Fn, "`fn`")?;
        let name = self.ident("function name")?;
        self.expect(TokenKind::LParen, "`(`")?;
        let mut params = Vec::new();
        if *self.peek() != TokenKind::RParen {
            loop {
                params.push(self.ident("parameter name")?);
                if *self.peek() == TokenKind::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen, "`)`")?;
        let body = self.block()?;
        let span = Span::new(start.start, self.prev_end());
        Ok(Function {
            name,
            params,
            body,
            span,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, LangError> {
        self.expect(TokenKind::LBrace, "`{`")?;
        let mut stmts = Vec::new();
        while *self.peek() != TokenKind::RBrace {
            if *self.peek() == TokenKind::Eof {
                return Err(self.err("unterminated block"));
            }
            stmts.push(self.statement()?);
        }
        self.bump(); // `}`
        Ok(stmts)
    }

    fn statement(&mut self) -> Result<Stmt, LangError> {
        let start = self.span();
        match self.peek().clone() {
            TokenKind::Let => {
                self.bump();
                let name = self.ident("variable name")?;
                self.expect(TokenKind::Assign, "`=`")?;
                let init = self.expr()?;
                self.expect(TokenKind::Semi, "`;`")?;
                Ok(self.stmt_from(StmtKind::Let { name, init }, start))
            }
            TokenKind::If => {
                self.bump();
                self.expect(TokenKind::LParen, "`(`")?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen, "`)`")?;
                let then_body = self.block()?;
                let else_body = if *self.peek() == TokenKind::Else {
                    self.bump();
                    if *self.peek() == TokenKind::If {
                        vec![self.statement()?]
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(self.stmt_from(
                    StmtKind::If {
                        cond,
                        then_body,
                        else_body,
                    },
                    start,
                ))
            }
            TokenKind::While => {
                self.bump();
                self.expect(TokenKind::LParen, "`(`")?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen, "`)`")?;
                let body = self.block()?;
                Ok(self.stmt_from(StmtKind::While { cond, body }, start))
            }
            TokenKind::For => self.for_statement(),
            TokenKind::Return => {
                self.bump();
                let value = if *self.peek() == TokenKind::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(TokenKind::Semi, "`;`")?;
                Ok(self.stmt_from(StmtKind::Return(value), start))
            }
            TokenKind::Break => {
                self.bump();
                self.expect(TokenKind::Semi, "`;`")?;
                Ok(self.stmt_from(StmtKind::Break, start))
            }
            TokenKind::Continue => {
                self.bump();
                self.expect(TokenKind::Semi, "`;`")?;
                Ok(self.stmt_from(StmtKind::Continue, start))
            }
            TokenKind::Ident(name) => {
                // Lookahead distinguishes `x = …;`, `x[i] = …;`, and an
                // expression statement starting with an identifier.
                let start_pos = self.pos;
                self.bump();
                match self.peek().clone() {
                    TokenKind::Assign => {
                        self.bump();
                        let value = self.expr()?;
                        self.expect(TokenKind::Semi, "`;`")?;
                        Ok(self.stmt_from(StmtKind::Assign { name, value }, start))
                    }
                    TokenKind::LBracket => {
                        self.bump();
                        let index = self.expr()?;
                        self.expect(TokenKind::RBracket, "`]`")?;
                        if *self.peek() == TokenKind::Assign {
                            self.bump();
                            let value = self.expr()?;
                            self.expect(TokenKind::Semi, "`;`")?;
                            Ok(self.stmt_from(StmtKind::AssignIndex { name, index, value }, start))
                        } else {
                            // Not an assignment — rewind and parse as expr.
                            self.pos = start_pos;
                            let e = self.expr()?;
                            self.expect(TokenKind::Semi, "`;`")?;
                            Ok(self.stmt_from(StmtKind::Expr(e), start))
                        }
                    }
                    _ => {
                        self.pos = start_pos;
                        let e = self.expr()?;
                        self.expect(TokenKind::Semi, "`;`")?;
                        Ok(self.stmt_from(StmtKind::Expr(e), start))
                    }
                }
            }
            _ => {
                let e = self.expr()?;
                self.expect(TokenKind::Semi, "`;`")?;
                Ok(self.stmt_from(StmtKind::Expr(e), start))
            }
        }
    }

    /// Wraps a statement shape with the span running from `start` to the
    /// last consumed token.
    fn stmt_from(&self, kind: StmtKind, start: Span) -> Stmt {
        Stmt::new(kind, Span::new(start.start, self.prev_end()))
    }

    /// Parses C-style `for (init; cond; post) { body }` and desugars it at
    /// parse time into `if (true) { init; while (cond) { body…; post; } }`
    /// (the `if` introduces a scope for the initializer), so the
    /// interpreter and analyses only ever see core statements. The
    /// desugared statements keep the spans of the surface tokens they were
    /// built from; the synthetic `true` condition gets the `for` keyword's
    /// span.
    ///
    /// Known sugar limitation: `continue` inside a `for` body skips the
    /// `post` step too — documented AuLang behaviour matching the naive
    /// expansion.
    fn for_statement(&mut self) -> Result<Stmt, LangError> {
        let for_span = self.span();
        self.bump(); // `for`
        self.expect(TokenKind::LParen, "`(`")?;
        // init: `let x = e` or `x = e`
        let init_start = self.span();
        let init = match self.peek().clone() {
            TokenKind::Let => {
                self.bump();
                let name = self.ident("variable name")?;
                self.expect(TokenKind::Assign, "`=`")?;
                let value = self.expr()?;
                self.stmt_from(StmtKind::Let { name, init: value }, init_start)
            }
            TokenKind::Ident(name) => {
                self.bump();
                self.expect(TokenKind::Assign, "`=`")?;
                let value = self.expr()?;
                self.stmt_from(StmtKind::Assign { name, value }, init_start)
            }
            other => {
                return Err(self.err(format!("expected for-loop initializer, found {other:?}")))
            }
        };
        self.expect(TokenKind::Semi, "`;`")?;
        let cond = self.expr()?;
        self.expect(TokenKind::Semi, "`;`")?;
        // post: `x = e` (no trailing semicolon)
        let post = {
            let post_start = self.span();
            let name = self.ident("post-step variable")?;
            self.expect(TokenKind::Assign, "`=`")?;
            let value = self.expr()?;
            self.stmt_from(StmtKind::Assign { name, value }, post_start)
        };
        self.expect(TokenKind::RParen, "`)`")?;
        let mut body = self.block()?;
        body.push(post);
        let whole = Span::new(for_span.start, self.prev_end());
        let while_stmt = Stmt::new(StmtKind::While { cond, body }, whole);
        Ok(Stmt::new(
            StmtKind::If {
                cond: Expr::new(ExprKind::Bool(true), for_span),
                then_body: vec![init, while_stmt],
                else_body: Vec::new(),
            },
            whole,
        ))
    }

    fn expr(&mut self) -> Result<Expr, LangError> {
        self.or_expr()
    }

    /// Joins two operand spans into the covering binary-expression node.
    fn binary(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        let span = lhs.span.join(rhs.span);
        Expr::new(
            ExprKind::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            },
            span,
        )
    }

    fn or_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.and_expr()?;
        while *self.peek() == TokenKind::Or {
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Self::binary(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.cmp_expr()?;
        while *self.peek() == TokenKind::And {
            self.bump();
            let rhs = self.cmp_expr()?;
            lhs = Self::binary(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, LangError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            TokenKind::Eq => BinOp::Eq,
            TokenKind::Ne => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        Ok(Self::binary(op, lhs, rhs))
    }

    fn add_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Self::binary(op, lhs, rhs);
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Rem,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Self::binary(op, lhs, rhs);
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, LangError> {
        let op_span = self.span();
        let op = match self.peek() {
            TokenKind::Minus => UnOp::Neg,
            TokenKind::Not => UnOp::Not,
            _ => return self.postfix_expr(),
        };
        self.bump();
        let inner = self.unary_expr()?;
        let span = op_span.join(inner.span);
        Ok(Expr::new(
            ExprKind::Unary {
                op,
                expr: Box::new(inner),
            },
            span,
        ))
    }

    fn postfix_expr(&mut self) -> Result<Expr, LangError> {
        let mut expr = self.primary_expr()?;
        while *self.peek() == TokenKind::LBracket {
            self.bump();
            let index = self.expr()?;
            self.expect(TokenKind::RBracket, "`]`")?;
            let span = Span::new(expr.span.start, self.prev_end());
            expr = Expr::new(ExprKind::Index(Box::new(expr), Box::new(index)), span);
        }
        Ok(expr)
    }

    fn primary_expr(&mut self) -> Result<Expr, LangError> {
        let start = self.span();
        match self.peek().clone() {
            TokenKind::Num(n) => {
                self.bump();
                Ok(Expr::new(ExprKind::Num(n), start))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::new(ExprKind::Str(s), start))
            }
            TokenKind::True => {
                self.bump();
                Ok(Expr::new(ExprKind::Bool(true), start))
            }
            TokenKind::False => {
                self.bump();
                Ok(Expr::new(ExprKind::Bool(false), start))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(TokenKind::RParen, "`)`")?;
                // The node keeps its own span; the parens only group.
                Ok(e)
            }
            TokenKind::LBracket => {
                self.bump();
                let mut items = Vec::new();
                if *self.peek() != TokenKind::RBracket {
                    loop {
                        items.push(self.expr()?);
                        if *self.peek() == TokenKind::Comma {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                self.expect(TokenKind::RBracket, "`]`")?;
                let span = Span::new(start.start, self.prev_end());
                Ok(Expr::new(ExprKind::Array(items), span))
            }
            TokenKind::Ident(name) => {
                self.bump();
                if *self.peek() == TokenKind::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if *self.peek() != TokenKind::RParen {
                        loop {
                            args.push(self.expr()?);
                            if *self.peek() == TokenKind::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(TokenKind::RParen, "`)`")?;
                    let span = Span::new(start.start, self.prev_end());
                    Ok(Expr::new(ExprKind::Call { name, args }, span))
                } else {
                    Ok(Expr::new(ExprKind::Var(name), start))
                }
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_main() {
        let p = parse("fn main() { return 1; }").unwrap();
        assert_eq!(p.functions.len(), 1);
        assert_eq!(p.functions[0].name, "main");
    }

    #[test]
    fn requires_main() {
        assert!(matches!(
            parse("fn helper() { return 0; }"),
            Err(LangError::Parse { .. })
        ));
    }

    #[test]
    fn parses_precedence() {
        let p = parse("fn main() { let x = 1 + 2 * 3; return x; }").unwrap();
        match &p.functions[0].body[0].kind {
            StmtKind::Let { init, .. } => match &init.kind {
                ExprKind::Binary {
                    op: BinOp::Add,
                    rhs,
                    ..
                } => {
                    assert!(matches!(rhs.kind, ExprKind::Binary { op: BinOp::Mul, .. }));
                }
                other => panic!("expected add at top: {other:?}"),
            },
            other => panic!("expected let: {other:?}"),
        }
    }

    #[test]
    fn parses_if_else_chain() {
        let src = "fn main() { if (1 < 2) { return 1; } else if (2 < 3) { return 2; } else { return 3; } }";
        let p = parse(src).unwrap();
        match &p.functions[0].body[0].kind {
            StmtKind::If { else_body, .. } => {
                assert!(matches!(else_body[0].kind, StmtKind::If { .. }));
            }
            other => panic!("expected if: {other:?}"),
        }
    }

    #[test]
    fn parses_index_assignment_and_read() {
        let src = "fn main() { let a = [1, 2]; a[0] = 5; return a[0]; }";
        let p = parse(src).unwrap();
        assert!(matches!(
            p.functions[0].body[1].kind,
            StmtKind::AssignIndex { .. }
        ));
    }

    #[test]
    fn parses_calls_with_string_args() {
        let src = r#"fn main() { au_extract("PX", 1); return 0; }"#;
        let p = parse(src).unwrap();
        match &p.functions[0].body[0].kind {
            StmtKind::Expr(e) => match &e.kind {
                ExprKind::Call { name, args } => {
                    assert_eq!(name, "au_extract");
                    assert_eq!(args.len(), 2);
                }
                other => panic!("expected call: {other:?}"),
            },
            other => panic!("expected expr stmt: {other:?}"),
        }
    }

    #[test]
    fn index_read_statement_is_not_assignment() {
        let src = "fn main() { let a = [1]; a[0]; return 0; }";
        let p = parse(src).unwrap();
        assert!(matches!(p.functions[0].body[1].kind, StmtKind::Expr(_)));
    }

    #[test]
    fn reports_parse_error_line() {
        let err = parse("fn main() {\n let = 3; }").unwrap_err();
        match err {
            LangError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error: {other:?}"),
        }
    }

    #[test]
    fn for_loop_desugars_and_runs() {
        let src =
            "fn main() { let s = 0; for (let i = 0; i < 5; i = i + 1) { s = s + i; } return s; }";
        let p = parse(src).unwrap();
        // Desugared: the for becomes an if-true wrapper.
        assert!(matches!(p.functions[0].body[1].kind, StmtKind::If { .. }));
    }

    #[test]
    fn for_loop_with_assign_initializer() {
        let src = "fn main() { let i = 9; for (i = 0; i < 3; i = i + 1) { } return i; }";
        assert!(parse(src).is_ok());
    }

    #[test]
    fn for_loop_rejects_missing_post() {
        let src = "fn main() { for (let i = 0; i < 3;) { } return 0; }";
        assert!(matches!(parse(src), Err(LangError::Parse { .. })));
    }

    #[test]
    fn parses_while_with_break_continue() {
        let src = "fn main() { let i = 0; while (true) { i = i + 1; if (i > 3) { break; } continue; } return i; }";
        assert!(parse(src).is_ok());
    }

    #[test]
    fn statement_spans_slice_source_text() {
        let src = "fn main() { let x = 1 + 2; return x; }";
        let p = parse(src).unwrap();
        let body = &p.functions[0].body;
        assert_eq!(body[0].span.slice(src), "let x = 1 + 2;");
        assert_eq!(body[1].span.slice(src), "return x;");
        assert_eq!(p.functions[0].span.slice(src), src);
    }

    #[test]
    fn expression_spans_cover_their_tokens() {
        let src = "fn main() { let y = foo(1, bar) + [2, 3][0]; return y; }";
        let p = parse(src).unwrap();
        match &p.functions[0].body[0].kind {
            StmtKind::Let { init, .. } => {
                assert_eq!(init.span.slice(src), "foo(1, bar) + [2, 3][0]");
                match &init.kind {
                    ExprKind::Binary { lhs, rhs, .. } => {
                        assert_eq!(lhs.span.slice(src), "foo(1, bar)");
                        assert_eq!(rhs.span.slice(src), "[2, 3][0]");
                    }
                    other => panic!("expected binary: {other:?}"),
                }
            }
            other => panic!("expected let: {other:?}"),
        }
    }

    #[test]
    fn call_spans_point_at_the_call() {
        let src = "fn main() {\n    au_nn(\"M\", \"F\", \"Y\");\n    return 0;\n}";
        let p = parse(src).unwrap();
        match &p.functions[0].body[0].kind {
            StmtKind::Expr(e) => {
                assert_eq!(e.span.slice(src), "au_nn(\"M\", \"F\", \"Y\")");
            }
            other => panic!("expected expr stmt: {other:?}"),
        }
    }

    #[test]
    fn desugared_for_keeps_surface_spans() {
        let src = "fn main() { for (let i = 0; i < 3; i = i + 1) { } return 0; }";
        let p = parse(src).unwrap();
        match &p.functions[0].body[0].kind {
            StmtKind::If {
                cond, then_body, ..
            } => {
                assert_eq!(cond.span.slice(src), "for");
                assert_eq!(then_body[0].span.slice(src), "let i = 0");
                assert!(matches!(then_body[1].kind, StmtKind::While { .. }));
            }
            other => panic!("expected desugared if: {other:?}"),
        }
    }
}
