//! AuLang lexer.

use crate::ast::Span;
use crate::LangError;

/// A lexical token kind.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Numeric literal.
    Num(f64),
    /// String literal (without quotes).
    Str(String),
    /// Identifier.
    Ident(String),
    /// `fn`
    Fn,
    /// `let`
    Let,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `for`
    For,
    /// `return`
    Return,
    /// `true`
    True,
    /// `false`
    False,
    /// `break`
    Break,
    /// `continue`
    Continue,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
    /// `!`
    Not,
    /// End of input.
    Eof,
}

/// A token with its 1-based source line and byte-offset span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind.
    pub kind: TokenKind,
    /// 1-based line number.
    pub line: usize,
    /// Byte range of the token text in the source.
    pub span: Span,
}

/// Converts AuLang source text into tokens.
///
/// Supports `//` line comments, decimal numbers (with optional fraction),
/// double-quoted strings with `\n`/`\t`/`\"`/`\\` escapes, and the operator
/// set of the grammar.
#[derive(Debug)]
pub struct Lexer<'src> {
    src: &'src [u8],
    pos: usize,
    line: usize,
}

impl<'src> Lexer<'src> {
    /// Creates a lexer over `src`.
    pub fn new(src: &'src str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    /// Lexes the entire input.
    ///
    /// # Errors
    ///
    /// Returns [`LangError::Lex`] on unknown characters, malformed numbers,
    /// or unterminated strings.
    pub fn tokenize(mut self) -> Result<Vec<Token>, LangError> {
        let mut tokens = Vec::new();
        loop {
            let token = self.next_token()?;
            let done = token.kind == TokenKind::Eof;
            tokens.push(token);
            if done {
                return Ok(tokens);
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn err(&self, message: impl Into<String>) -> LangError {
        LangError::Lex {
            line: self.line,
            message: message.into(),
        }
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    fn next_token(&mut self) -> Result<Token, LangError> {
        self.skip_trivia();
        let line = self.line;
        let start = self.pos;
        let Some(c) = self.peek() else {
            return Ok(Token {
                kind: TokenKind::Eof,
                line,
                span: Span::new(start, start),
            });
        };
        let kind = match c {
            b'0'..=b'9' => self.lex_number()?,
            b'"' => self.lex_string()?,
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.lex_ident(),
            _ => self.lex_operator()?,
        };
        Ok(Token {
            kind,
            line,
            span: Span::new(start, self.pos),
        })
    }

    fn lex_number(&mut self) -> Result<TokenKind, LangError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.bump();
        }
        if self.peek() == Some(b'.') && matches!(self.peek2(), Some(b'0'..=b'9')) {
            self.bump();
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.bump();
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(TokenKind::Num)
            .map_err(|e| self.err(format!("invalid number `{text}`: {e}")))
    }

    fn lex_string(&mut self) -> Result<TokenKind, LangError> {
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string literal")),
                Some(b'"') => return Ok(TokenKind::Str(out)),
                Some(b'\\') => match self.bump() {
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    other => {
                        return Err(self.err(format!(
                            "unknown escape `\\{}`",
                            other.map(char::from).unwrap_or(' ')
                        )))
                    }
                },
                Some(c) => out.push(char::from(c)),
            }
        }
    }

    fn lex_ident(&mut self) -> TokenKind {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')
        ) {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii ident");
        match text {
            "fn" => TokenKind::Fn,
            "let" => TokenKind::Let,
            "if" => TokenKind::If,
            "else" => TokenKind::Else,
            "while" => TokenKind::While,
            "for" => TokenKind::For,
            "return" => TokenKind::Return,
            "true" => TokenKind::True,
            "false" => TokenKind::False,
            "break" => TokenKind::Break,
            "continue" => TokenKind::Continue,
            _ => TokenKind::Ident(text.to_owned()),
        }
    }

    fn lex_operator(&mut self) -> Result<TokenKind, LangError> {
        let c = self.bump().expect("caller checked peek");
        let two = |lexer: &mut Self, second: u8, yes: TokenKind, no: TokenKind| {
            if lexer.peek() == Some(second) {
                lexer.bump();
                yes
            } else {
                no
            }
        };
        Ok(match c {
            b'(' => TokenKind::LParen,
            b')' => TokenKind::RParen,
            b'{' => TokenKind::LBrace,
            b'}' => TokenKind::RBrace,
            b'[' => TokenKind::LBracket,
            b']' => TokenKind::RBracket,
            b',' => TokenKind::Comma,
            b';' => TokenKind::Semi,
            b'+' => TokenKind::Plus,
            b'-' => TokenKind::Minus,
            b'*' => TokenKind::Star,
            b'/' => TokenKind::Slash,
            b'%' => TokenKind::Percent,
            b'=' => two(self, b'=', TokenKind::Eq, TokenKind::Assign),
            b'!' => two(self, b'=', TokenKind::Ne, TokenKind::Not),
            b'<' => two(self, b'=', TokenKind::Le, TokenKind::Lt),
            b'>' => two(self, b'=', TokenKind::Ge, TokenKind::Gt),
            b'&' => {
                if self.peek() == Some(b'&') {
                    self.bump();
                    TokenKind::And
                } else {
                    return Err(self.err("expected `&&`"));
                }
            }
            b'|' => {
                if self.peek() == Some(b'|') {
                    self.bump();
                    TokenKind::Or
                } else {
                    return Err(self.err("expected `||`"));
                }
            }
            other => return Err(self.err(format!("unexpected character `{}`", char::from(other)))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_keywords_and_idents() {
        assert_eq!(
            kinds("fn main while x"),
            vec![
                TokenKind::Fn,
                TokenKind::Ident("main".into()),
                TokenKind::While,
                TokenKind::Ident("x".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            kinds("42 3.25"),
            vec![TokenKind::Num(42.0), TokenKind::Num(3.25), TokenKind::Eof]
        );
    }

    #[test]
    fn lexes_strings_with_escapes() {
        assert_eq!(
            kinds(r#""hi\n" "a\"b""#),
            vec![
                TokenKind::Str("hi\n".into()),
                TokenKind::Str("a\"b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_two_char_operators() {
        assert_eq!(
            kinds("== != <= >= && || = < >"),
            vec![
                TokenKind::Eq,
                TokenKind::Ne,
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::And,
                TokenKind::Or,
                TokenKind::Assign,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn skips_comments() {
        assert_eq!(
            kinds("x // comment\ny"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Ident("y".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn tracks_line_numbers() {
        let tokens = Lexer::new("x\ny").tokenize().unwrap();
        assert_eq!(tokens[0].line, 1);
        assert_eq!(tokens[1].line, 2);
    }

    #[test]
    fn spans_slice_back_to_token_text() {
        let src = "fn main() { let xy = 3.25; } // trailing";
        let tokens = Lexer::new(src).tokenize().unwrap();
        for t in &tokens {
            let text = t.span.slice(src);
            match &t.kind {
                TokenKind::Ident(name) => assert_eq!(text, name.as_str()),
                TokenKind::Num(_) => assert_eq!(text, "3.25"),
                TokenKind::Eof => assert_eq!(text, ""),
                _ => assert!(!text.is_empty(), "non-EOF token with empty span"),
            }
        }
    }

    #[test]
    fn string_spans_include_the_quotes() {
        let src = r#"x "a\"b" y"#;
        let tokens = Lexer::new(src).tokenize().unwrap();
        assert_eq!(tokens[1].span.slice(src), r#""a\"b""#);
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(matches!(
            Lexer::new("\"oops").tokenize(),
            Err(LangError::Lex { .. })
        ));
    }

    #[test]
    fn rejects_stray_ampersand() {
        assert!(matches!(
            Lexer::new("a & b").tokenize(),
            Err(LangError::Lex { .. })
        ));
    }
}
