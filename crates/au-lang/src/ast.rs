//! AuLang abstract syntax with byte-offset source spans.
//!
//! Every expression, statement, and function carries a [`Span`] — the
//! half-open byte range of the source text it was parsed from. Spans are
//! threaded from the lexer through the parser so downstream tooling
//! (`au-lint` diagnostics, error rendering) can point at the offending
//! source. Structural equality (`PartialEq`) deliberately **ignores
//! spans**: the pretty-printer round-trip property compares programs by
//! shape, and synthetic nodes (desugared `for` loops, test-built ASTs)
//! use [`Span::DUMMY`].

/// A half-open byte range `[start, end)` into the original source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

impl Span {
    /// The empty span used for synthetic nodes with no source location.
    pub const DUMMY: Span = Span { start: 0, end: 0 };

    /// Creates a span covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// True for [`Span::DUMMY`] (no source location).
    pub fn is_dummy(self) -> bool {
        self.start == 0 && self.end == 0
    }

    /// The smallest span covering both `self` and `other`. Dummy spans are
    /// absorbed (joining with one returns the other unchanged).
    pub fn join(self, other: Span) -> Span {
        if self.is_dummy() {
            return other;
        }
        if other.is_dummy() {
            return self;
        }
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// The source text this span covers, clamped to `src`'s bounds.
    pub fn slice(self, src: &str) -> &str {
        let start = self.start.min(src.len());
        let end = self.end.clamp(start, src.len());
        &src[start..end]
    }
}

/// A binary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuiting)
    And,
    /// `||` (short-circuiting)
    Or,
}

/// A unary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Numeric negation.
    Neg,
    /// Boolean not.
    Not,
}

/// An expression: shape plus source span.
#[derive(Debug, Clone)]
pub struct Expr {
    /// The expression's shape.
    pub kind: ExprKind,
    /// Source bytes this expression was parsed from.
    pub span: Span,
}

impl Expr {
    /// Builds an expression at an explicit span.
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Expr { kind, span }
    }
}

impl From<ExprKind> for Expr {
    /// Builds a synthetic expression with [`Span::DUMMY`].
    fn from(kind: ExprKind) -> Self {
        Expr {
            kind,
            span: Span::DUMMY,
        }
    }
}

/// Structural equality — spans are ignored.
impl PartialEq for Expr {
    fn eq(&self, other: &Self) -> bool {
        self.kind == other.kind
    }
}

/// An expression's shape.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Numeric literal.
    Num(f64),
    /// Boolean literal.
    Bool(bool),
    /// String literal.
    Str(String),
    /// Variable reference.
    Var(String),
    /// Array literal `[e1, e2, …]`.
    Array(Vec<Expr>),
    /// Indexing `a[i]`.
    Index(Box<Expr>, Box<Expr>),
    /// Function or builtin call.
    Call {
        /// Callee name.
        name: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
}

/// A statement: shape plus source span.
#[derive(Debug, Clone)]
pub struct Stmt {
    /// The statement's shape.
    pub kind: StmtKind,
    /// Source bytes this statement was parsed from.
    pub span: Span,
}

impl Stmt {
    /// Builds a statement at an explicit span.
    pub fn new(kind: StmtKind, span: Span) -> Self {
        Stmt { kind, span }
    }
}

impl From<StmtKind> for Stmt {
    /// Builds a synthetic statement with [`Span::DUMMY`].
    fn from(kind: StmtKind) -> Self {
        Stmt {
            kind,
            span: Span::DUMMY,
        }
    }
}

/// Structural equality — spans are ignored.
impl PartialEq for Stmt {
    fn eq(&self, other: &Self) -> bool {
        self.kind == other.kind
    }
}

/// A statement's shape.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// `let x = e;` — introduces a variable in the current scope.
    Let {
        /// Variable name.
        name: String,
        /// Initializer.
        init: Expr,
    },
    /// `x = e;`
    Assign {
        /// Variable name.
        name: String,
        /// New value.
        value: Expr,
    },
    /// `a[i] = e;`
    AssignIndex {
        /// Array variable name.
        name: String,
        /// Index expression.
        index: Expr,
        /// New value.
        value: Expr,
    },
    /// `if (cond) { … } else { … }`
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch.
        then_body: Vec<Stmt>,
        /// Else-branch (possibly empty).
        else_body: Vec<Stmt>,
    },
    /// `while (cond) { … }`
    While {
        /// Condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `return e;` / `return;`
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// Expression statement (calls evaluated for effect).
    Expr(Expr),
}

/// A function definition.
#[derive(Debug, Clone)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source bytes of the whole definition (`fn` through closing brace).
    pub span: Span,
}

/// Structural equality — spans are ignored.
impl PartialEq for Function {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.params == other.params && self.body == other.body
    }
}

/// A whole program: a list of functions; execution starts at `main`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Function definitions in source order.
    pub functions: Vec<Function>,
}

impl Program {
    /// Finds a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_join_covers_both_and_absorbs_dummy() {
        let a = Span::new(3, 7);
        let b = Span::new(10, 12);
        assert_eq!(a.join(b), Span::new(3, 12));
        assert_eq!(Span::DUMMY.join(b), b);
        assert_eq!(a.join(Span::DUMMY), a);
    }

    #[test]
    fn span_slice_is_clamped() {
        let src = "hello";
        assert_eq!(Span::new(1, 4).slice(src), "ell");
        assert_eq!(Span::new(3, 99).slice(src), "lo");
        assert_eq!(Span::new(99, 120).slice(src), "");
    }

    #[test]
    fn equality_ignores_spans() {
        let a = Expr::new(ExprKind::Num(1.0), Span::new(0, 1));
        let b = Expr::new(ExprKind::Num(1.0), Span::new(5, 6));
        assert_eq!(a, b);
        let s = Stmt::new(StmtKind::Expr(a), Span::new(0, 2));
        let t = Stmt::new(StmtKind::Expr(b), Span::DUMMY);
        assert_eq!(s, t);
    }
}
