//! AuLang abstract syntax.

/// A binary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuiting)
    And,
    /// `||` (short-circuiting)
    Or,
}

/// A unary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Numeric negation.
    Neg,
    /// Boolean not.
    Not,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Num(f64),
    /// Boolean literal.
    Bool(bool),
    /// String literal.
    Str(String),
    /// Variable reference.
    Var(String),
    /// Array literal `[e1, e2, …]`.
    Array(Vec<Expr>),
    /// Indexing `a[i]`.
    Index(Box<Expr>, Box<Expr>),
    /// Function or builtin call.
    Call {
        /// Callee name.
        name: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `let x = e;` — introduces a variable in the current scope.
    Let {
        /// Variable name.
        name: String,
        /// Initializer.
        init: Expr,
    },
    /// `x = e;`
    Assign {
        /// Variable name.
        name: String,
        /// New value.
        value: Expr,
    },
    /// `a[i] = e;`
    AssignIndex {
        /// Array variable name.
        name: String,
        /// Index expression.
        index: Expr,
        /// New value.
        value: Expr,
    },
    /// `if (cond) { … } else { … }`
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch.
        then_body: Vec<Stmt>,
        /// Else-branch (possibly empty).
        else_body: Vec<Stmt>,
    },
    /// `while (cond) { … }`
    While {
        /// Condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `return e;` / `return;`
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// Expression statement (calls evaluated for effect).
    Expr(Expr),
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// A whole program: a list of functions; execution starts at `main`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Function definitions in source order.
    pub functions: Vec<Function>,
}

impl Program {
    /// Finds a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }
}
