//! The AuLang bytecode VM.
//!
//! Executes a [`CompiledProgram`] with a value stack and a contiguous
//! locals array, semantically bit-identical to the tree-walking
//! [`Interpreter`](crate::Interpreter): same [`Value`] semantics, same
//! `au_*` protocol effects against the embedded [`Engine`], same error
//! messages at the same execution points, same deterministic `rand()`.
//!
//! Tracing is compiled in, not interpreted: the dispatch loop is
//! monomorphized over a `TRACED` flag, and untraced programs contain no
//! trace opcodes at all, so the untraced hot path never maintains the
//! dependence stack. In traced runs a shadow stack of dependence sets
//! (interned name ids) rides alongside the value stack; `TraceAssign` /
//! `NoteUses` opcodes flush it into the [`AnalysisDb`] exactly as the
//! interpreter's `trace_assign` / `note_uses` would.

use crate::ast::BinOp;
use crate::bytecode::{CompiledProgram, Op, TraceKind, TraceMode};
use crate::compile::compile_program;
use crate::parser::parse;
use crate::value::Value;
use crate::{LangError, Program, RunStats};
use au_core::{Checkpoint, Engine, Mode, ModelConfig};
use au_trace::AnalysisDb;
use std::collections::{BTreeMap, HashMap};

/// Checkpointed program state: per frame, the live `(name id, value)`
/// pairs in outer-to-inner declaration order (innermost last, so
/// name-flattening on restore picks the innermost binding — the
/// interpreter's rule).
type VmSnapshot = Vec<Vec<(u32, Value)>>;

/// A suspended activation record.
#[derive(Debug, Clone, Copy)]
struct FrameRt {
    /// Index into `CompiledProgram::funcs` of the function executing in
    /// this frame.
    func: u16,
    /// Where to resume in the caller.
    ret_ip: usize,
    /// First slot of this frame in the locals array.
    base: usize,
    /// Live set of the *caller* at the call site that created this frame
    /// (used to snapshot the caller's variables from deeper frames).
    caller_live: u32,
}

fn rt(msg: impl Into<String>) -> LangError {
    LangError::Runtime(msg.into())
}

fn vpop(stack: &mut Vec<Value>) -> Value {
    stack.pop().expect("compiler guarantees stack balance")
}

fn dpop(deps: &mut Vec<Vec<u32>>) -> Vec<u32> {
    deps.pop().expect("compiler guarantees dep-stack balance")
}

fn take_str(v: Value) -> String {
    match v {
        Value::Str(s) => s,
        other => unreachable!("EnsureStr guarantees a string, got {}", other.type_name()),
    }
}

/// The non-short-circuit binary operation, shared between `Op::Bin` and
/// the fused superinstructions — one implementation so optimized and
/// unoptimized programs agree bit-for-bit (including error messages and
/// the left-before-right type-check order).
fn bin_value(bin: BinOp, l: Value, r: Value) -> Result<Value, LangError> {
    Ok(match bin {
        BinOp::Eq => Value::Bool(l == r),
        BinOp::Ne => Value::Bool(l != r),
        _ => {
            let a = l
                .as_num()
                .ok_or_else(|| rt(format!("arithmetic on {}", l.type_name())))?;
            let b = r
                .as_num()
                .ok_or_else(|| rt(format!("arithmetic on {}", r.type_name())))?;
            match bin {
                BinOp::Add => Value::Num(a + b),
                BinOp::Sub => Value::Num(a - b),
                BinOp::Mul => Value::Num(a * b),
                BinOp::Div => Value::Num(a / b),
                BinOp::Rem => Value::Num(a % b),
                BinOp::Lt => Value::Bool(a < b),
                BinOp::Le => Value::Bool(a <= b),
                BinOp::Gt => Value::Bool(a > b),
                BinOp::Ge => Value::Bool(a >= b),
                BinOp::Eq | BinOp::Ne | BinOp::And | BinOp::Or => unreachable!(),
            }
        }
    })
}

/// Validates an array index: must be a non-negative integral number.
fn index_of(value: &Value) -> Result<usize, LangError> {
    let n = value
        .as_num()
        .ok_or_else(|| rt("array index must be a number"))?;
    if !n.is_finite() || n < 0.0 || n.fract() != 0.0 {
        return Err(rt(format!(
            "array index must be a non-negative integer, got {n}"
        )));
    }
    Ok(n as usize)
}

/// Records one traced assignment, exactly like the interpreter's
/// `trace_assign`: sources name-sorted and deduplicated, destination
/// interned first (via `record_assign`), numeric value captured.
fn assign_event(
    analysis: &mut AnalysisDb,
    names: &[String],
    stats: &mut RunStats,
    dst: u32,
    deps: &[u32],
    value: &Value,
    func: u32,
) {
    stats.assignments += 1;
    let mut dep_names: Vec<&str> = deps.iter().map(|&id| names[id as usize].as_str()).collect();
    dep_names.sort_unstable();
    dep_names.dedup();
    analysis.record_assign(
        &names[dst as usize],
        &dep_names,
        value.as_num(),
        &names[func as usize],
    );
}

/// Records traced uses, like the interpreter's `note_uses` (name-sorted,
/// deduplicated). Under Selective tracing, provably irrelevant names are
/// skipped — pruned extraction never consults them.
fn uses_event(
    analysis: &mut AnalysisDb,
    names: &[String],
    relevant: &[bool],
    selective: bool,
    deps: &[u32],
    func: u32,
) {
    let mut dep_names: Vec<&str> = deps
        .iter()
        .filter(|&&id| !selective || relevant[id as usize])
        .map(|&id| names[id as usize].as_str())
        .collect();
    dep_names.sort_unstable();
    dep_names.dedup();
    let func = names[func as usize].as_str();
    for var in dep_names {
        analysis.record_use(var, func);
    }
}

/// Interns a runtime-produced name (e.g. a computed `input` key under
/// Full tracing) into the VM's extendable pool.
fn intern(
    names: &mut Vec<String>,
    name_ids: &mut HashMap<String, u32>,
    relevant: &mut Vec<bool>,
    s: &str,
) -> u32 {
    if let Some(&id) = name_ids.get(s) {
        return id;
    }
    let id = names.len() as u32;
    names.push(s.to_owned());
    name_ids.insert(s.to_owned(), id);
    // Runtime names only appear under Full tracing, where everything is
    // relevant.
    relevant.push(true);
    id
}

/// Snapshots the live variables of every frame for `au_checkpoint`.
fn build_snapshot(
    prog: &CompiledProgram,
    frames: &[FrameRt],
    locals: &[Value],
    top_live: u32,
) -> VmSnapshot {
    let mut snap = Vec::with_capacity(frames.len());
    for (j, fr) in frames.iter().enumerate() {
        let live = if j + 1 < frames.len() {
            frames[j + 1].caller_live
        } else {
            top_live
        };
        let entries: Vec<(u32, Value)> = prog.live_sets[live as usize]
            .iter()
            .map(|&(slot, name)| (name, locals[fr.base + slot as usize].clone()))
            .collect();
        snap.push(entries);
    }
    snap
}

/// The AuLang bytecode virtual machine.
///
/// Mirrors the [`Interpreter`](crate::Interpreter)'s public surface
/// (inputs, seed, step limit, output, stats, analysis) so the two engines
/// are drop-in interchangeable; the trace mode is fixed at compile time
/// by [`compile_program`].
#[derive(Debug)]
pub struct Vm {
    prog: CompiledProgram,
    engine: Engine,
    analysis: AnalysisDb,
    inputs: BTreeMap<String, Value>,
    output: Vec<String>,
    stats: RunStats,
    checkpoint: Option<Checkpoint<VmSnapshot>>,
    step_limit: u64,
    rng_state: u64,
    /// Runtime name pool: the compiled pool plus names interned during
    /// execution (computed `input` keys under Full tracing).
    names: Vec<String>,
    name_ids: HashMap<String, u32>,
    relevant: Vec<bool>,
}

impl Vm {
    /// Parses `src` and compiles it under `mode`.
    ///
    /// # Errors
    ///
    /// Returns lex/parse errors.
    pub fn compile(src: &str, mode: TraceMode) -> Result<Self, LangError> {
        Ok(Vm::with_program(&parse(src)?, mode))
    }

    /// Parses `src` and compiles it under `mode` with the
    /// abstract-interpretation optimizer
    /// ([`compile_program_opt`](crate::compile_program_opt)) enabled.
    ///
    /// # Errors
    ///
    /// Returns lex/parse errors.
    pub fn compile_opt(src: &str, mode: TraceMode) -> Result<Self, LangError> {
        Ok(Vm::from_compiled(crate::compile::compile_program_opt(
            &parse(src)?,
            mode,
        )))
    }

    /// Compiles an already parsed program under `mode`.
    pub fn with_program(program: &Program, mode: TraceMode) -> Self {
        Vm::from_compiled(compile_program(program, mode))
    }

    /// Wraps an already compiled program.
    pub fn from_compiled(prog: CompiledProgram) -> Self {
        let names = prog.names.clone();
        let name_ids = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i as u32))
            .collect();
        let relevant = prog.relevant.clone();
        Vm {
            prog,
            engine: Engine::new(Mode::Train),
            analysis: AnalysisDb::new(),
            inputs: BTreeMap::new(),
            output: Vec::new(),
            stats: RunStats::default(),
            checkpoint: None,
            step_limit: 10_000_000,
            rng_state: 0x853c_49e6_748f_ea9b,
            names,
            name_ids,
            relevant,
        }
    }

    /// The compiled program backing this VM.
    pub fn compiled(&self) -> &CompiledProgram {
        &self.prog
    }

    /// Replaces the embedded engine (e.g. one in TS mode with a model dir).
    pub fn set_engine(&mut self, engine: Engine) {
        self.engine = engine;
    }

    /// The embedded Autonomizer engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Mutable access to the embedded engine.
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// The recorded dynamic-analysis facts.
    pub fn analysis(&self) -> &AnalysisDb {
        &self.analysis
    }

    /// Supplies the value returned by `input(name, default)`.
    pub fn set_input(&mut self, name: &str, value: Value) {
        self.inputs.insert(name.to_owned(), value);
    }

    /// Seeds the deterministic `rand()` builtin.
    pub fn set_seed(&mut self, seed: u64) {
        self.rng_state = seed | 1;
    }

    /// Limits executed statements (default 10 million).
    pub fn set_step_limit(&mut self, limit: u64) {
        self.step_limit = limit;
    }

    /// Lines produced by `print`.
    pub fn output(&self) -> &[String] {
        &self.output
    }

    /// Statistics of the most recent run.
    pub fn stats(&self) -> RunStats {
        self.stats
    }

    /// The trace mode requested at compile time.
    pub fn trace_mode(&self) -> TraceMode {
        self.prog.requested_trace_mode()
    }

    /// The trace mode actually compiled (Selective may fall back to Full).
    pub fn effective_trace_mode(&self) -> TraceMode {
        self.prog.effective_trace_mode()
    }

    /// Runs `main`, returning its value.
    ///
    /// # Errors
    ///
    /// Returns [`LangError::Runtime`] for dynamic errors (undefined
    /// variables, type mismatches, step-limit exhaustion) and
    /// [`LangError::Engine`] for primitive failures.
    pub fn run(&mut self) -> Result<Value, LangError> {
        let _s = t_span!("aulang_vm_run");
        let _t = t_time!("au_lang.vm.run");
        t_count!("au_lang.vm.runs");
        self.stats = RunStats::default();
        self.output.clear();
        self.checkpoint = None;
        let result = match self.prog.effective_trace_mode() {
            TraceMode::Off => self.exec::<false>(),
            TraceMode::Full | TraceMode::Selective => self.exec::<true>(),
        };
        t_count!("au_lang.vm.steps", self.stats.steps);
        result
    }

    #[allow(clippy::too_many_lines)]
    fn exec<const TRACED: bool>(&mut self) -> Result<Value, LangError> {
        let selective = self.prog.effective_trace_mode() == TraceMode::Selective;
        let main = self.prog.main_func;
        let mut locals: Vec<Value> =
            vec![Value::Unit; self.prog.funcs[main as usize].nlocals as usize];
        let mut stack: Vec<Value> = Vec::with_capacity(16);
        let mut deps: Vec<Vec<u32>> = Vec::new();
        let mut frames: Vec<FrameRt> = vec![FrameRt {
            func: main,
            ret_ip: usize::MAX,
            base: 0,
            caller_live: 0,
        }];
        self.stats.max_depth = 1;
        let mut ip = self.prog.funcs[main as usize].entry as usize;
        let mut cur = main as usize;
        loop {
            let op = self.prog.ops[ip];
            ip += 1;
            match op {
                Op::Step => {
                    self.stats.steps += 1;
                    if self.stats.steps > self.step_limit {
                        return Err(rt("step limit exceeded"));
                    }
                }
                Op::Const(i) => {
                    stack.push(self.prog.consts[i as usize].clone());
                    if TRACED {
                        deps.push(Vec::new());
                    }
                }
                Op::Load(slot) => {
                    let base = frames.last().expect("frame").base;
                    stack.push(locals[base + slot as usize].clone());
                    if TRACED {
                        deps.push(vec![self.prog.funcs[cur].slot_names[slot as usize]]);
                    }
                }
                Op::Store(slot) => {
                    let v = vpop(&mut stack);
                    if TRACED {
                        dpop(&mut deps);
                    }
                    let base = frames.last().expect("frame").base;
                    locals[base + slot as usize] = v;
                }
                Op::Pop => {
                    vpop(&mut stack);
                    if TRACED {
                        dpop(&mut deps);
                    }
                }
                Op::MakeArray(n) => {
                    let items = stack.split_off(stack.len() - n as usize);
                    stack.push(Value::Array(items));
                    if TRACED {
                        let tail = deps.split_off(deps.len() - n as usize);
                        let mut merged = Vec::new();
                        for d in tail {
                            merged.extend(d);
                        }
                        deps.push(merged);
                    }
                }
                Op::IndexGet => {
                    let idx_v = vpop(&mut stack);
                    let target = vpop(&mut stack);
                    if TRACED {
                        let di = dpop(&mut deps);
                        deps.last_mut().expect("dep").extend(di);
                    }
                    let idx = index_of(&idx_v)?;
                    match target {
                        Value::Array(items) => match items.get(idx) {
                            Some(v) => stack.push(v.clone()),
                            None => return Err(rt(format!("index {idx} out of bounds"))),
                        },
                        other => return Err(rt(format!("cannot index a {}", other.type_name()))),
                    }
                }
                Op::StoreIndex { slot, name, trace } => {
                    let value = vpop(&mut stack);
                    let idx_v = vpop(&mut stack);
                    let (dv, di) = if TRACED {
                        (dpop(&mut deps), dpop(&mut deps))
                    } else {
                        (Vec::new(), Vec::new())
                    };
                    let idx = index_of(&idx_v)?;
                    if TRACED && trace != TraceKind::None {
                        let mut d = di;
                        d.extend(dv);
                        d.push(name);
                        let fname = self.prog.funcs[cur].name;
                        match trace {
                            TraceKind::Assign => assign_event(
                                &mut self.analysis,
                                &self.names,
                                &mut self.stats,
                                name,
                                &d,
                                &value,
                                fname,
                            ),
                            TraceKind::Uses => uses_event(
                                &mut self.analysis,
                                &self.names,
                                &self.relevant,
                                selective,
                                &d,
                                fname,
                            ),
                            TraceKind::None => unreachable!(),
                        }
                    }
                    let base = frames.last().expect("frame").base;
                    match &mut locals[base + slot as usize] {
                        Value::Array(items) => {
                            if idx >= items.len() {
                                return Err(rt(format!(
                                    "index {idx} out of bounds for `{}` of length {}",
                                    self.names[name as usize],
                                    items.len()
                                )));
                            }
                            items[idx] = value;
                        }
                        other => {
                            return Err(rt(format!(
                                "cannot index `{}`: {}",
                                self.names[name as usize],
                                other.type_name()
                            )))
                        }
                    }
                }
                Op::StoreIndexUndef { name, trace } => {
                    let value = vpop(&mut stack);
                    let idx_v = vpop(&mut stack);
                    let (dv, di) = if TRACED {
                        (dpop(&mut deps), dpop(&mut deps))
                    } else {
                        (Vec::new(), Vec::new())
                    };
                    index_of(&idx_v)?;
                    if TRACED && trace != TraceKind::None {
                        let mut d = di;
                        d.extend(dv);
                        d.push(name);
                        let fname = self.prog.funcs[cur].name;
                        match trace {
                            TraceKind::Assign => assign_event(
                                &mut self.analysis,
                                &self.names,
                                &mut self.stats,
                                name,
                                &d,
                                &value,
                                fname,
                            ),
                            TraceKind::Uses => uses_event(
                                &mut self.analysis,
                                &self.names,
                                &self.relevant,
                                selective,
                                &d,
                                fname,
                            ),
                            TraceKind::None => unreachable!(),
                        }
                    }
                    return Err(rt(format!(
                        "assignment to undefined variable `{}`",
                        self.names[name as usize]
                    )));
                }
                Op::Bin(bin) => {
                    let r = vpop(&mut stack);
                    let l = vpop(&mut stack);
                    if TRACED {
                        let dr = dpop(&mut deps);
                        deps.last_mut().expect("dep").extend(dr);
                    }
                    stack.push(bin_value(bin, l, r)?);
                }
                Op::LoadLoadBin { a, b, op } => {
                    let base = frames.last().expect("frame").base;
                    let l = locals[base + a as usize].clone();
                    let r = locals[base + b as usize].clone();
                    if TRACED {
                        let sn = &self.prog.funcs[cur].slot_names;
                        deps.push(vec![sn[a as usize], sn[b as usize]]);
                    }
                    stack.push(bin_value(op, l, r)?);
                }
                Op::LoadConstBin { slot, cidx, op } => {
                    let base = frames.last().expect("frame").base;
                    let l = locals[base + slot as usize].clone();
                    let r = self.prog.consts[cidx as usize].clone();
                    if TRACED {
                        deps.push(vec![self.prog.funcs[cur].slot_names[slot as usize]]);
                    }
                    stack.push(bin_value(op, l, r)?);
                }
                Op::ConstBin { cidx, op } => {
                    // The constant contributes no deps, so the traced dep
                    // stack is untouched (push-empty + merge is a no-op).
                    let r = self.prog.consts[cidx as usize].clone();
                    let l = vpop(&mut stack);
                    stack.push(bin_value(op, l, r)?);
                }
                Op::Neg => {
                    let v = vpop(&mut stack);
                    let n = v.as_num().ok_or_else(|| rt("unary `-` needs a number"))?;
                    stack.push(Value::Num(-n));
                }
                Op::Not => {
                    let v = vpop(&mut stack);
                    let b = v.as_bool().ok_or_else(|| rt("unary `!` needs a boolean"))?;
                    stack.push(Value::Bool(!b));
                }
                Op::ShortCircuit { is_and, skip } => {
                    let v = vpop(&mut stack);
                    let l = v
                        .as_bool()
                        .ok_or_else(|| rt("logical operand must be boolean"))?;
                    let short = if is_and { !l } else { l };
                    if short {
                        stack.push(Value::Bool(l));
                        ip = skip as usize;
                    }
                    // Not short: fall through to the rhs code; the lhs dep
                    // set stays pending for LogicalRhs.
                }
                Op::LogicalRhs => {
                    let v = vpop(&mut stack);
                    let r = v
                        .as_bool()
                        .ok_or_else(|| rt("logical operand must be boolean"))?;
                    stack.push(Value::Bool(r));
                    if TRACED {
                        let dr = dpop(&mut deps);
                        deps.last_mut().expect("dep").extend(dr);
                    }
                }
                Op::Jump(t) => {
                    ip = t as usize;
                }
                Op::BranchFalse { target, msg } => {
                    let v = vpop(&mut stack);
                    if TRACED {
                        dpop(&mut deps);
                    }
                    let b = v
                        .as_bool()
                        .ok_or_else(|| rt(self.prog.msgs[msg as usize].clone()))?;
                    if !b {
                        ip = target as usize;
                    }
                }
                Op::Call { func, live } => {
                    let fi = &self.prog.funcs[func as usize];
                    if frames.len() >= 64 {
                        return Err(rt(format!(
                            "call depth limit (64) exceeded in `{}` — runaway recursion?",
                            self.names[fi.name as usize]
                        )));
                    }
                    let argc = fi.params.len();
                    let base = locals.len();
                    locals.resize(base + fi.nlocals as usize, Value::Unit);
                    for i in (0..argc).rev() {
                        locals[base + i] = vpop(&mut stack);
                    }
                    frames.push(FrameRt {
                        func,
                        ret_ip: ip,
                        base,
                        caller_live: live,
                    });
                    if frames.len() > self.stats.max_depth {
                        self.stats.max_depth = frames.len();
                    }
                    cur = func as usize;
                    ip = fi.entry as usize;
                    if TRACED {
                        // Parameter binding traces, in parameter order,
                        // attributed to the callee — the interpreter's
                        // exact event sequence.
                        let tail = deps.split_off(deps.len() - argc);
                        let fname = self.prog.funcs[cur].name;
                        for (i, d) in tail.iter().enumerate() {
                            assign_event(
                                &mut self.analysis,
                                &self.names,
                                &mut self.stats,
                                self.prog.funcs[cur].params[i],
                                d,
                                &locals[base + i],
                                fname,
                            );
                        }
                    }
                }
                Op::Ret => {
                    let fr = frames.pop().expect("frame");
                    locals.truncate(fr.base);
                    if frames.is_empty() {
                        return Ok(vpop(&mut stack));
                    }
                    ip = fr.ret_ip;
                    cur = frames.last().expect("frame").func as usize;
                }
                Op::RetUnit => {
                    stack.push(Value::Unit);
                    if TRACED {
                        deps.push(Vec::new());
                    }
                    let fr = frames.pop().expect("frame");
                    locals.truncate(fr.base);
                    if frames.is_empty() {
                        return Ok(vpop(&mut stack));
                    }
                    ip = fr.ret_ip;
                    cur = frames.last().expect("frame").func as usize;
                }
                Op::Fail(m) => {
                    return Err(rt(self.prog.msgs[m as usize].clone()));
                }
                Op::EnsureStr(m) => {
                    if !matches!(stack.last(), Some(Value::Str(_))) {
                        return Err(rt(self.prog.msgs[m as usize].clone()));
                    }
                }
                Op::EnsureNum(m) => {
                    if stack.last().and_then(Value::as_num).is_none() {
                        return Err(rt(self.prog.msgs[m as usize].clone()));
                    }
                }
                Op::NoteUses => {
                    if TRACED {
                        let d = deps.last().expect("dep");
                        uses_event(
                            &mut self.analysis,
                            &self.names,
                            &self.relevant,
                            selective,
                            d,
                            self.prog.funcs[cur].name,
                        );
                    }
                }
                Op::TraceAssign { name } => {
                    if TRACED {
                        let d = deps.last().expect("dep");
                        let v = stack.last().expect("value");
                        assign_event(
                            &mut self.analysis,
                            &self.names,
                            &mut self.stats,
                            name,
                            d,
                            v,
                            self.prog.funcs[cur].name,
                        );
                    }
                }
                Op::MarkTargetName(name) => {
                    self.analysis.mark_target(&self.names[name as usize]);
                }
                Op::MarkInput => {
                    let v = vpop(&mut stack);
                    if TRACED {
                        dpop(&mut deps);
                    }
                    self.analysis.mark_input(&take_str(v));
                    stack.push(Value::Unit);
                    if TRACED {
                        deps.push(Vec::new());
                    }
                }
                Op::MarkTarget => {
                    let v = vpop(&mut stack);
                    if TRACED {
                        dpop(&mut deps);
                    }
                    self.analysis.mark_target(&take_str(v));
                    stack.push(Value::Unit);
                    if TRACED {
                        deps.push(Vec::new());
                    }
                }
                Op::Input => {
                    let default = vpop(&mut stack);
                    let key = take_str(vpop(&mut stack));
                    if TRACED {
                        // Both the key's and the default's deps are
                        // discarded — the result depends on the input
                        // name alone (the interpreter's rule).
                        dpop(&mut deps);
                        dpop(&mut deps);
                    }
                    let value = self.inputs.get(&key).cloned().unwrap_or(default);
                    // Input marking and value recording are unconditional,
                    // exactly like the interpreter (they fire with tracing
                    // off too).
                    self.analysis.mark_input(&key);
                    if let Some(n) = value.as_num() {
                        self.analysis.record_value(&key, n);
                    }
                    stack.push(value);
                    if TRACED {
                        let id = intern(
                            &mut self.names,
                            &mut self.name_ids,
                            &mut self.relevant,
                            &key,
                        );
                        deps.push(vec![id]);
                    }
                }
                Op::Print(n) => {
                    let parts: Vec<String> = stack
                        .split_off(stack.len() - n as usize)
                        .iter()
                        .map(Value::to_string)
                        .collect();
                    if TRACED {
                        deps.truncate(deps.len() - n as usize);
                    }
                    self.output.push(parts.join(" "));
                    stack.push(Value::Unit);
                    if TRACED {
                        deps.push(Vec::new());
                    }
                }
                Op::Len => {
                    let v = vpop(&mut stack);
                    let out = match v {
                        Value::Array(items) => Value::Num(items.len() as f64),
                        Value::Str(s) => Value::Num(s.len() as f64),
                        other => return Err(rt(format!("`len` of {}", other.type_name()))),
                    };
                    stack.push(out);
                    // The argument's dep set carries through to the result.
                }
                Op::Append => {
                    let item = vpop(&mut stack);
                    let arr = vpop(&mut stack);
                    if TRACED {
                        let di = dpop(&mut deps);
                        deps.last_mut().expect("dep").extend(di);
                    }
                    match arr {
                        Value::Array(mut items) => {
                            items.push(item);
                            stack.push(Value::Array(items));
                        }
                        other => return Err(rt(format!("`append` to {}", other.type_name()))),
                    }
                }
                Op::Math1(f) => {
                    let v = vpop(&mut stack);
                    let x = v
                        .as_num()
                        .ok_or_else(|| rt(format!("`{}` needs a number", f.name())))?;
                    stack.push(Value::Num(f.apply(x)));
                }
                Op::Math2 { is_min } => {
                    let b_v = vpop(&mut stack);
                    let a_v = vpop(&mut stack);
                    if TRACED {
                        let db = dpop(&mut deps);
                        deps.last_mut().expect("dep").extend(db);
                    }
                    let name = if is_min { "min" } else { "max" };
                    let a = a_v
                        .as_num()
                        .ok_or_else(|| rt(format!("`{name}` needs numbers")))?;
                    let b = b_v
                        .as_num()
                        .ok_or_else(|| rt(format!("`{name}` needs numbers")))?;
                    stack.push(Value::Num(if is_min { a.min(b) } else { a.max(b) }));
                }
                Op::Rand => {
                    // xorshift64* — deterministic under set_seed, identical
                    // to the interpreter's stream.
                    let mut x = self.rng_state;
                    x ^= x >> 12;
                    x ^= x << 25;
                    x ^= x >> 27;
                    self.rng_state = x;
                    let r =
                        (x.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 11) as f64 / (1u64 << 53) as f64;
                    stack.push(Value::Num(r));
                    if TRACED {
                        deps.push(Vec::new());
                    }
                }
                Op::AuConfigCheck { argc } => {
                    let n = stack
                        .last()
                        .expect("value")
                        .as_num()
                        .ok_or_else(|| rt("layer count must be a number"))?;
                    let layer_count = n as usize;
                    if argc as usize != 4 + layer_count {
                        return Err(rt(format!(
                            "`au_config` declared {layer_count} layers but listed {}",
                            argc as usize - 4
                        )));
                    }
                }
                Op::AuConfig { layers } => {
                    let mut hidden = Vec::with_capacity(layers as usize);
                    for _ in 0..layers {
                        let v = vpop(&mut stack);
                        if TRACED {
                            dpop(&mut deps);
                        }
                        hidden.push(v.as_num().expect("EnsureNum") as usize);
                    }
                    hidden.reverse();
                    vpop(&mut stack); // layer count, validated by AuConfigCheck
                    let algo = take_str(vpop(&mut stack));
                    let kind = take_str(vpop(&mut stack));
                    let model = take_str(vpop(&mut stack));
                    if TRACED {
                        for _ in 0..4 {
                            dpop(&mut deps);
                        }
                    }
                    let config = match (kind.as_str(), algo.as_str()) {
                        ("DNN", "AdamOpt") => ModelConfig::dnn(&hidden),
                        ("DNN", "QLearn") => ModelConfig::q_dnn(&hidden),
                        other => {
                            return Err(rt(format!(
                                "unsupported model configuration {other:?} (AuLang supports DNN with AdamOpt or QLearn)"
                            )))
                        }
                    };
                    self.engine.au_config(&model, config)?;
                    stack.push(Value::Unit);
                    if TRACED {
                        deps.push(Vec::new());
                    }
                }
                Op::AuExtract => {
                    let v = vpop(&mut stack);
                    let dv = if TRACED { dpop(&mut deps) } else { Vec::new() };
                    let ext = take_str(vpop(&mut stack));
                    if TRACED {
                        dpop(&mut deps);
                    }
                    let mut nums = Vec::new();
                    v.flatten_nums(&mut nums);
                    self.engine.au_extract(&ext, &nums);
                    if TRACED {
                        uses_event(
                            &mut self.analysis,
                            &self.names,
                            &self.relevant,
                            selective,
                            &dv,
                            self.prog.funcs[cur].name,
                        );
                    }
                    stack.push(Value::Unit);
                    if TRACED {
                        deps.push(Vec::new());
                    }
                }
                Op::AuSerialize { argc } => {
                    let mut strs = Vec::with_capacity(argc as usize);
                    for _ in 0..argc {
                        strs.push(take_str(vpop(&mut stack)));
                        if TRACED {
                            dpop(&mut deps);
                        }
                    }
                    strs.reverse();
                    let refs: Vec<&str> = strs.iter().map(String::as_str).collect();
                    let combined = self.engine.au_serialize(&refs);
                    stack.push(Value::Str(combined));
                    if TRACED {
                        deps.push(Vec::new());
                    }
                }
                Op::AuNn { argc } => {
                    let mut strs = Vec::with_capacity(argc as usize);
                    for _ in 0..argc {
                        strs.push(take_str(vpop(&mut stack)));
                        if TRACED {
                            dpop(&mut deps);
                        }
                    }
                    strs.reverse();
                    let wb_refs: Vec<&str> = strs[2..].iter().map(String::as_str).collect();
                    let out = self.engine.au_nn(&strs[0], &strs[1], &wb_refs)?;
                    stack.push(Value::Array(out.into_iter().map(Value::Num).collect()));
                    if TRACED {
                        deps.push(Vec::new());
                    }
                }
                Op::AuNnRl => {
                    let n_v = vpop(&mut stack);
                    let wb = take_str(vpop(&mut stack));
                    let term_v = vpop(&mut stack);
                    let reward_v = vpop(&mut stack);
                    let ext = take_str(vpop(&mut stack));
                    let model = take_str(vpop(&mut stack));
                    if TRACED {
                        dpop(&mut deps); // n_actions
                        dpop(&mut deps); // wb
                        let dterm = dpop(&mut deps);
                        let dreward = dpop(&mut deps);
                        dpop(&mut deps); // ext
                        dpop(&mut deps); // model
                        let fname = self.prog.funcs[cur].name;
                        uses_event(
                            &mut self.analysis,
                            &self.names,
                            &self.relevant,
                            selective,
                            &dreward,
                            fname,
                        );
                        uses_event(
                            &mut self.analysis,
                            &self.names,
                            &self.relevant,
                            selective,
                            &dterm,
                            fname,
                        );
                    }
                    let reward = reward_v
                        .as_num()
                        .ok_or_else(|| rt("reward must be a number"))?;
                    let terminal = match term_v {
                        Value::Bool(b) => b,
                        Value::Num(n) => n != 0.0,
                        other => {
                            return Err(rt(format!(
                                "terminal flag must be boolean or number, got {}",
                                other.type_name()
                            )))
                        }
                    };
                    let n_actions = n_v
                        .as_num()
                        .ok_or_else(|| rt("action count must be a number"))?
                        as usize;
                    let action = self
                        .engine
                        .au_nn_rl(&model, &ext, reward, terminal, &wb, n_actions)?;
                    stack.push(Value::Num(action as f64));
                    if TRACED {
                        deps.push(Vec::new());
                    }
                }
                Op::AuWriteBack => {
                    let key = take_str(vpop(&mut stack));
                    if TRACED {
                        dpop(&mut deps);
                    }
                    let v = self.engine.au_write_back_scalar(&key)?;
                    stack.push(Value::Num(v));
                    if TRACED {
                        deps.push(Vec::new());
                    }
                }
                Op::AuWriteBackN => {
                    let n_v = vpop(&mut stack);
                    let key = take_str(vpop(&mut stack));
                    if TRACED {
                        dpop(&mut deps);
                        dpop(&mut deps);
                    }
                    let n = n_v.as_num().ok_or_else(|| rt("size must be a number"))? as usize;
                    let mut buf = vec![0.0; n];
                    self.engine.au_write_back(&key, &mut buf)?;
                    stack.push(Value::Array(buf.into_iter().map(Value::Num).collect()));
                    if TRACED {
                        deps.push(Vec::new());
                    }
                }
                Op::AuCheckpoint { live } => {
                    let snap = build_snapshot(&self.prog, &frames, &locals, live);
                    self.checkpoint = Some(self.engine.checkpoint_with(&snap));
                    stack.push(Value::Unit);
                    if TRACED {
                        deps.push(Vec::new());
                    }
                }
                Op::AuRestore { live } => {
                    let ckpt = self
                        .checkpoint
                        .clone()
                        .ok_or_else(|| rt("au_restore without au_checkpoint"))?;
                    // Restore π, then overwrite the values of every live
                    // variable that existed at checkpoint time, keeping the
                    // current frame structure intact. The snapshot is
                    // flattened by name (innermost binding wins), matching
                    // the interpreter.
                    let snap = self.engine.restore_with(&ckpt);
                    let mut by_name: HashMap<u32, Value> = HashMap::new();
                    for frame_entries in &snap {
                        for (name, value) in frame_entries {
                            by_name.insert(*name, value.clone());
                        }
                    }
                    for (j, fr) in frames.iter().enumerate() {
                        let lv = if j + 1 < frames.len() {
                            frames[j + 1].caller_live
                        } else {
                            live
                        };
                        for &(slot, name) in &self.prog.live_sets[lv as usize] {
                            if let Some(saved) = by_name.get(&name) {
                                locals[fr.base + slot as usize] = saved.clone();
                            }
                        }
                    }
                    stack.push(Value::Unit);
                    if TRACED {
                        deps.push(Vec::new());
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Interpreter;

    /// Runs `src` through the interpreter and the VM (in `mode`) and
    /// asserts identical results, output, and step/depth stats.
    fn differential(src: &str, mode: TraceMode) -> (Interpreter, Vm) {
        let mut interp = Interpreter::compile(src).unwrap();
        interp.set_tracing(mode != TraceMode::Off);
        let mut vm = Vm::compile(src, mode).unwrap();
        let i = interp.run();
        let v = vm.run();
        match (&i, &v) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "result mismatch"),
            (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string(), "error mismatch"),
            other => panic!("engines disagree: {other:?}"),
        }
        assert_eq!(interp.output(), vm.output(), "output mismatch");
        assert_eq!(interp.stats().steps, vm.stats().steps, "step mismatch");
        assert_eq!(
            interp.stats().max_depth,
            vm.stats().max_depth,
            "depth mismatch"
        );
        if mode == TraceMode::Full {
            assert_eq!(
                interp.stats().assignments,
                vm.stats().assignments,
                "assignment-count mismatch"
            );
            assert_eq!(
                interp.analysis().to_dot(),
                vm.analysis().to_dot(),
                "analysis db mismatch"
            );
        }
        (interp, vm)
    }

    fn check(src: &str) {
        differential(src, TraceMode::Off);
        differential(src, TraceMode::Full);
        differential(src, TraceMode::Selective);
    }

    #[test]
    fn arithmetic_and_loops_match() {
        check(
            "fn main() { let s = 0; let i = 0; while (i < 5) { i = i + 1; s = s + i; } return s; }",
        );
    }

    #[test]
    fn for_sugar_and_shadowing_match() {
        check(
            "fn main() { let s = 0; for (let i = 0; i < 5; i = i + 1) { let s2 = i * 2; s = s + s2; } return s; }",
        );
    }

    #[test]
    fn functions_recursion_and_depth_match() {
        check("fn fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); } fn main() { return fib(10); }");
        check("fn f(n) { return f(n + 1); } fn main() { return f(0); }");
    }

    #[test]
    fn arrays_and_index_assignment_match() {
        check("fn main() { let a = [1, 2, 3]; a[1] = 10; return a[0] + a[1] + a[2]; }");
        check("fn main() { let a = [1]; a[5] = 2; return 0; }");
        check("fn main() { let a = 3; a[0] = 1; return 0; }");
        check("fn main() { b[0] = 1; return 0; }");
    }

    #[test]
    fn error_paths_match() {
        check("fn main() { return nope; }");
        check("fn main() { nope = 1; return 0; }");
        check("fn main() { return 1 + true; }");
        check("fn main() { return unknown_fn(1); }");
        check("fn main() { if (3) { return 1; } return 0; }");
        check("fn main() { while (3) { } return 0; }");
        check("fn main() { return -true; }");
        check("fn main() { return !3; }");
        check("fn main() { return true && 3; }");
        check("fn main() { return [1][2]; }");
        check("fn main() { return [1][true]; }");
        check("fn main() { return 3[0]; }");
        check("fn main() { break; }");
        check("fn f() { continue; return 0; } fn main() { return f(); }");
        check("fn f(a, b) { return a; } fn main() { return f(1); }");
        check("fn main() { return len(3); }");
        check("fn main() { return append(3, 1); }");
        check("fn main() { return floor(true); }");
        check("fn main() { return min(1, true); }");
        check("fn main() { return au_restore(); }");
        check("fn main() { au_config(\"M\", \"DNN\", \"AdamOpt\", 2, 4); return 0; }");
        check("fn main() { au_config(\"M\", \"CNN\", \"AdamOpt\", 1, 4); return 0; }");
        check("fn main() { au_config(\"M\", \"DNN\", \"AdamOpt\", true, 4); return 0; }");
        check("fn main() { au_config(\"M\"); return 0; }");
        check("fn main() { au_extract(3, 1); return 0; }");
        check("fn main() { return rand(1); }");
        check("fn main() { return input(\"k\"); }");
    }

    #[test]
    fn short_circuit_semantics_match() {
        check("fn main() { let x = 0; if (false && nope_is_not_evaluated_lazily()) { x = 1; } return x; }");
        check("fn main() { if (true || 3) { return 1; } return 0; }");
        check(
            "fn main() { let a = 1; let b = 2; if (a < b && b < 3) { return a + b; } return 0; }",
        );
    }

    #[test]
    fn builtins_and_rand_stream_match() {
        check("fn main() { return [len([1, 2]), len(\"abc\"), floor(2.7), abs(0 - 3), min(4, 2), max(4, 2)]; }");
        let src = "fn main() { let s = 0; let i = 0; while (i < 10) { s = s + rand(); i = i + 1; } return s; }";
        let mut interp = Interpreter::compile(src).unwrap();
        interp.set_seed(42);
        let mut vm = Vm::compile(src, TraceMode::Off).unwrap();
        vm.set_seed(42);
        assert_eq!(interp.run().unwrap(), vm.run().unwrap());
    }

    #[test]
    fn step_limit_matches() {
        let src = "fn main() { let i = 0; while (true) { i = i + 1; } return i; }";
        let mut interp = Interpreter::compile(src).unwrap();
        interp.set_step_limit(1000);
        let mut vm = Vm::compile(src, TraceMode::Off).unwrap();
        vm.set_step_limit(1000);
        let a = interp.run().unwrap_err();
        let b = vm.run().unwrap_err();
        assert_eq!(a.to_string(), b.to_string());
        assert_eq!(interp.stats().steps, vm.stats().steps);
    }

    #[test]
    fn inputs_flow_and_analysis_matches() {
        let src = r#"
            fn main() {
                let raw = input("raw", 10);
                let scaled = raw / 10.0;
                let derived = scaled * scaled;
                au_extract("D", derived);
                let out = 0;
                out = au_write_back("D");
                return out;
            }
        "#;
        let mut interp = Interpreter::compile(src).unwrap();
        interp.set_input("raw", Value::Num(5.0));
        let mut vm = Vm::compile(src, TraceMode::Full).unwrap();
        vm.set_input("raw", Value::Num(5.0));
        assert_eq!(interp.run().unwrap(), vm.run().unwrap());
        assert_eq!(interp.analysis().to_dot(), vm.analysis().to_dot());
    }

    #[test]
    fn checkpoint_restore_matches() {
        let src = r#"
            fn main() {
                let x = 1;
                let log = [];
                au_checkpoint();
                x = x + 1;
                log = append(log, x);
                if (x < 3) { au_restore(); }
                return [x, len(log)];
            }
        "#;
        // The restore loop: x rolls back to 1, log rolls back too, so the
        // program loops until the step budget — bound it identically.
        let mut interp = Interpreter::compile(src).unwrap();
        interp.set_step_limit(500);
        let mut vm = Vm::compile(src, TraceMode::Full).unwrap();
        vm.set_step_limit(500);
        let a = interp.run();
        let b = vm.run();
        match (&a, &b) {
            (Ok(x), Ok(y)) => assert_eq!(x, y),
            (Err(x), Err(y)) => assert_eq!(x.to_string(), y.to_string()),
            other => panic!("engines disagree: {other:?}"),
        }
        assert_eq!(interp.stats().steps, vm.stats().steps);
    }

    #[test]
    fn untraced_program_has_zero_trace_ops() {
        let prog = compile_program(&parse(crate::corpus::CANNY).unwrap(), TraceMode::Off);
        assert_eq!(prog.trace_op_count(), 0);
        let full = compile_program(&parse(crate::corpus::CANNY).unwrap(), TraceMode::Full);
        let selective =
            compile_program(&parse(crate::corpus::CANNY).unwrap(), TraceMode::Selective);
        assert!(full.trace_op_count() > 0);
        assert!(
            selective.trace_op_count() < full.trace_op_count(),
            "selective ({}) should emit fewer trace ops than full ({})",
            selective.trace_op_count(),
            full.trace_op_count()
        );
        assert_eq!(selective.effective_trace_mode(), TraceMode::Selective);
    }

    #[test]
    fn selective_falls_back_to_full_on_computed_names() {
        let src = r#"
            fn main() {
                let k = "dyn";
                let v = input(k, 1);
                return v;
            }
        "#;
        let prog = compile_program(&parse(src).unwrap(), TraceMode::Selective);
        assert_eq!(prog.requested_trace_mode(), TraceMode::Selective);
        assert_eq!(prog.effective_trace_mode(), TraceMode::Full);
    }
}
