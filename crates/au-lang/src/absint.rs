//! Interprocedural abstract interpretation over the AuLang AST.
//!
//! This module powers three consumers from one analysis:
//!
//! 1. the bytecode **optimizer** in `compile.rs` (constant folding, branch
//!    pruning, dead-store elimination, trace-opcode elision),
//! 2. the **AU011–AU015 lint family** in `au-lint` (dead extracted
//!    variables, constant features, unreachable checkpoints, possible
//!    division by zero, loop-invariant instrumentation), and
//! 3. the tightened **`StaticFilter`** in `au-trace` (constant-valued
//!    extraction candidates carry no signal and are pruned).
//!
//! The engine is a flow- and branch-sensitive abstract interpreter with
//! three cooperating value domains — intervals with an explicit may-be-NaN
//! flag for numbers, a may-true/may-false pair for booleans, and optional
//! exact strings — plus a recursive array domain with a depth cap. Loops
//! are solved to a fixed point with widening after a few precise
//! iterations; calls are analyzed with context-joining summaries
//! (recursion collapses parameters to ⊤ so one summary covers every
//! unrolling). A separate backward pass computes per-function liveness for
//! dead-store detection, and small syntactic passes find loop-invariant
//! assignments and protocol string names.
//!
//! # Soundness contract
//!
//! Every fact exposed through [`Analysis`] is an *over-approximation
//! claim*: a span in `folds` evaluates to exactly that value on **every**
//! concrete execution that reaches it, a span in `totals` is pure and
//! cannot error, a span in `unreachable` is never executed, and a name in
//! `constants` only ever holds that one number. The optimizer and the
//! differential test suite lean on these claims, so the transfer functions
//! here deliberately mirror `interp.rs` (the semantic oracle) — including
//! NaN propagation, `-0.0`/`+0.0` distinction, short-circuit evaluation
//! order, and the arity-check-before-argument-evaluation order of the
//! builtins. When the analysis runs out of fuel it sets `complete = false`
//! and all semantic fact sets are emptied rather than left partial.

use crate::ast::{BinOp, Expr, ExprKind, Function, Program, Span, Stmt, StmtKind, UnOp};
use std::collections::btree_map::Entry as BEntry;
use std::collections::hash_map::Entry as HEntry;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Precise loop iterations before widening kicks in.
const WIDEN_AFTER: u32 = 3;
/// Hard cap on loop fixpoint iterations (then the head is clobbered to ⊤).
const MAX_LOOP_ITERS: u32 = 60;
/// Times a function body is re-walked before its parameters collapse to ⊤.
const MAX_FN_RUNS: u32 = 8;
/// Abstract evaluation fuel; exhaustion flips `complete = false`.
const FUEL: u64 = 4_000_000;
/// Join/widen recursion depth cap for nested array element domains.
const ARRAY_DEPTH_CAP: u32 = 4;
/// Liveness loop fixpoint cap (then the head falls back to all-live).
const MAX_LIVE_ITERS: u32 = 100;

// ---------------------------------------------------------------------
// Interval domain
// ---------------------------------------------------------------------

/// A closed numeric interval `[lo, hi]` with an explicit may-be-NaN flag.
///
/// The bounds themselves are never NaN (`-inf`/`+inf` express
/// unboundedness); a value that may be NaN at runtime sets `nan` instead.
/// Equality is **bitwise** on the bounds so `-0.0` and `+0.0` stay
/// distinct — folding `[-0.0, +0.0]` to a single constant would diverge
/// from the interpreter on `1.0 / x` and on printing.
#[derive(Debug, Clone, Copy)]
pub struct Interval {
    /// Lower bound (never NaN; `-inf` when unbounded below).
    pub lo: f64,
    /// Upper bound (never NaN; `+inf` when unbounded above).
    pub hi: f64,
    /// Whether the value may be NaN.
    pub nan: bool,
}

impl PartialEq for Interval {
    fn eq(&self, other: &Self) -> bool {
        self.lo.to_bits() == other.lo.to_bits()
            && self.hi.to_bits() == other.hi.to_bits()
            && self.nan == other.nan
    }
}

/// Sign-aware minimum for lower bounds: prefers `-0.0` over `+0.0`.
fn lo_min(x: f64, y: f64) -> f64 {
    if x < y {
        x
    } else if y < x {
        y
    } else if x.is_sign_negative() {
        x
    } else {
        y
    }
}

/// Sign-aware maximum for upper bounds: prefers `+0.0` over `-0.0`.
fn hi_max(x: f64, y: f64) -> f64 {
    if x > y {
        x
    } else if y > x {
        y
    } else if x.is_sign_positive() {
        x
    } else {
        y
    }
}

impl Interval {
    /// The unconstrained interval: any number or NaN.
    pub fn top_nan() -> Self {
        Interval {
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
            nan: true,
        }
    }

    /// The exact interval for one concrete value.
    pub fn point(x: f64) -> Self {
        if x.is_nan() {
            Interval::top_nan()
        } else {
            Interval {
                lo: x,
                hi: x,
                nan: false,
            }
        }
    }

    /// Builds an interval, falling back to [`Interval::top_nan`] if a
    /// bound computation produced NaN.
    pub fn make(lo: f64, hi: f64, nan: bool) -> Self {
        if lo.is_nan() || hi.is_nan() {
            Interval::top_nan()
        } else {
            Interval { lo, hi, nan }
        }
    }

    /// Least upper bound.
    pub fn join(self, o: Interval) -> Interval {
        Interval::make(
            lo_min(self.lo, o.lo),
            hi_max(self.hi, o.hi),
            self.nan || o.nan,
        )
    }

    /// Widening: any bound that moved goes straight to infinity.
    pub fn widen(self, o: Interval) -> Interval {
        let lo = if lo_min(self.lo, o.lo).to_bits() == self.lo.to_bits() {
            self.lo
        } else {
            f64::NEG_INFINITY
        };
        let hi = if hi_max(self.hi, o.hi).to_bits() == self.hi.to_bits() {
            self.hi
        } else {
            f64::INFINITY
        };
        Interval::make(lo, hi, self.nan || o.nan)
    }

    /// The single concrete value this interval denotes, if any.
    ///
    /// Requires bitwise-equal finite bounds and no NaN, so `[-0.0, +0.0]`
    /// is *not* a constant.
    pub fn as_const(self) -> Option<f64> {
        if !self.nan && self.lo.is_finite() && self.lo.to_bits() == self.hi.to_bits() {
            Some(self.lo)
        } else {
            None
        }
    }

    fn corners(self, o: Interval, f: impl Fn(f64, f64) -> f64) -> Interval {
        let cs = [
            f(self.lo, o.lo),
            f(self.lo, o.hi),
            f(self.hi, o.lo),
            f(self.hi, o.hi),
        ];
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for c in cs {
            if c.is_nan() {
                return Interval::top_nan();
            }
            lo = lo_min(lo, c);
            hi = hi_max(hi, c);
        }
        Interval::make(lo, hi, self.nan || o.nan)
    }

    /// Abstract `+`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, o: Interval) -> Interval {
        self.corners(o, |a, b| a + b)
    }

    /// Abstract `-`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, o: Interval) -> Interval {
        self.corners(o, |a, b| a - b)
    }

    /// Abstract `*`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, o: Interval) -> Interval {
        self.corners(o, |a, b| a * b)
    }

    /// Abstract `/`. A divisor that may be zero (or NaN) yields ⊤ — IEEE
    /// division by zero produces ±inf/NaN values, not errors.
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, o: Interval) -> Interval {
        if o.nan || (o.lo <= 0.0 && o.hi >= 0.0) {
            Interval::top_nan()
        } else {
            self.corners(o, |a, b| a / b)
        }
    }

    /// Abstract `%` (Rust `f64` remainder semantics).
    #[allow(clippy::should_implement_trait)]
    pub fn rem(self, o: Interval) -> Interval {
        if !self.nan && !o.nan && o.lo > 0.0 && self.lo >= 0.0 {
            // x % y ∈ [0, min(x, y)] for x ≥ 0, y > 0; x = inf gives NaN.
            Interval::make(0.0, self.hi.min(o.hi), self.hi.is_infinite())
        } else {
            Interval::top_nan()
        }
    }

    /// Abstract unary negation.
    #[allow(clippy::should_implement_trait)]
    pub fn neg(self) -> Interval {
        Interval::make(-self.hi, -self.lo, self.nan)
    }

    /// Abstract `min(a, b)` mirroring `f64::min` (NaN loses to a number).
    pub fn min_with(self, o: Interval) -> Interval {
        if self.nan || o.nan {
            // Either operand's whole range can win when the other is NaN.
            Interval::make(
                lo_min(self.lo, o.lo),
                hi_max(self.hi, o.hi),
                self.nan && o.nan,
            )
        } else {
            Interval::make(lo_min(self.lo, o.lo), self.hi.min(o.hi), false)
        }
    }

    /// Abstract `max(a, b)` mirroring `f64::max`.
    pub fn max_with(self, o: Interval) -> Interval {
        if self.nan || o.nan {
            Interval::make(
                lo_min(self.lo, o.lo),
                hi_max(self.hi, o.hi),
                self.nan && o.nan,
            )
        } else {
            Interval::make(self.lo.max(o.lo), hi_max(self.hi, o.hi), false)
        }
    }

    /// Abstract `floor`.
    pub fn floor_i(self) -> Interval {
        Interval::make(self.lo.floor(), self.hi.floor(), self.nan)
    }

    /// Abstract `abs`.
    pub fn abs_i(self) -> Interval {
        if self.lo >= 0.0 {
            self
        } else if self.hi <= 0.0 {
            self.neg()
        } else {
            Interval::make(0.0, (-self.lo).max(self.hi), self.nan)
        }
    }

    /// Abstract `sqrt` (negative input yields NaN, not an error).
    pub fn sqrt_i(self) -> Interval {
        if self.hi < 0.0 {
            // Entire range is negative: the result is always NaN.
            return Interval {
                lo: 0.0,
                hi: 0.0,
                nan: true,
            };
        }
        let nan = self.nan || self.lo < 0.0;
        Interval::make(self.lo.max(0.0).sqrt(), self.hi.sqrt(), nan)
    }

    /// Abstract `sin`/`cos`: exact on points, `[-1, 1]` on bounded ranges.
    pub fn trig_i(self, f: impl Fn(f64) -> f64) -> Interval {
        if let Some(c) = self.as_const() {
            return Interval::point(f(c));
        }
        let nan = self.nan || self.lo == f64::NEG_INFINITY || self.hi == f64::INFINITY;
        Interval::make(-1.0, 1.0, nan)
    }

    /// Abstract `exp` (monotone; `exp(-inf) = 0`, `exp(inf) = inf`).
    pub fn exp_i(self) -> Interval {
        Interval::make(self.lo.exp(), self.hi.exp(), self.nan)
    }
}

// ---------------------------------------------------------------------
// Boolean domain
// ---------------------------------------------------------------------

/// The four-point boolean domain: which truth values are possible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AbsBool {
    /// `true` is a possible runtime value.
    pub may_true: bool,
    /// `false` is a possible runtime value.
    pub may_false: bool,
}

impl AbsBool {
    /// Both truth values possible.
    pub const TOP: AbsBool = AbsBool {
        may_true: true,
        may_false: true,
    };

    /// The exact abstraction of one concrete boolean.
    pub fn of(b: bool) -> Self {
        AbsBool {
            may_true: b,
            may_false: !b,
        }
    }

    /// The single concrete value this denotes, if decided.
    pub fn as_const(self) -> Option<bool> {
        match (self.may_true, self.may_false) {
            (true, false) => Some(true),
            (false, true) => Some(false),
            _ => None,
        }
    }

    /// Least upper bound.
    pub fn join(self, o: AbsBool) -> AbsBool {
        AbsBool {
            may_true: self.may_true || o.may_true,
            may_false: self.may_false || o.may_false,
        }
    }

    /// Abstract logical negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> AbsBool {
        AbsBool {
            may_true: self.may_false,
            may_false: self.may_true,
        }
    }
}

// ---------------------------------------------------------------------
// Value domain
// ---------------------------------------------------------------------

/// An abstract AuLang value.
#[derive(Debug, Clone, PartialEq)]
pub enum AbsVal {
    /// No value reaches this point (unreachable / certain error).
    Bottom,
    /// A number within an interval.
    Num(Interval),
    /// A boolean.
    Bool(AbsBool),
    /// A string, exactly known when `Some`.
    Str(Option<String>),
    /// An array: element join and length interval.
    Array(Box<AbsVal>, Interval),
    /// The unit value.
    Unit,
    /// Any value at all.
    Top,
}

impl AbsVal {
    /// Least upper bound (array elements capped at a fixed nesting depth).
    pub fn join(&self, other: &AbsVal) -> AbsVal {
        self.join_depth(other, 0)
    }

    fn join_depth(&self, other: &AbsVal, d: u32) -> AbsVal {
        use AbsVal::*;
        match (self, other) {
            (Bottom, x) | (x, Bottom) => x.clone(),
            (Top, _) | (_, Top) => Top,
            (Num(a), Num(b)) => Num(a.join(*b)),
            (Bool(a), Bool(b)) => Bool(a.join(*b)),
            (Str(a), Str(b)) => Str(if a == b { a.clone() } else { None }),
            (Unit, Unit) => Unit,
            (Array(ea, la), Array(eb, lb)) => {
                let elem = if d >= ARRAY_DEPTH_CAP {
                    Top
                } else {
                    ea.join_depth(eb, d + 1)
                };
                Array(Box::new(elem), la.join(*lb))
            }
            _ => Top,
        }
    }

    /// Widening: like join but interval bounds jump to infinity.
    pub fn widen(&self, other: &AbsVal) -> AbsVal {
        self.widen_depth(other, 0)
    }

    fn widen_depth(&self, other: &AbsVal, d: u32) -> AbsVal {
        use AbsVal::*;
        match (self, other) {
            (Num(a), Num(b)) => Num(a.widen(*b)),
            (Array(ea, la), Array(eb, lb)) => {
                let elem = if d >= ARRAY_DEPTH_CAP {
                    Top
                } else {
                    ea.widen_depth(eb, d + 1)
                };
                Array(Box::new(elem), la.widen(*lb))
            }
            _ => self.join(other),
        }
    }

    /// Whether every value of `self` is also a value of `other`.
    pub fn le(&self, other: &AbsVal) -> bool {
        self.join(other) == *other
    }
}

/// The numeric view of a value: `Some((interval, certain))` when the value
/// can be a number; `certain` means it is *always* a number.
fn as_num_domain(v: &AbsVal) -> Option<(Interval, bool)> {
    match v {
        AbsVal::Num(i) => Some((*i, true)),
        AbsVal::Top | AbsVal::Bottom => Some((Interval::top_nan(), false)),
        _ => None,
    }
}

/// The boolean view of a value, analogous to [`as_num_domain`].
fn as_bool_domain(v: &AbsVal) -> Option<(AbsBool, bool)> {
    match v {
        AbsVal::Bool(b) => Some((*b, true)),
        AbsVal::Top | AbsVal::Bottom => Some((AbsBool::TOP, false)),
        _ => None,
    }
}

/// Abstract `==` over full values, mirroring the interpreter's `Value`
/// equality (NaN ≠ NaN; `-0.0 == +0.0`; cross-type comparison is `false`).
fn abs_eq(a: &AbsVal, b: &AbsVal) -> AbsBool {
    use AbsVal::*;
    match (a, b) {
        (Top | Bottom, _) | (_, Top | Bottom) => AbsBool::TOP,
        (Array(..), _) | (_, Array(..)) => AbsBool::TOP,
        (Num(x), Num(y)) => {
            if let (Some(cx), Some(cy)) = (x.as_const(), y.as_const()) {
                // Concrete f64 equality on two known constants.
                return AbsBool::of(cx == cy);
            }
            if !x.nan && !y.nan && (x.hi < y.lo || y.hi < x.lo) {
                return AbsBool::of(false);
            }
            AbsBool::TOP
        }
        (Bool(x), Bool(y)) => match (x.as_const(), y.as_const()) {
            (Some(cx), Some(cy)) => AbsBool::of(cx == cy),
            _ => AbsBool::TOP,
        },
        (Str(Some(x)), Str(Some(y))) => AbsBool::of(x == y),
        (Str(_), Str(_)) => AbsBool::TOP,
        (Unit, Unit) => AbsBool::of(true),
        // Definitely different runtime types: Value equality says false.
        _ => AbsBool::of(false),
    }
}

/// Abstract `<`/`<=`/`>`/`>=` on intervals (NaN makes comparisons false).
fn abs_cmp(op: BinOp, a: Interval, b: Interval) -> AbsBool {
    let (certain_true, certain_false) = match op {
        BinOp::Lt => (!a.nan && !b.nan && a.hi < b.lo, a.lo >= b.hi),
        BinOp::Le => (!a.nan && !b.nan && a.hi <= b.lo, a.lo > b.hi),
        BinOp::Gt => (!a.nan && !b.nan && a.lo > b.hi, a.hi <= b.lo),
        BinOp::Ge => (!a.nan && !b.nan && a.lo >= b.hi, a.hi < b.lo),
        _ => (false, false),
    };
    // certain_false relies on comparisons being false under NaN, so it
    // needs no NaN guard; certain_true does.
    AbsBool {
        may_true: !certain_false,
        may_false: !certain_true,
    }
}

// ---------------------------------------------------------------------
// Environment and flow
// ---------------------------------------------------------------------

/// A lexical environment: a stack of scopes mapping names to values.
#[derive(Debug, Clone, PartialEq)]
struct Env {
    scopes: Vec<BTreeMap<String, AbsVal>>,
}

impl Env {
    fn new() -> Self {
        Env {
            scopes: vec![BTreeMap::new()],
        }
    }

    fn depth(&self) -> usize {
        self.scopes.len()
    }

    fn push(&mut self) {
        self.scopes.push(BTreeMap::new());
    }

    fn truncate_to(&mut self, depth: usize) {
        self.scopes.truncate(depth.max(1));
    }

    fn declare(&mut self, name: &str, v: AbsVal) {
        self.scopes
            .last_mut()
            .expect("env has a scope")
            .insert(name.to_owned(), v);
    }

    fn get(&self, name: &str) -> Option<&AbsVal> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn assign(&mut self, name: &str, v: AbsVal) -> bool {
        for scope in self.scopes.iter_mut().rev() {
            if let Some(slot) = scope.get_mut(name) {
                *slot = v;
                return true;
            }
        }
        false
    }

    /// Forgets everything: all bindings become ⊤ (checkpoint restore may
    /// rewrite any variable that existed at snapshot time).
    fn clobber(&mut self) {
        for scope in &mut self.scopes {
            for v in scope.values_mut() {
                *v = AbsVal::Top;
            }
        }
    }

    fn merge_with(&self, other: &Env, f: impl Fn(&AbsVal, &AbsVal) -> AbsVal) -> Env {
        let n = self.scopes.len().min(other.scopes.len());
        let mut scopes = Vec::with_capacity(n);
        for (sa, sb) in self.scopes[..n].iter().zip(&other.scopes[..n]) {
            let mut out = BTreeMap::new();
            for (k, va) in sa {
                match sb.get(k) {
                    Some(vb) => out.insert(k.clone(), f(va, vb)),
                    None => out.insert(k.clone(), AbsVal::Top),
                };
            }
            for k in sb.keys() {
                if !sa.contains_key(k) {
                    out.insert(k.clone(), AbsVal::Top);
                }
            }
            scopes.push(out);
        }
        Env { scopes }
    }

    fn join(&self, other: &Env) -> Env {
        self.merge_with(other, |a, b| a.join(b))
    }

    fn widen(&self, other: &Env) -> Env {
        self.merge_with(other, |a, b| a.widen(b))
    }
}

/// The result of walking a statement or block: where control may go next.
struct Flow {
    /// Environment on normal fall-through, if reachable.
    fall: Option<Env>,
    /// Environments flowing to the innermost enclosing loop's exit.
    brk: Vec<Env>,
    /// Environments flowing to the innermost enclosing loop's back edge.
    cont: Vec<Env>,
    /// Join of all returned values (`Bottom` when no return is reachable).
    ret: AbsVal,
    /// Whether execution is pure, error-free, and terminating throughout.
    total: bool,
}

impl Flow {
    fn fall(env: Env) -> Flow {
        Flow {
            fall: Some(env),
            brk: Vec::new(),
            cont: Vec::new(),
            ret: AbsVal::Bottom,
            total: true,
        }
    }

    /// Certain runtime error: nothing flows onward.
    fn halt() -> Flow {
        Flow {
            fall: None,
            brk: Vec::new(),
            cont: Vec::new(),
            ret: AbsVal::Bottom,
            total: false,
        }
    }
}

/// The result of abstractly evaluating an expression.
struct Out {
    val: AbsVal,
    /// Pure, cannot error, and (including any callees) terminates.
    total: bool,
}

impl Out {
    fn top() -> Out {
        Out {
            val: AbsVal::Top,
            total: false,
        }
    }
}

fn join_env_opt(a: Option<Env>, b: Env) -> Option<Env> {
    Some(match a {
        Some(a) => a.join(&b),
        None => b,
    })
}

// ---------------------------------------------------------------------
// Public result types
// ---------------------------------------------------------------------

/// A provably-constant expression value, ready to splice into the AST.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Folded {
    /// A numeric constant.
    Num(f64),
    /// A boolean constant.
    Bool(bool),
}

/// A store whose value is never read afterwards.
#[derive(Debug, Clone, PartialEq)]
pub struct DeadStore {
    /// The stored-to variable.
    pub name: String,
    /// Span of the whole `let`/assignment statement.
    pub span: Span,
    /// Span of the right-hand-side expression.
    pub value_span: Span,
}

/// A division site whose divisor interval contains zero.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DivSite {
    /// Span of the division expression.
    pub span: Span,
    /// Divisor lower bound.
    pub lo: f64,
    /// Divisor upper bound.
    pub hi: f64,
}

/// An assignment inside a loop whose right-hand side cannot change across
/// iterations.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopInvariant {
    /// The assigned variable.
    pub name: String,
    /// Span of the invariant statement.
    pub span: Span,
}

/// Everything the abstract interpreter proved about a program.
///
/// All semantic fact sets (`constants`, `folds`, `totals`, `unreachable`,
/// `div_zero`) are emptied when `complete` is false; the syntactic passes
/// (`dead_stores`, `loop_invariant`) are always valid.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Variables that only ever hold one finite numeric value.
    pub constants: BTreeMap<String, f64>,
    /// Stores whose values are never subsequently read.
    pub dead_stores: Vec<DeadStore>,
    /// Statement spans no concrete execution reaches.
    pub unreachable: Vec<Span>,
    /// Division sites with a finite divisor interval containing zero.
    pub div_zero: Vec<DivSite>,
    /// Loop-body assignments whose right-hand side is loop-invariant.
    pub loop_invariant: Vec<LoopInvariant>,
    /// Expression spans (byte start/end) that always evaluate to one value
    /// *and* are pure — safe to replace with a literal.
    pub folds: HashMap<(usize, usize), Folded>,
    /// Expression spans that are pure, error-free, and terminating.
    pub totals: HashSet<(usize, usize)>,
    /// Whether the analysis ran to completion within its fuel budget.
    pub complete: bool,
}

// ---------------------------------------------------------------------
// Analyzer
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct FnSummary {
    params: Vec<AbsVal>,
    ret: AbsVal,
    total: bool,
    runs: u32,
    reported: bool,
}

struct Analyzer<'a> {
    fns: HashMap<&'a str, &'a Function>,
    /// Functions on a cycle in the call graph: always analyzed with ⊤
    /// parameters so the in-progress-call cut stays sound.
    recursive: HashSet<String>,
    /// Functions that may (transitively) checkpoint or restore — a call
    /// clobbers every caller-visible binding.
    may_ckpt: HashSet<String>,
    summaries: HashMap<String, FnSummary>,
    stack: Vec<String>,
    reporting: bool,
    fuel: u64,
    complete: bool,
    visited: HashSet<(usize, usize)>,
    totals: HashMap<(usize, usize), bool>,
    folds: HashMap<(usize, usize), Option<Folded>>,
    divs: BTreeMap<(usize, usize), Interval>,
    assigns: BTreeMap<String, AbsVal>,
}

fn is_user_fn(fns: &HashMap<&str, &Function>, name: &str) -> bool {
    !name.starts_with("au_") && fns.contains_key(name)
}

fn is_literal(e: &Expr) -> bool {
    matches!(
        e.kind,
        ExprKind::Num(_) | ExprKind::Bool(_) | ExprKind::Str(_)
    )
}

fn folded_const(v: &AbsVal) -> Option<Folded> {
    match v {
        AbsVal::Num(i) => i.as_const().map(Folded::Num),
        AbsVal::Bool(b) => b.as_const().map(Folded::Bool),
        _ => None,
    }
}

impl<'a> Analyzer<'a> {
    fn new(program: &'a Program) -> Self {
        let fns: HashMap<&str, &Function> = program
            .functions
            .iter()
            .map(|f| (f.name.as_str(), f))
            .collect();
        let (recursive, may_ckpt) = call_graph_facts(&fns);
        Analyzer {
            fns,
            recursive,
            may_ckpt,
            summaries: HashMap::new(),
            stack: Vec::new(),
            reporting: true,
            fuel: FUEL,
            complete: true,
            visited: HashSet::new(),
            totals: HashMap::new(),
            folds: HashMap::new(),
            divs: BTreeMap::new(),
            assigns: BTreeMap::new(),
        }
    }

    fn record_assign(&mut self, name: &str, v: &AbsVal) {
        if !self.reporting {
            return;
        }
        match self.assigns.entry(name.to_owned()) {
            BEntry::Occupied(mut o) => {
                let joined = o.get().join(v);
                o.insert(joined);
            }
            BEntry::Vacant(slot) => {
                slot.insert(v.clone());
            }
        }
    }

    // -----------------------------------------------------------------
    // Expression evaluation
    // -----------------------------------------------------------------

    fn eval(&mut self, e: &Expr, env: &mut Env) -> Out {
        if self.fuel == 0 {
            self.complete = false;
            return Out::top();
        }
        self.fuel -= 1;
        let out = self.eval_inner(e, env);
        if self.reporting && !e.span.is_dummy() && !is_literal(e) {
            let key = (e.span.start, e.span.end);
            self.totals
                .entry(key)
                .and_modify(|t| *t &= out.total)
                .or_insert(out.total);
            let cand = if out.total {
                folded_const(&out.val)
            } else {
                None
            };
            match self.folds.entry(key) {
                HEntry::Occupied(mut o) => {
                    if *o.get() != cand {
                        o.insert(None);
                    }
                }
                HEntry::Vacant(slot) => {
                    slot.insert(cand);
                }
            }
        }
        out
    }

    fn eval_inner(&mut self, e: &Expr, env: &mut Env) -> Out {
        match &e.kind {
            ExprKind::Num(n) => Out {
                val: AbsVal::Num(Interval::point(*n)),
                total: true,
            },
            ExprKind::Bool(b) => Out {
                val: AbsVal::Bool(AbsBool::of(*b)),
                total: true,
            },
            ExprKind::Str(s) => Out {
                val: AbsVal::Str(Some(s.clone())),
                total: true,
            },
            ExprKind::Var(name) => match env.get(name) {
                Some(v) => Out {
                    val: v.clone(),
                    total: true,
                },
                // Undefined variable: certain runtime error.
                None => Out {
                    val: AbsVal::Bottom,
                    total: false,
                },
            },
            ExprKind::Array(items) => {
                let mut elem = AbsVal::Bottom;
                let mut total = true;
                for item in items {
                    let o = self.eval(item, env);
                    elem = elem.join(&o.val);
                    total &= o.total;
                }
                Out {
                    val: AbsVal::Array(Box::new(elem), Interval::point(items.len() as f64)),
                    total,
                }
            }
            ExprKind::Index(arr, idx) => {
                let a = self.eval(arr, env);
                let i = self.eval(idx, env);
                let val = match &a.val {
                    AbsVal::Array(elem, _) => (**elem).clone(),
                    AbsVal::Top | AbsVal::Bottom => AbsVal::Top,
                    _ => AbsVal::Bottom,
                };
                let total = match (&a.val, as_num_domain(&i.val)) {
                    (AbsVal::Array(_, len), Some((ii, true))) => {
                        a.total
                            && i.total
                            && ii
                                .as_const()
                                .is_some_and(|c| c >= 0.0 && c.fract() == 0.0 && c < len.lo)
                    }
                    _ => false,
                };
                Out { val, total }
            }
            ExprKind::Call { name, args } => self.eval_call(name, args, env),
            ExprKind::Binary { op, lhs, rhs } => self.eval_binary(e, *op, lhs, rhs, env),
            ExprKind::Unary { op, expr } => {
                let o = self.eval(expr, env);
                match op {
                    UnOp::Neg => match as_num_domain(&o.val) {
                        Some((i, certain)) => Out {
                            val: AbsVal::Num(i.neg()),
                            total: o.total && certain,
                        },
                        None => Out {
                            val: AbsVal::Bottom,
                            total: false,
                        },
                    },
                    UnOp::Not => match as_bool_domain(&o.val) {
                        Some((b, certain)) => Out {
                            val: AbsVal::Bool(b.not()),
                            total: o.total && certain,
                        },
                        None => Out {
                            val: AbsVal::Bottom,
                            total: false,
                        },
                    },
                }
            }
        }
    }

    fn eval_binary(&mut self, e: &Expr, op: BinOp, lhs: &Expr, rhs: &Expr, env: &mut Env) -> Out {
        if matches!(op, BinOp::And | BinOp::Or) {
            let l = self.eval(lhs, env);
            let Some((lb, lcertain)) = as_bool_domain(&l.val) else {
                return Out {
                    val: AbsVal::Bottom,
                    total: false,
                };
            };
            // Short-circuit: when the left side decides the result the
            // interpreter never evaluates the right side.
            match op {
                BinOp::And if !lb.may_true => {
                    return Out {
                        val: AbsVal::Bool(AbsBool::of(false)),
                        total: l.total && lcertain,
                    }
                }
                BinOp::Or if !lb.may_false => {
                    return Out {
                        val: AbsVal::Bool(AbsBool::of(true)),
                        total: l.total && lcertain,
                    }
                }
                _ => {}
            }
            let r = self.eval(rhs, env);
            let Some((rb, rcertain)) = as_bool_domain(&r.val) else {
                return Out {
                    val: AbsVal::Bottom,
                    total: false,
                };
            };
            let val = match op {
                BinOp::And => AbsBool {
                    may_true: lb.may_true && rb.may_true,
                    may_false: lb.may_false || rb.may_false,
                },
                _ => AbsBool {
                    may_true: lb.may_true || rb.may_true,
                    may_false: lb.may_false && rb.may_false,
                },
            };
            return Out {
                val: AbsVal::Bool(val),
                total: l.total && r.total && lcertain && rcertain,
            };
        }

        let l = self.eval(lhs, env);
        let r = self.eval(rhs, env);
        match op {
            BinOp::Eq | BinOp::Ne => {
                let mut b = abs_eq(&l.val, &r.val);
                if op == BinOp::Ne {
                    b = b.not();
                }
                Out {
                    val: AbsVal::Bool(b),
                    total: l.total && r.total,
                }
            }
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                match (as_num_domain(&l.val), as_num_domain(&r.val)) {
                    (Some((li, lc)), Some((ri, rc))) => Out {
                        val: AbsVal::Bool(abs_cmp(op, li, ri)),
                        total: l.total && r.total && lc && rc,
                    },
                    _ => Out {
                        val: AbsVal::Bottom,
                        total: false,
                    },
                }
            }
            _ => match (as_num_domain(&l.val), as_num_domain(&r.val)) {
                (Some((li, lc)), Some((ri, rc))) => {
                    let iv = match op {
                        BinOp::Add => li.add(ri),
                        BinOp::Sub => li.sub(ri),
                        BinOp::Mul => li.mul(ri),
                        BinOp::Div => {
                            if self.reporting && rc && !e.span.is_dummy() {
                                let key = (e.span.start, e.span.end);
                                match self.divs.entry(key) {
                                    BEntry::Occupied(mut o) => {
                                        let j = o.get().join(ri);
                                        o.insert(j);
                                    }
                                    BEntry::Vacant(slot) => {
                                        slot.insert(ri);
                                    }
                                }
                            }
                            li.div(ri)
                        }
                        _ => li.rem(ri),
                    };
                    Out {
                        val: AbsVal::Num(iv),
                        total: l.total && r.total && lc && rc,
                    }
                }
                _ => Out {
                    val: AbsVal::Bottom,
                    total: false,
                },
            },
        }
    }

    // -----------------------------------------------------------------
    // Calls
    // -----------------------------------------------------------------

    fn eval_call(&mut self, name: &str, args: &[Expr], env: &mut Env) -> Out {
        if is_user_fn(&self.fns, name) {
            let out = self.call_user(name, args, env);
            if self.may_ckpt.contains(name) {
                env.clobber();
            }
            return out;
        }
        self.call_builtin(name, args, env)
    }

    fn call_user(&mut self, name: &str, args: &[Expr], env: &mut Env) -> Out {
        let func = self.fns[name];
        if func.params.len() != args.len() {
            // Arity error is raised before the callee runs; arguments are
            // still evaluated at the call site first.
            for a in args {
                self.eval(a, env);
            }
            return Out::top();
        }
        let mut arg_vals = Vec::with_capacity(args.len());
        for a in args {
            let o = self.eval(a, env);
            arg_vals.push(o.val);
        }
        if self.recursive.contains(name) {
            // Recursive functions are summarized once under ⊤ parameters so
            // the in-progress-call cut below cannot under-approximate.
            arg_vals.fill(AbsVal::Top);
        }
        if self.stack.iter().any(|s| s == name) {
            return Out::top();
        }
        if self.stack.len() > self.fns.len() + 1 {
            self.complete = false;
            return Out::top();
        }
        if let Some(s) = self.summaries.get(name) {
            let fits = s.params.len() == arg_vals.len()
                && arg_vals.iter().zip(&s.params).all(|(a, p)| a.le(p));
            if fits && (!self.reporting || s.reported) {
                return Out {
                    val: s.ret.clone(),
                    total: s.total,
                };
            }
        }
        // (Re-)analyze the body under the joined parameter context.
        let (params, runs) = match self.summaries.get(name) {
            Some(s) => {
                let runs = s.runs + 1;
                let params: Vec<AbsVal> = if runs >= MAX_FN_RUNS {
                    vec![AbsVal::Top; arg_vals.len()]
                } else {
                    s.params
                        .iter()
                        .zip(&arg_vals)
                        .map(|(p, a)| p.join(a))
                        .collect()
                };
                (params, runs)
            }
            None => (arg_vals, 1),
        };
        let mut fenv = Env::new();
        for (p, v) in func.params.iter().zip(&params) {
            self.record_assign(p, v);
            fenv.declare(p, v.clone());
        }
        self.stack.push(name.to_owned());
        let flow = self.walk_block(&func.body, fenv);
        self.stack.pop();
        let mut ret = flow.ret;
        if flow.fall.is_some() {
            ret = ret.join(&AbsVal::Unit);
        }
        let total = flow.total && flow.brk.is_empty() && flow.cont.is_empty();
        let reported = self.reporting || self.summaries.get(name).is_some_and(|s| s.reported);
        self.summaries.insert(
            name.to_owned(),
            FnSummary {
                params,
                ret: ret.clone(),
                total,
                runs,
                reported,
            },
        );
        Out { val: ret, total }
    }

    fn call_builtin(&mut self, name: &str, args: &[Expr], env: &mut Env) -> Out {
        // Fixed-arity builtins check arity *before* evaluating arguments,
        // so a mismatch must not record argument effects or facts.
        let arity: Option<usize> = match name {
            "au_extract" | "au_write_back_n" | "input" | "append" | "min" | "max" => Some(2),
            "au_write_back" | "len" | "mark_input" | "mark_target" | "floor" | "abs" | "sqrt"
            | "sin" | "cos" | "exp" => Some(1),
            "au_checkpoint" | "au_restore" | "rand" => Some(0),
            "au_nn_rl" => Some(6),
            _ => None,
        };
        if let Some(n) = arity {
            if args.len() != n {
                return Out::top();
            }
        }
        match name {
            "au_config" if args.len() < 4 => return Out::top(),
            "au_nn" if args.len() < 3 => return Out::top(),
            _ => {}
        }
        let known = matches!(
            name,
            "au_config"
                | "au_extract"
                | "au_serialize"
                | "au_nn"
                | "au_nn_rl"
                | "au_write_back"
                | "au_write_back_n"
                | "au_checkpoint"
                | "au_restore"
                | "mark_input"
                | "mark_target"
                | "input"
                | "print"
                | "len"
                | "append"
                | "floor"
                | "abs"
                | "sqrt"
                | "sin"
                | "cos"
                | "exp"
                | "min"
                | "max"
                | "rand"
        );
        if !known {
            // Unknown function: the interpreter errors before evaluating
            // any argument.
            return Out::top();
        }
        let mut outs = Vec::with_capacity(args.len());
        for a in args {
            outs.push(self.eval(a, env));
        }
        let num_len = |o: Option<&Out>| -> (Interval, bool) {
            match o.map(|o| &o.val) {
                Some(AbsVal::Array(_, len)) => (*len, true),
                Some(AbsVal::Str(Some(s))) => (Interval::point(s.len() as f64), true),
                Some(AbsVal::Str(None)) => (Interval::make(0.0, f64::INFINITY, false), true),
                _ => (Interval::make(0.0, f64::INFINITY, false), false),
            }
        };
        match name {
            "input" => Out::top(),
            "rand" => Out {
                val: AbsVal::Num(Interval::make(0.0, 1.0, false)),
                total: false,
            },
            "print" | "au_config" | "au_extract" | "mark_input" | "mark_target"
            | "au_checkpoint" => Out {
                val: AbsVal::Unit,
                total: false,
            },
            "au_restore" => {
                env.clobber();
                Out {
                    val: AbsVal::Unit,
                    total: false,
                }
            }
            "au_serialize" => Out {
                val: AbsVal::Str(None),
                total: false,
            },
            "au_nn" | "au_write_back_n" => Out {
                val: AbsVal::Array(
                    Box::new(AbsVal::Num(Interval::top_nan())),
                    Interval::make(0.0, f64::INFINITY, false),
                ),
                total: false,
            },
            "au_nn_rl" => Out {
                val: AbsVal::Num(Interval::make(0.0, f64::INFINITY, false)),
                total: false,
            },
            "au_write_back" => Out {
                val: AbsVal::Num(Interval::top_nan()),
                total: false,
            },
            "len" => {
                let (len, certain) = num_len(outs.first());
                Out {
                    val: AbsVal::Num(len),
                    total: outs[0].total && certain,
                }
            }
            "append" => match (&outs[0].val, &outs[1].val) {
                (AbsVal::Array(elem, len), item) => Out {
                    val: AbsVal::Array(Box::new(elem.join(item)), len.add(Interval::point(1.0))),
                    total: outs[0].total && outs[1].total,
                },
                _ => Out {
                    val: AbsVal::Array(
                        Box::new(AbsVal::Top),
                        Interval::make(1.0, f64::INFINITY, false),
                    ),
                    total: false,
                },
            },
            "floor" | "abs" | "sqrt" | "sin" | "cos" | "exp" => match as_num_domain(&outs[0].val) {
                Some((i, certain)) => {
                    let iv = match name {
                        "floor" => i.floor_i(),
                        "abs" => i.abs_i(),
                        "sqrt" => i.sqrt_i(),
                        "sin" => i.trig_i(f64::sin),
                        "cos" => i.trig_i(f64::cos),
                        _ => i.exp_i(),
                    };
                    Out {
                        val: AbsVal::Num(iv),
                        total: outs[0].total && certain,
                    }
                }
                None => Out {
                    val: AbsVal::Bottom,
                    total: false,
                },
            },
            "min" | "max" => match (as_num_domain(&outs[0].val), as_num_domain(&outs[1].val)) {
                (Some((a, ac)), Some((b, bc))) => Out {
                    val: AbsVal::Num(if name == "min" {
                        a.min_with(b)
                    } else {
                        a.max_with(b)
                    }),
                    total: outs[0].total && outs[1].total && ac && bc,
                },
                _ => Out {
                    val: AbsVal::Bottom,
                    total: false,
                },
            },
            _ => Out::top(),
        }
    }

    // -----------------------------------------------------------------
    // Branch refinement
    // -----------------------------------------------------------------

    /// Narrows `env` under the assumption that `cond` evaluated to `want`.
    ///
    /// Returns `None` when the assumption is infeasible (the branch can be
    /// skipped). This is deliberately *syntactic-shallow* — it never calls
    /// [`Analyzer::eval`], so no facts are double-recorded — and only
    /// understands literals, variables, `!`, short-circuit chains, and
    /// comparisons whose operands are variables or (negated) number
    /// literals.
    fn refine(&self, env: &Env, cond: &Expr, want: bool) -> Option<Env> {
        match &cond.kind {
            ExprKind::Bool(b) => {
                if *b == want {
                    Some(env.clone())
                } else {
                    None
                }
            }
            ExprKind::Var(name) => match env.get(name) {
                Some(AbsVal::Bool(b)) => {
                    if (want && !b.may_true) || (!want && !b.may_false) {
                        return None;
                    }
                    let mut out = env.clone();
                    out.assign(name, AbsVal::Bool(AbsBool::of(want)));
                    Some(out)
                }
                Some(AbsVal::Top | AbsVal::Bottom) => {
                    let mut out = env.clone();
                    out.assign(name, AbsVal::Bool(AbsBool::of(want)));
                    Some(out)
                }
                _ => Some(env.clone()),
            },
            ExprKind::Unary {
                op: UnOp::Not,
                expr,
            } => self.refine(env, expr, !want),
            ExprKind::Binary {
                op: BinOp::And,
                lhs,
                rhs,
            } if want => {
                let e = self.refine(env, lhs, true)?;
                self.refine(&e, rhs, true)
            }
            ExprKind::Binary {
                op: BinOp::Or,
                lhs,
                rhs,
            } if !want => {
                let e = self.refine(env, lhs, false)?;
                self.refine(&e, rhs, false)
            }
            ExprKind::Binary { op, lhs, rhs }
                if matches!(
                    op,
                    BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq
                ) =>
            {
                self.refine_cmp(env, *op, lhs, rhs, want)
            }
            _ => Some(env.clone()),
        }
    }

    fn refine_cmp(&self, env: &Env, op: BinOp, lhs: &Expr, rhs: &Expr, want: bool) -> Option<Env> {
        // Resolve each operand to a variable or a numeric constant.
        fn side(e: &Expr) -> Option<Result<String, f64>> {
            match &e.kind {
                ExprKind::Var(n) => Some(Ok(n.clone())),
                ExprKind::Num(n) => Some(Err(*n)),
                ExprKind::Unary {
                    op: UnOp::Neg,
                    expr,
                } => match &expr.kind {
                    ExprKind::Num(n) => Some(Err(-*n)),
                    _ => None,
                },
                _ => None,
            }
        }
        let (Some(ls), Some(rs)) = (side(lhs), side(rhs)) else {
            return Some(env.clone());
        };
        let iv_of = |s: &Result<String, f64>| -> Option<Interval> {
            match s {
                Ok(name) => match env.get(name) {
                    Some(AbsVal::Num(i)) => Some(*i),
                    Some(AbsVal::Top | AbsVal::Bottom) => Some(Interval::top_nan()),
                    // Non-numeric binding: a numeric comparison errors at
                    // runtime (Eq never reaches here with want-tightening
                    // on non-num; bail without refinement either way).
                    _ => None,
                },
                Err(c) => Some(Interval::point(*c)),
            }
        };
        let (Some(a), Some(b)) = (iv_of(&ls), iv_of(&rs)) else {
            return Some(env.clone());
        };
        // Negating a comparison is only interval-exact when neither side
        // can be NaN: `!(a < b)` includes the NaN cases `a >= b` misses.
        let eff = if want {
            op
        } else {
            if a.nan || b.nan {
                return Some(env.clone());
            }
            match op {
                BinOp::Lt => BinOp::Ge,
                BinOp::Le => BinOp::Gt,
                BinOp::Gt => BinOp::Le,
                BinOp::Ge => BinOp::Lt,
                // Eq-false gives no interval information.
                _ => return Some(env.clone()),
            }
        };
        // A true ordered comparison implies both sides are non-NaN.
        let (na, nb) = match eff {
            BinOp::Lt => {
                if a.lo >= b.hi {
                    return None;
                }
                (
                    Interval::make(a.lo, a.hi.min(b.hi), false),
                    Interval::make(b.lo.max(a.lo), b.hi, false),
                )
            }
            BinOp::Le => {
                if a.lo > b.hi {
                    return None;
                }
                (
                    Interval::make(a.lo, a.hi.min(b.hi), false),
                    Interval::make(b.lo.max(a.lo), b.hi, false),
                )
            }
            BinOp::Gt => {
                if a.hi <= b.lo {
                    return None;
                }
                (
                    Interval::make(a.lo.max(b.lo), a.hi, false),
                    Interval::make(b.lo, b.hi.min(a.hi), false),
                )
            }
            BinOp::Ge => {
                if a.hi < b.lo {
                    return None;
                }
                (
                    Interval::make(a.lo.max(b.lo), a.hi, false),
                    Interval::make(b.lo, b.hi.min(a.hi), false),
                )
            }
            BinOp::Eq => {
                // Only refine when both sides are numeric; `==` on mixed
                // types is plain `false`, never an error.
                let lhs_numeric = match &ls {
                    Ok(name) => matches!(
                        env.get(name),
                        Some(AbsVal::Num(_) | AbsVal::Top | AbsVal::Bottom)
                    ),
                    Err(_) => true,
                };
                let rhs_numeric = match &rs {
                    Ok(name) => matches!(
                        env.get(name),
                        Some(AbsVal::Num(_) | AbsVal::Top | AbsVal::Bottom)
                    ),
                    Err(_) => true,
                };
                if !lhs_numeric || !rhs_numeric {
                    return Some(env.clone());
                }
                if a.lo > b.hi || b.lo > a.hi {
                    return None;
                }
                let i = Interval::make(a.lo.max(b.lo), a.hi.min(b.hi), false);
                (i, i)
            }
            _ => return Some(env.clone()),
        };
        let mut out = env.clone();
        if let Ok(name) = &ls {
            if matches!(
                env.get(name),
                Some(AbsVal::Num(_) | AbsVal::Top | AbsVal::Bottom)
            ) {
                out.assign(name, AbsVal::Num(na));
            }
        }
        if let Ok(name) = &rs {
            if matches!(
                env.get(name),
                Some(AbsVal::Num(_) | AbsVal::Top | AbsVal::Bottom)
            ) {
                out.assign(name, AbsVal::Num(nb));
            }
        }
        Some(out)
    }

    // -----------------------------------------------------------------
    // Statement walking
    // -----------------------------------------------------------------

    fn walk_block(&mut self, stmts: &[Stmt], mut env: Env) -> Flow {
        let entry_depth = env.depth();
        env.push();
        let mut result = Flow {
            fall: None,
            brk: Vec::new(),
            cont: Vec::new(),
            ret: AbsVal::Bottom,
            total: true,
        };
        let mut cur = Some(env);
        for stmt in stmts {
            let Some(e) = cur.take() else {
                // The rest of the block is unreachable: leave it unvisited
                // so it lands in the unreachable set.
                break;
            };
            let f = self.walk_stmt(stmt, e);
            result.total &= f.total;
            result.ret = result.ret.join(&f.ret);
            result.brk.extend(f.brk);
            result.cont.extend(f.cont);
            cur = f.fall;
        }
        result.fall = cur.map(|mut e| {
            e.truncate_to(entry_depth);
            e
        });
        result
    }

    fn walk_stmt(&mut self, stmt: &Stmt, mut env: Env) -> Flow {
        if !stmt.span.is_dummy() {
            // Recorded even in silent loop iterations: a statement visited
            // under any head state is certainly visited under the (larger)
            // final head, so this can only shrink the unreachable set.
            self.visited.insert((stmt.span.start, stmt.span.end));
        }
        if self.fuel == 0 {
            self.complete = false;
        }
        match &stmt.kind {
            StmtKind::Let { name, init } => {
                let o = self.eval(init, &mut env);
                self.record_assign(name, &o.val);
                env.declare(name, o.val);
                let mut f = Flow::fall(env);
                f.total = o.total;
                f
            }
            StmtKind::Assign { name, value } => {
                let o = self.eval(value, &mut env);
                self.record_assign(name, &o.val);
                if env.assign(name, o.val) {
                    let mut f = Flow::fall(env);
                    f.total = o.total;
                    f
                } else {
                    Flow::halt()
                }
            }
            StmtKind::AssignIndex { name, index, value } => {
                self.eval(index, &mut env);
                let o = self.eval(value, &mut env);
                match env.get(name).cloned() {
                    Some(AbsVal::Array(elem, len)) => {
                        env.assign(name, AbsVal::Array(Box::new(elem.join(&o.val)), len));
                    }
                    Some(AbsVal::Top | AbsVal::Bottom) => {}
                    Some(_) => return Flow::halt(),
                    None => return Flow::halt(),
                }
                // Out-of-bounds and non-integer indices error at runtime;
                // don't try to prove them away.
                let mut f = Flow::fall(env);
                f.total = false;
                f
            }
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                let c = self.eval(cond, &mut env);
                let Some((ab, certain)) = as_bool_domain(&c.val) else {
                    return Flow::halt();
                };
                let mut merged = Flow::halt();
                merged.total = c.total && certain;
                let mut any = false;
                if ab.may_true {
                    if let Some(e) = self.refine(&env, cond, true) {
                        let f = self.walk_block(then_body, e);
                        merged.total &= f.total;
                        merged.ret = merged.ret.join(&f.ret);
                        merged.brk.extend(f.brk);
                        merged.cont.extend(f.cont);
                        if let Some(e) = f.fall {
                            merged.fall = join_env_opt(merged.fall.take(), e);
                        }
                        any = true;
                    }
                }
                if ab.may_false {
                    if let Some(e) = self.refine(&env, cond, false) {
                        let f = self.walk_block(else_body, e);
                        merged.total &= f.total;
                        merged.ret = merged.ret.join(&f.ret);
                        merged.brk.extend(f.brk);
                        merged.cont.extend(f.cont);
                        if let Some(e) = f.fall {
                            merged.fall = join_env_opt(merged.fall.take(), e);
                        }
                        any = true;
                    }
                }
                if !any {
                    return Flow::halt();
                }
                merged
            }
            StmtKind::While { cond, body } => self.walk_while(cond, body, env),
            StmtKind::Return(e) => {
                let (val, total) = match e {
                    Some(e) => {
                        let o = self.eval(e, &mut env);
                        (o.val, o.total)
                    }
                    None => (AbsVal::Unit, true),
                };
                Flow {
                    fall: None,
                    brk: Vec::new(),
                    cont: Vec::new(),
                    ret: val,
                    total,
                }
            }
            StmtKind::Break => Flow {
                fall: None,
                brk: vec![env],
                cont: Vec::new(),
                ret: AbsVal::Bottom,
                total: true,
            },
            StmtKind::Continue => Flow {
                fall: None,
                brk: Vec::new(),
                cont: vec![env],
                ret: AbsVal::Bottom,
                total: true,
            },
            StmtKind::Expr(e) => {
                let o = self.eval(e, &mut env);
                let mut f = Flow::fall(env);
                f.total = o.total;
                f
            }
        }
    }

    fn walk_while(&mut self, cond: &Expr, body: &[Stmt], env: Env) -> Flow {
        let entry_depth = env.depth();
        // Phase 1: silent fixpoint on the loop-head environment. Facts are
        // not recorded here — intermediate states under-approximate the
        // final head and would poison the fold map with transient values.
        let saved_reporting = self.reporting;
        self.reporting = false;
        let mut head = env;
        let mut iters: u32 = 0;
        loop {
            if self.fuel == 0 {
                self.complete = false;
                head.clobber();
                break;
            }
            let mut probe = head.clone();
            let c = self.eval(cond, &mut probe);
            let may_true = as_bool_domain(&c.val)
                .map(|(ab, _)| ab.may_true)
                .unwrap_or(false);
            if !may_true {
                break;
            }
            let Some(enter) = self.refine(&probe, cond, true) else {
                break;
            };
            let f = self.walk_block(body, enter);
            let mut back: Option<Env> = None;
            for mut e in f.fall.into_iter().chain(f.cont) {
                e.truncate_to(entry_depth);
                back = join_env_opt(back, e);
            }
            let Some(back) = back else {
                // The body never reaches the back edge; the head is stable.
                break;
            };
            let candidate = if iters >= WIDEN_AFTER {
                head.widen(&back)
            } else {
                head.join(&back)
            };
            if candidate == head {
                break;
            }
            head = candidate;
            iters += 1;
            if iters > MAX_LOOP_ITERS {
                // All-⊤ is trivially a fixpoint.
                head.clobber();
                break;
            }
        }
        self.reporting = saved_reporting;
        // Phase 2: one reporting pass over the stable head. The head
        // over-approximates every silent iteration, so everything visited
        // silently is visited (and recorded) again here.
        let mut probe = head;
        let c = self.eval(cond, &mut probe);
        let Some((ab, certain)) = as_bool_domain(&c.val) else {
            return Flow::halt();
        };
        let mut flow = Flow {
            fall: None,
            brk: Vec::new(),
            cont: Vec::new(),
            ret: AbsVal::Bottom,
            total: c.total && certain,
        };
        let mut entered = false;
        if ab.may_true {
            if let Some(enter) = self.refine(&probe, cond, true) {
                entered = true;
                let f = self.walk_block(body, enter);
                flow.total &= f.total;
                flow.ret = flow.ret.join(&f.ret);
                for mut e in f.brk {
                    e.truncate_to(entry_depth);
                    flow.fall = join_env_opt(flow.fall.take(), e);
                }
                // Fall-through and continue feed the back edge, already
                // accounted for by the fixpoint.
            }
        }
        if ab.may_false {
            if let Some(mut exit) = self.refine(&probe, cond, false) {
                exit.truncate_to(entry_depth);
                flow.fall = join_env_opt(flow.fall.take(), exit);
            }
        }
        if entered {
            // Termination is not provable; a possibly-entered loop is
            // never total.
            flow.total = false;
        }
        flow
    }
}

// ---------------------------------------------------------------------
// Syntactic passes
// ---------------------------------------------------------------------

fn for_each_expr<'e>(stmts: &'e [Stmt], f: &mut impl FnMut(&'e Expr)) {
    fn expr<'e>(e: &'e Expr, f: &mut impl FnMut(&'e Expr)) {
        f(e);
        match &e.kind {
            ExprKind::Array(items) => items.iter().for_each(|i| expr(i, f)),
            ExprKind::Index(a, b) => {
                expr(a, f);
                expr(b, f);
            }
            ExprKind::Call { args, .. } => args.iter().for_each(|a| expr(a, f)),
            ExprKind::Binary { lhs, rhs, .. } => {
                expr(lhs, f);
                expr(rhs, f);
            }
            ExprKind::Unary { expr: inner, .. } => expr(inner, f),
            _ => {}
        }
    }
    for stmt in stmts {
        match &stmt.kind {
            StmtKind::Let { init, .. } => expr(init, f),
            StmtKind::Assign { value, .. } => expr(value, f),
            StmtKind::AssignIndex { index, value, .. } => {
                expr(index, f);
                expr(value, f);
            }
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                expr(cond, f);
                for_each_expr(then_body, f);
                for_each_expr(else_body, f);
            }
            StmtKind::While { cond, body } => {
                expr(cond, f);
                for_each_expr(body, f);
            }
            StmtKind::Return(Some(e)) => expr(e, f),
            StmtKind::Expr(e) => expr(e, f),
            _ => {}
        }
    }
}

fn for_each_stmt<'s>(stmts: &'s [Stmt], f: &mut impl FnMut(&'s Stmt)) {
    for stmt in stmts {
        f(stmt);
        match &stmt.kind {
            StmtKind::If {
                then_body,
                else_body,
                ..
            } => {
                for_each_stmt(then_body, f);
                for_each_stmt(else_body, f);
            }
            StmtKind::While { body, .. } => for_each_stmt(body, f),
            _ => {}
        }
    }
}

/// Computes the recursive-function set and the may-checkpoint closure from
/// the syntactic call graph.
fn call_graph_facts(fns: &HashMap<&str, &Function>) -> (HashSet<String>, HashSet<String>) {
    let mut calls: HashMap<String, HashSet<String>> = HashMap::new();
    let mut direct_ckpt: HashSet<String> = HashSet::new();
    for (name, func) in fns {
        let mut out = HashSet::new();
        let mut ckpt = false;
        for_each_expr(&func.body, &mut |e| {
            if let ExprKind::Call { name: callee, .. } = &e.kind {
                if is_user_fn(fns, callee) {
                    out.insert(callee.clone());
                } else if callee == "au_checkpoint" || callee == "au_restore" {
                    ckpt = true;
                }
            }
        });
        if ckpt {
            direct_ckpt.insert((*name).to_owned());
        }
        calls.insert((*name).to_owned(), out);
    }
    // Transitive closure by iteration (programs are small).
    let mut reach = calls.clone();
    loop {
        let mut changed = false;
        for name in calls.keys() {
            let cur = reach[name].clone();
            let mut next = cur.clone();
            for callee in &cur {
                if let Some(r) = reach.get(callee) {
                    next.extend(r.iter().cloned());
                }
            }
            if next.len() != cur.len() {
                reach.insert(name.clone(), next);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let recursive: HashSet<String> = reach
        .iter()
        .filter(|(name, r)| r.contains(*name))
        .map(|(name, _)| name.clone())
        .collect();
    let may_ckpt: HashSet<String> = reach
        .iter()
        .filter(|(name, r)| {
            direct_ckpt.contains(*name) || r.iter().any(|g| direct_ckpt.contains(g))
        })
        .map(|(name, _)| name.clone())
        .collect();
    (recursive, may_ckpt)
}

/// Names the au_* protocol refers to by string literal (extraction keys,
/// model names, write-back keys, input keys, mark annotations). Such a
/// string coinciding with a variable name must not make the variable
/// "constant" for the `StaticFilter`, so they are excluded.
fn protocol_names(program: &Program) -> HashSet<String> {
    const PROTO: &[&str] = &[
        "input",
        "mark_input",
        "mark_target",
        "au_extract",
        "au_write_back",
        "au_write_back_n",
        "au_serialize",
        "au_nn",
        "au_nn_rl",
        "au_config",
    ];
    let mut out = HashSet::new();
    for func in &program.functions {
        for_each_expr(&func.body, &mut |e| {
            if let ExprKind::Call { name, args } = &e.kind {
                if PROTO.contains(&name.as_str()) {
                    for a in args {
                        if let ExprKind::Str(s) = &a.kind {
                            out.insert(s.clone());
                        }
                    }
                }
            }
        });
    }
    out
}

/// Collects loop-invariant top-level assignments in every `while` body:
/// `let`/`=` statements whose right-hand side contains no call, at least
/// one variable, and no variable assigned anywhere in the loop body.
fn loop_invariants(program: &Program, may_ckpt: &HashSet<String>) -> Vec<LoopInvariant> {
    let fns: HashMap<&str, &Function> = program
        .functions
        .iter()
        .map(|f| (f.name.as_str(), f))
        .collect();
    let mut out = Vec::new();
    for func in &program.functions {
        for_each_stmt(&func.body, &mut |stmt| {
            let StmtKind::While { body, .. } = &stmt.kind else {
                return;
            };
            // A checkpoint restore may rewrite any variable mid-loop, so
            // nothing in such a body is provably invariant.
            let mut has_ckpt = false;
            for_each_expr(body, &mut |e| {
                if let ExprKind::Call { name, .. } = &e.kind {
                    if name == "au_checkpoint"
                        || name == "au_restore"
                        || (is_user_fn(&fns, name) && may_ckpt.contains(name))
                    {
                        has_ckpt = true;
                    }
                }
            });
            if has_ckpt {
                return;
            }
            let mut assigned: HashSet<&str> = HashSet::new();
            for_each_stmt(body, &mut |s| match &s.kind {
                StmtKind::Let { name, .. }
                | StmtKind::Assign { name, .. }
                | StmtKind::AssignIndex { name, .. } => {
                    assigned.insert(name);
                }
                _ => {}
            });
            for s in body {
                let (name, value) = match &s.kind {
                    StmtKind::Let { name, init } => (name, init),
                    StmtKind::Assign { name, value } => (name, value),
                    _ => continue,
                };
                if s.span.is_dummy() {
                    continue;
                }
                let mut vars = 0usize;
                let mut blocked = false;
                let mut check = |e: &Expr| match &e.kind {
                    ExprKind::Var(v) => {
                        vars += 1;
                        if assigned.contains(v.as_str()) {
                            blocked = true;
                        }
                    }
                    ExprKind::Call { .. } => blocked = true,
                    _ => {}
                };
                // Reuse the statement-walker on a one-expression slice.
                fn walk_expr(e: &Expr, f: &mut impl FnMut(&Expr)) {
                    f(e);
                    match &e.kind {
                        ExprKind::Array(items) => items.iter().for_each(|i| walk_expr(i, f)),
                        ExprKind::Index(a, b) => {
                            walk_expr(a, f);
                            walk_expr(b, f);
                        }
                        ExprKind::Call { args, .. } => args.iter().for_each(|a| walk_expr(a, f)),
                        ExprKind::Binary { lhs, rhs, .. } => {
                            walk_expr(lhs, f);
                            walk_expr(rhs, f);
                        }
                        ExprKind::Unary { expr, .. } => walk_expr(expr, f),
                        _ => {}
                    }
                }
                walk_expr(value, &mut check);
                if !blocked && vars >= 1 {
                    out.push(LoopInvariant {
                        name: name.clone(),
                        span: s.span,
                    });
                }
            }
        });
    }
    out
}

// ---------------------------------------------------------------------
// Liveness (backward, per function)
// ---------------------------------------------------------------------

/// A backward liveness fact: either an explicit live set, or "everything
/// live except `names`" (after a whole-frame effect like `au_restore`).
#[derive(Debug, Clone, PartialEq)]
struct Live {
    all: bool,
    /// Live names when `!all`; *excluded* (killed) names when `all`.
    names: BTreeSet<String>,
}

impl Live {
    fn none() -> Live {
        Live {
            all: false,
            names: BTreeSet::new(),
        }
    }

    fn everything() -> Live {
        Live {
            all: true,
            names: BTreeSet::new(),
        }
    }

    fn is_live(&self, name: &str) -> bool {
        if self.all {
            !self.names.contains(name)
        } else {
            self.names.contains(name)
        }
    }

    fn read(&mut self, name: &str) {
        if self.all {
            self.names.remove(name);
        } else {
            self.names.insert(name.to_owned());
        }
    }

    fn kill(&mut self, name: &str) {
        if self.all {
            self.names.insert(name.to_owned());
        } else {
            self.names.remove(name);
        }
    }

    fn set_all(&mut self) {
        *self = Live::everything();
    }

    fn join(&self, other: &Live) -> Live {
        match (self.all, other.all) {
            (false, false) => Live {
                all: false,
                names: self.names.union(&other.names).cloned().collect(),
            },
            (true, true) => Live {
                all: true,
                names: self.names.intersection(&other.names).cloned().collect(),
            },
            (true, false) => Live {
                all: true,
                names: self.names.difference(&other.names).cloned().collect(),
            },
            (false, true) => other.join(self),
        }
    }
}

struct LiveCtx<'a> {
    fns: &'a HashMap<&'a str, &'a Function>,
    may_ckpt: &'a HashSet<String>,
    brk: Live,
    cont: Live,
}

fn expr_reads(e: &Expr, l: &mut Live, ctx: &LiveCtx) {
    match &e.kind {
        ExprKind::Var(name) => l.read(name),
        ExprKind::Array(items) => items.iter().for_each(|i| expr_reads(i, l, ctx)),
        ExprKind::Index(a, b) => {
            expr_reads(a, l, ctx);
            expr_reads(b, l, ctx);
        }
        ExprKind::Call { name, args } => {
            // Checkpoint/restore snapshot or rewrite every variable in
            // every frame: treat as a read of everything.
            if name == "au_checkpoint"
                || name == "au_restore"
                || (is_user_fn(ctx.fns, name) && ctx.may_ckpt.contains(name))
            {
                l.set_all();
            }
            args.iter().for_each(|a| expr_reads(a, l, ctx));
        }
        ExprKind::Binary { lhs, rhs, .. } => {
            expr_reads(lhs, l, ctx);
            expr_reads(rhs, l, ctx);
        }
        ExprKind::Unary { expr, .. } => expr_reads(expr, l, ctx),
        _ => {}
    }
}

/// Backward liveness over a block. Returns the live set at block entry;
/// dead stores are appended to `out` when `recording`.
fn live_block(
    stmts: &[Stmt],
    after: Live,
    ctx: &LiveCtx,
    recording: bool,
    out: &mut Vec<DeadStore>,
) -> Live {
    let mut l = after;
    for stmt in stmts.iter().rev() {
        match &stmt.kind {
            StmtKind::Let { name, init } => {
                if recording && !l.is_live(name) && !stmt.span.is_dummy() {
                    out.push(DeadStore {
                        name: name.clone(),
                        span: stmt.span,
                        value_span: init.span,
                    });
                }
                l.kill(name);
                expr_reads(init, &mut l, ctx);
            }
            StmtKind::Assign { name, value } => {
                if recording && !l.is_live(name) && !stmt.span.is_dummy() {
                    out.push(DeadStore {
                        name: name.clone(),
                        span: stmt.span,
                        value_span: value.span,
                    });
                }
                l.kill(name);
                expr_reads(value, &mut l, ctx);
            }
            StmtKind::AssignIndex { name, index, value } => {
                // Writes one element; the rest of the array survives.
                l.read(name);
                expr_reads(index, &mut l, ctx);
                expr_reads(value, &mut l, ctx);
            }
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                let t = live_block(then_body, l.clone(), ctx, recording, out);
                let e = live_block(else_body, l.clone(), ctx, recording, out);
                l = t.join(&e);
                expr_reads(cond, &mut l, ctx);
            }
            StmtKind::While { cond, body } => {
                // Fixpoint on the loop-head live set (silent), then one
                // recording pass against the stable head.
                let mut head = l.clone();
                let mut iters: u32 = 0;
                loop {
                    let ictx = LiveCtx {
                        fns: ctx.fns,
                        may_ckpt: ctx.may_ckpt,
                        brk: l.clone(),
                        cont: head.clone(),
                    };
                    let mut scratch = Vec::new();
                    let body_in = live_block(body, head.clone(), &ictx, false, &mut scratch);
                    let mut nh = l.join(&body_in);
                    expr_reads(cond, &mut nh, ctx);
                    if nh == head {
                        break;
                    }
                    head = nh;
                    iters += 1;
                    if iters > MAX_LIVE_ITERS {
                        head = Live::everything();
                        expr_reads(cond, &mut head, ctx);
                        break;
                    }
                }
                if recording {
                    let ictx = LiveCtx {
                        fns: ctx.fns,
                        may_ckpt: ctx.may_ckpt,
                        brk: l.clone(),
                        cont: head.clone(),
                    };
                    live_block(body, head.clone(), &ictx, true, out);
                }
                l = head;
            }
            StmtKind::Return(e) => {
                l = Live::none();
                if let Some(e) = e {
                    expr_reads(e, &mut l, ctx);
                }
            }
            StmtKind::Break => l = ctx.brk.clone(),
            StmtKind::Continue => l = ctx.cont.clone(),
            StmtKind::Expr(e) => expr_reads(e, &mut l, ctx),
        }
    }
    // A `let` inside this block shadows any outer binding of the same
    // name; its kill must not leak above the block. Conservatively mark
    // every block-declared name live at entry (suppresses, never invents,
    // dead-store reports for outer bindings).
    for stmt in stmts {
        if let StmtKind::Let { name, .. } = &stmt.kind {
            l.read(name);
        }
    }
    l
}

fn dead_stores(program: &Program, may_ckpt: &HashSet<String>) -> Vec<DeadStore> {
    let fns: HashMap<&str, &Function> = program
        .functions
        .iter()
        .map(|f| (f.name.as_str(), f))
        .collect();
    let mut out = Vec::new();
    for func in &program.functions {
        let ctx = LiveCtx {
            fns: &fns,
            may_ckpt,
            brk: Live::none(),
            cont: Live::none(),
        };
        live_block(&func.body, Live::none(), &ctx, true, &mut out);
    }
    out.sort_by_key(|d| (d.span.start, d.span.end));
    out
}

// ---------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------

/// Runs the abstract interpreter over a whole program.
///
/// Execution is modeled from `main` exactly as the interpreter would run
/// it; functions never (transitively) called from `main` are reported
/// unreachable in full. See [`Analysis`] for the guarantees on each field.
pub fn analyze(program: &Program) -> Analysis {
    let _t = t_time!("au_lang.absint");
    let mut a = Analyzer::new(program);
    if let Some(main) = program.function("main") {
        if main.params.is_empty() {
            a.stack.push("main".to_owned());
            a.walk_block(&main.body, Env::new());
            a.stack.pop();
        } else {
            // `main` with parameters errors at startup: nothing runs.
            a.complete = true;
        }
    }
    let complete = a.complete;

    let proto = protocol_names(program);
    let mut indexed: HashSet<String> = HashSet::new();
    for func in &program.functions {
        for_each_stmt(&func.body, &mut |s| {
            if let StmtKind::AssignIndex { name, .. } = &s.kind {
                indexed.insert(name.clone());
            }
        });
    }

    let mut analysis = Analysis {
        dead_stores: dead_stores(program, &a.may_ckpt),
        loop_invariant: loop_invariants(program, &a.may_ckpt),
        complete,
        ..Analysis::default()
    };
    if !complete {
        return analysis;
    }

    for (name, val) in &a.assigns {
        if indexed.contains(name) || proto.contains(name) {
            continue;
        }
        if let AbsVal::Num(i) = val {
            if let Some(c) = i.as_const() {
                analysis.constants.insert(name.clone(), c);
            }
        }
    }
    analysis.folds = a
        .folds
        .into_iter()
        .filter_map(|(k, v)| v.map(|f| (k, f)))
        .collect();
    analysis.totals = a
        .totals
        .into_iter()
        .filter_map(|(k, t)| t.then_some(k))
        .collect();
    let mut unreachable: Vec<Span> = Vec::new();
    for func in &program.functions {
        for_each_stmt(&func.body, &mut |s| {
            if !s.span.is_dummy() && !a.visited.contains(&(s.span.start, s.span.end)) {
                unreachable.push(s.span);
            }
        });
    }
    unreachable.sort_by_key(|s| (s.start, s.end));
    unreachable.dedup();
    analysis.unreachable = unreachable;
    analysis.div_zero = a
        .divs
        .into_iter()
        .filter(|(_, i)| i.lo <= 0.0 && i.hi >= 0.0 && i.lo.is_finite() && i.hi.is_finite())
        .map(|((start, end), i)| DivSite {
            span: Span::new(start, end),
            lo: i.lo,
            hi: i.hi,
        })
        .collect();
    analysis
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn run(src: &str) -> Analysis {
        analyze(&parse(src).expect("test program parses"))
    }

    /// Finds the fold recorded for the first occurrence of `snippet`.
    fn fold_at(src: &str, an: &Analysis, snippet: &str) -> Option<Folded> {
        let start = src.find(snippet).expect("snippet present");
        an.folds.get(&(start, start + snippet.len())).copied()
    }

    #[test]
    fn interval_arithmetic_is_sound() {
        let a = Interval::make(1.0, 3.0, false);
        let b = Interval::make(-2.0, 4.0, false);
        let s = a.add(b);
        assert_eq!((s.lo, s.hi, s.nan), (-1.0, 7.0, false));
        let m = a.mul(b);
        assert_eq!((m.lo, m.hi), (-6.0, 12.0));
        // Divisor containing zero goes to ⊤ (IEEE inf/NaN values).
        assert!(a.div(b).nan);
        let d = a.div(Interval::make(2.0, 4.0, false));
        assert_eq!((d.lo, d.hi, d.nan), (0.25, 1.5, false));
        // min/max mirror f64 semantics: NaN loses to a number.
        let n = Interval::top_nan();
        let mm = a.min_with(n);
        assert!(!mm.nan || (mm.lo == f64::NEG_INFINITY));
        assert!(!a.min_with(n).nan, "one non-NaN side means non-NaN result");
    }

    #[test]
    fn negative_zero_is_not_a_constant() {
        let z = Interval::point(0.0).join(Interval::point(-0.0));
        assert_eq!(z.as_const(), None);
        assert_eq!(Interval::point(-0.0).as_const(), Some(-0.0));
    }

    #[test]
    fn constant_propagation_and_folding() {
        let src = "fn main() { let k = 3; let y = k * 2; return y; }";
        let an = run(src);
        assert!(an.complete);
        assert_eq!(an.constants.get("k"), Some(&3.0));
        assert_eq!(an.constants.get("y"), Some(&6.0));
        assert_eq!(fold_at(src, &an, "k * 2"), Some(Folded::Num(6.0)));
    }

    #[test]
    fn branch_pruning_marks_unreachable() {
        let src = "fn main() { let debug = 0; if (debug > 0) { print(1); } return 0; }";
        let an = run(src);
        assert!(an.complete);
        assert_eq!(fold_at(src, &an, "debug > 0"), Some(Folded::Bool(false)));
        let pr = src.find("print(1);").unwrap();
        assert!(an.unreachable.iter().any(|s| s.start == pr));
    }

    #[test]
    fn loop_widening_terminates_and_bounds_survive_refinement() {
        let src = "fn main() { let i = 0; while (i < 10) { i = i + 1; } return i; }";
        let an = run(src);
        assert!(an.complete);
        // `i` is reassigned, so it is not a constant; the analysis must
        // simply terminate and keep everything reachable.
        assert!(!an.constants.contains_key("i"));
        assert!(an.unreachable.is_empty());
    }

    #[test]
    fn interprocedural_summary_folds_through_calls() {
        let src = "fn double(x) { return x * 2; }\n\
                   fn main() { let a = double(21); return a; }";
        let an = run(src);
        assert!(an.complete);
        assert_eq!(an.constants.get("a"), Some(&42.0));
        // The call itself must NOT be foldable: the callee's statements
        // count interpreter steps, so replacing the call with a literal
        // would change step-observable behavior.
        assert_eq!(fold_at(src, &an, "x * 2"), Some(Folded::Num(42.0)));
    }

    #[test]
    fn recursion_is_cut_soundly() {
        let src = "fn fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }\n\
                   fn main() { return fib(10); }";
        let an = run(src);
        assert!(an.complete);
        // Nothing inside fib may be folded to the first call's context.
        assert_eq!(fold_at(src, &an, "n < 2"), None);
        assert!(an.unreachable.is_empty());
    }

    #[test]
    fn division_by_possible_zero_is_flagged() {
        let src = "fn main() { let x = input(\"x\", 0); let d = 0; \
                   if (x > 0) { d = 1; } let r = 10 / d; return r; }";
        let an = run(src);
        assert!(an.complete);
        assert_eq!(an.div_zero.len(), 1, "divisor interval [0,1] contains 0");
        assert_eq!(an.div_zero[0].lo, 0.0);
        assert_eq!(an.div_zero[0].hi, 1.0);
    }

    #[test]
    fn half_bounded_divisor_is_not_flagged() {
        let src = "fn main() { let n = input(\"n\", 1); let d = 0; \
                   while (d < n) { d = d + 1; } return 10 / d; }";
        let an = run(src);
        assert!(an.complete);
        // After widening, d ∈ [0, +inf): infinite bound → no AU014-style
        // report (matches the corpus `total / pairs` pattern).
        assert!(an.div_zero.is_empty());
    }

    #[test]
    fn dead_store_detection() {
        let src = "fn main() { let a = 1; a = 2; return a; }";
        let an = run(src);
        let dead: Vec<_> = an.dead_stores.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(dead, vec!["a"], "only the initial `let a = 1` is dead");
        assert_eq!(
            an.dead_stores[0].span.start,
            src.find("let a = 1;").unwrap()
        );
    }

    #[test]
    fn dead_store_respects_loops_and_branches() {
        let src = "fn main() { let s = 0; let i = 0; \
                   while (i < 3) { s = s + i; i = i + 1; } return s; }";
        let an = run(src);
        assert!(an.dead_stores.is_empty(), "all stores feed the loop");
    }

    #[test]
    fn checkpoint_restore_clobbers_flow_sensitive_facts() {
        // At the return, x is 5 (the restored snapshot), not 7: without
        // the restore clobber the analysis would wrongly fold x to 7.
        let src = "fn main() { let x = 5; au_checkpoint(); x = 7; au_restore(); return x; }";
        let an = run(src);
        assert!(an.complete);
        assert!(!an.constants.contains_key("x"), "x holds 5 then 7");
        let ret = src.find("return x").unwrap();
        assert!(
            !an.folds.contains_key(&(ret + 7, ret + 8)),
            "the restored read of x must not fold"
        );
        // The checkpoint snapshot reads every variable: no dead stores.
        assert!(an.dead_stores.is_empty());
    }

    #[test]
    fn never_reassigned_var_stays_constant_across_restore() {
        // restore can only write back a previously-stored value, so a
        // variable with a single store is still provably constant.
        let src = "fn main() { let x = 5; au_checkpoint(); \
                   let y = input(\"y\", 0); \
                   if (y > 0) { au_restore(); } return x; }";
        let an = run(src);
        assert!(an.complete);
        assert_eq!(an.constants.get("x"), Some(&5.0));
    }

    #[test]
    fn loop_invariant_assignment_is_reported() {
        let src = "fn main() { let base = 10; let i = 0; let acc = 0; \
                   while (i < 5) { let scale = base * 2; acc = acc + scale; i = i + 1; } \
                   return acc; }";
        let an = run(src);
        assert_eq!(an.loop_invariant.len(), 1);
        assert_eq!(an.loop_invariant[0].name, "scale");
    }

    #[test]
    fn loop_variant_assignment_is_not_reported() {
        let src = "fn main() { let i = 0; let acc = 0; \
                   while (i < 5) { let step = i * 2; acc = acc + step; i = i + 1; } \
                   return acc; }";
        let an = run(src);
        assert!(
            an.loop_invariant.is_empty(),
            "`step` depends on assigned `i`"
        );
    }

    #[test]
    fn protocol_string_names_are_not_constants() {
        // The extraction key "k" collides with the variable name `k`;
        // the variable must not be reported constant for the filter.
        let src = "fn main() { let k = 3; au_extract(\"k\", [k]); return k; }";
        let an = run(src);
        assert!(an.complete);
        assert!(!an.constants.contains_key("k"));
    }

    #[test]
    fn indexed_arrays_are_not_constants() {
        let src = "fn main() { let a = [1, 2]; a[0] = 5; return a[0]; }";
        let an = run(src);
        assert!(!an.constants.contains_key("a"));
    }

    #[test]
    fn unreachable_after_return() {
        let src = "fn main() { return 1; print(2); }";
        let an = run(src);
        assert!(an.complete);
        let pr = src.find("print(2);").unwrap();
        assert!(an.unreachable.iter().any(|s| s.start == pr));
    }

    #[test]
    fn uncalled_function_is_unreachable() {
        let src = "fn helper() { print(9); }\nfn main() { return 0; }";
        let an = run(src);
        let pr = src.find("print(9);").unwrap();
        assert!(an.unreachable.iter().any(|s| s.start == pr));
    }

    #[test]
    fn rand_and_input_are_never_foldable() {
        let src = "fn main() { let r = rand(); let x = input(\"x\", 1); return r + x; }";
        let an = run(src);
        assert!(an.complete);
        assert!(!an.constants.contains_key("r"));
        assert!(!an.constants.contains_key("x"));
        assert_eq!(fold_at(src, &an, "rand()"), None);
    }

    #[test]
    fn refinement_narrows_input_driven_branches() {
        // x is ⊤ from input(); inside the branch x < 0 it is refined to a
        // negative range, making `x < 10` certainly true there.
        let src = "fn main() { let x = input(\"x\", 0); \
                   if (x < 0) { if (x < 10) { print(1); } else { print(2); } } return 0; }";
        let an = run(src);
        assert!(an.complete);
        let pr = src.find("print(2);").unwrap();
        assert!(an.unreachable.iter().any(|s| s.start == pr));
        assert_eq!(fold_at(src, &an, "x < 10"), Some(Folded::Bool(true)));
    }

    #[test]
    fn string_and_bool_folding() {
        let src = "fn main() { let on = true; if (on) { return 1; } return 2; }";
        let an = run(src);
        assert!(an.complete);
        let r2 = src.find("return 2;").unwrap();
        assert!(an.unreachable.iter().any(|s| s.start == r2));
    }

    #[test]
    fn nine_corpus_programs_analyze_completely() {
        for p in crate::corpus::all() {
            let program = parse(p.src).unwrap_or_else(|e| panic!("{}: {e}", p.name));
            let an = analyze(&program);
            assert!(an.complete, "{} should analyze within fuel", p.name);
        }
    }
}
