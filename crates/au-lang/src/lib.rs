//! AuLang — a small imperative language with the Autonomizer primitives.
//!
//! The paper autonomizes C/C++ programs by adding `au_*` library calls and
//! collecting dynamic dependence facts with Valgrind. This crate packages
//! both roles for the reproduction:
//!
//! - a lexer/parser/interpreter for **AuLang**, an expression-oriented
//!   imperative language whose programs look like the paper's Fig. 2/Fig. 11
//!   snippets, with the seven primitives available as built-in calls;
//! - **automatic dynamic-dependence instrumentation**: every executed
//!   assignment records def/use edges, runtime values, and enclosing
//!   functions into an [`au_trace::AnalysisDb`] — this is the repo's
//!   Valgrind. Feature extraction (Algorithms 1–2) then runs on the recorded
//!   facts with zero extra effort from the programmer.
//!
//! Checkpoint/restore follows the paper's intent: `au_checkpoint()`
//! snapshots all program variables together with the database store π, and
//! `au_restore()` reinstates them (models keep learning across restores).
//! Control flow continues after the restoring statement, which is equivalent
//! to the paper's usage where the checkpoint sits at the top of the main
//! loop.
//!
//! # Example
//!
//! ```
//! use au_lang::Interpreter;
//!
//! let src = r#"
//!     fn main() {
//!         let x = input("x", 3);
//!         let y = x * 2;
//!         au_extract("Y", y);
//!         let z = 0;
//!         z = au_write_back("Y");
//!         return z;
//!     }
//! "#;
//! let mut interp = Interpreter::compile(src)?;
//! let result = interp.run()?;
//! assert_eq!(result.as_num(), Some(6.0));
//! # Ok::<(), au_lang::LangError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[macro_use]
mod telem;

pub mod absint;
mod ast;
mod bytecode;
mod compile;
pub mod corpus;
mod interp;
mod lexer;
mod parser;
pub mod pretty;
pub mod static_analysis;
mod value;
mod vm;

pub use ast::{BinOp, Expr, ExprKind, Function, Program, Span, Stmt, StmtKind, UnOp};
pub use bytecode::{CompiledProgram, OptStats, TraceMode};
pub use compile::{compile_program, compile_program_opt};
pub use interp::{Interpreter, RunStats};
pub use lexer::{Lexer, Token, TokenKind};
pub use parser::parse;
pub use value::Value;
pub use vm::Vm;

use std::error::Error;
use std::fmt;

/// Errors from compiling or running AuLang programs.
#[derive(Debug)]
pub enum LangError {
    /// Lexical error with 1-based line number.
    Lex {
        /// Line the error occurred on.
        line: usize,
        /// Description.
        message: String,
    },
    /// Parse error with 1-based line number.
    Parse {
        /// Line the error occurred on.
        line: usize,
        /// Description.
        message: String,
    },
    /// Runtime error (undefined variable, type mismatch, …).
    Runtime(String),
    /// An error surfaced by the Autonomizer engine.
    Engine(au_core::AuError),
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Lex { line, message } => write!(f, "lex error at line {line}: {message}"),
            LangError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            LangError::Runtime(message) => write!(f, "runtime error: {message}"),
            LangError::Engine(e) => write!(f, "engine error: {e}"),
        }
    }
}

impl Error for LangError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LangError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<au_core::AuError> for LangError {
    fn from(e: au_core::AuError) -> Self {
        LangError::Engine(e)
    }
}
