//! The AuLang tracing interpreter.
//!
//! Executes a [`Program`] while (a) servicing the `au_*` primitives through
//! an embedded [`au_core::Engine`] and (b) recording every executed
//! assignment into an [`au_trace::AnalysisDb`] — def/use dependence edges,
//! runtime values, and enclosing function names. The recorded facts are
//! exactly what Algorithms 1–2 consume, so feature extraction works on any
//! AuLang program with no further annotation.

use crate::ast::{BinOp, Expr, ExprKind, Function, Program, Stmt, StmtKind, UnOp};
use crate::parser::parse;
use crate::value::Value;
use crate::LangError;
use au_core::{Checkpoint, Engine, Mode, ModelConfig};
use au_trace::AnalysisDb;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Variables read while evaluating an expression (for dependence edges).
type Deps = BTreeSet<String>;

/// Execution statistics for a finished run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Statements executed.
    pub steps: u64,
    /// Assignments recorded into the analysis database.
    pub assignments: u64,
    /// Deepest call-stack depth reached.
    pub max_depth: usize,
}

#[derive(Debug, Clone)]
struct Frame {
    func: String,
    scopes: Vec<HashMap<String, Value>>,
}

impl Frame {
    fn lookup(&self, name: &str) -> Option<&Value> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn lookup_mut(&mut self, name: &str) -> Option<&mut Value> {
        self.scopes.iter_mut().rev().find_map(|s| s.get_mut(name))
    }
}

enum Flow {
    Normal,
    Break,
    Continue,
    Return(Value, Deps),
}

/// The AuLang interpreter with Autonomizer runtime and dynamic tracing.
#[derive(Debug)]
pub struct Interpreter {
    program: Program,
    engine: Engine,
    analysis: AnalysisDb,
    inputs: BTreeMap<String, Value>,
    frames: Vec<Frame>,
    output: Vec<String>,
    stats: RunStats,
    checkpoint: Option<Checkpoint<Vec<Frame>>>,
    step_limit: u64,
    rng_state: u64,
    /// When false, tracing is skipped (useful for long training loops after
    /// the dependence graph has been collected).
    tracing: bool,
}

impl Interpreter {
    /// Parses `src` and prepares an interpreter in training mode.
    ///
    /// # Errors
    ///
    /// Returns lex/parse errors.
    pub fn compile(src: &str) -> Result<Self, LangError> {
        Ok(Interpreter::with_program(parse(src)?))
    }

    /// Wraps an already parsed program.
    pub fn with_program(program: Program) -> Self {
        Interpreter {
            program,
            engine: Engine::new(Mode::Train),
            analysis: AnalysisDb::new(),
            inputs: BTreeMap::new(),
            frames: Vec::new(),
            output: Vec::new(),
            stats: RunStats::default(),
            checkpoint: None,
            step_limit: 10_000_000,
            rng_state: 0x853c_49e6_748f_ea9b,
            tracing: true,
        }
    }

    /// Replaces the embedded engine (e.g. one in TS mode with a model dir).
    pub fn set_engine(&mut self, engine: Engine) {
        self.engine = engine;
    }

    /// The embedded Autonomizer engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Mutable access to the embedded engine.
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// The recorded dynamic-analysis facts.
    pub fn analysis(&self) -> &AnalysisDb {
        &self.analysis
    }

    /// Supplies the value returned by `input(name, default)`.
    pub fn set_input(&mut self, name: &str, value: Value) {
        self.inputs.insert(name.to_owned(), value);
    }

    /// Seeds the deterministic `rand()` builtin.
    pub fn set_seed(&mut self, seed: u64) {
        self.rng_state = seed | 1;
    }

    /// Limits executed statements (default 10 million).
    pub fn set_step_limit(&mut self, limit: u64) {
        self.step_limit = limit;
    }

    /// Enables or disables dependence tracing.
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
    }

    /// Lines produced by `print`.
    pub fn output(&self) -> &[String] {
        &self.output
    }

    /// Statistics of the most recent run.
    pub fn stats(&self) -> RunStats {
        self.stats
    }

    /// Runs `main`, returning its value.
    ///
    /// # Errors
    ///
    /// Returns [`LangError::Runtime`] for dynamic errors (undefined
    /// variables, type mismatches, step-limit exhaustion) and
    /// [`LangError::Engine`] for primitive failures.
    pub fn run(&mut self) -> Result<Value, LangError> {
        let _s = t_span!("aulang_run");
        let _t = t_time!("au_lang.run");
        t_count!("au_lang.runs");
        self.stats = RunStats::default();
        self.output.clear();
        self.frames.clear();
        self.checkpoint = None;
        let main = self
            .program
            .function("main")
            .cloned()
            .expect("parser guarantees main");
        let (value, _) = self.call_function(&main, Vec::new())?;
        t_count!("au_lang.steps", self.stats.steps);
        Ok(value)
    }

    fn err(&self, message: impl Into<String>) -> LangError {
        LangError::Runtime(message.into())
    }

    fn current_func(&self) -> String {
        self.frames
            .last()
            .map(|f| f.func.clone())
            .unwrap_or_else(|| "main".to_owned())
    }

    fn trace_assign(&mut self, dst: &str, deps: &Deps, value: &Value) {
        if !self.tracing {
            return;
        }
        self.stats.assignments += 1;
        let func = self.current_func();
        let dep_refs: Vec<&str> = deps.iter().map(String::as_str).collect();
        self.analysis
            .record_assign(dst, &dep_refs, value.as_num(), &func);
    }

    fn call_function(
        &mut self,
        func: &Function,
        args: Vec<(Value, Deps)>,
    ) -> Result<(Value, Deps), LangError> {
        if args.len() != func.params.len() {
            return Err(self.err(format!(
                "function `{}` expects {} arguments, got {}",
                func.name,
                func.params.len(),
                args.len()
            )));
        }
        if self.frames.len() >= 64 {
            return Err(self.err(format!(
                "call depth limit (64) exceeded in `{}` — runaway recursion?",
                func.name
            )));
        }
        let mut scope = HashMap::new();
        self.frames.push(Frame {
            func: func.name.clone(),
            scopes: vec![HashMap::new()],
        });
        self.stats.max_depth = self.stats.max_depth.max(self.frames.len());
        for (param, (value, deps)) in func.params.iter().zip(args) {
            self.trace_assign(param, &deps, &value);
            scope.insert(param.clone(), value);
        }
        self.frames.last_mut().expect("just pushed").scopes[0] = scope;
        let body = func.body.clone();
        let flow = self.exec_block(&body)?;
        self.frames.pop();
        match flow {
            Flow::Return(value, deps) => Ok((value, deps)),
            Flow::Break | Flow::Continue => Err(self.err(format!(
                "`break`/`continue` outside a loop in function `{}`",
                func.name
            ))),
            Flow::Normal => Ok((Value::Unit, Deps::new())),
        }
    }

    fn exec_block(&mut self, stmts: &[Stmt]) -> Result<Flow, LangError> {
        self.frames
            .last_mut()
            .expect("block inside a frame")
            .scopes
            .push(HashMap::new());
        let mut flow = Flow::Normal;
        for stmt in stmts {
            flow = self.exec_stmt(stmt)?;
            if !matches!(flow, Flow::Normal) {
                break;
            }
        }
        self.frames
            .last_mut()
            .expect("block inside a frame")
            .scopes
            .pop();
        Ok(flow)
    }

    fn exec_stmt(&mut self, stmt: &Stmt) -> Result<Flow, LangError> {
        self.stats.steps += 1;
        if self.stats.steps > self.step_limit {
            return Err(self.err("step limit exceeded"));
        }
        match &stmt.kind {
            StmtKind::Let { name, init } => {
                let (value, deps) = self.eval(init)?;
                self.mark_target_if_write_back(name, init);
                self.trace_assign(name, &deps, &value);
                self.frames
                    .last_mut()
                    .expect("frame")
                    .scopes
                    .last_mut()
                    .expect("scope")
                    .insert(name.clone(), value);
                Ok(Flow::Normal)
            }
            StmtKind::Assign { name, value } => {
                let (value_v, deps) = self.eval(value)?;
                self.mark_target_if_write_back(name, value);
                self.trace_assign(name, &deps, &value_v);
                let frame = self.frames.last_mut().expect("frame");
                match frame.lookup_mut(name) {
                    Some(slot) => {
                        *slot = value_v;
                        Ok(Flow::Normal)
                    }
                    None => Err(self.err(format!("assignment to undefined variable `{name}`"))),
                }
            }
            StmtKind::AssignIndex { name, index, value } => {
                let (index_v, mut deps) = self.eval(index)?;
                let (value_v, value_deps) = self.eval(value)?;
                deps.extend(value_deps);
                deps.insert(name.clone());
                let idx = self.index_of(&index_v)?;
                self.trace_assign(name, &deps, &value_v);
                let frame = self.frames.last_mut().expect("frame");
                let problem = match frame.lookup_mut(name) {
                    Some(Value::Array(items)) => {
                        if idx >= items.len() {
                            format!(
                                "index {idx} out of bounds for `{name}` of length {}",
                                items.len()
                            )
                        } else {
                            items[idx] = value_v;
                            return Ok(Flow::Normal);
                        }
                    }
                    Some(other) => format!("cannot index `{name}`: {}", other.type_name()),
                    None => format!("assignment to undefined variable `{name}`"),
                };
                Err(self.err(problem))
            }
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                let (cond_v, cond_deps) = self.eval(cond)?;
                self.note_uses(&cond_deps);
                let truthy = cond_v
                    .as_bool()
                    .ok_or_else(|| self.err("if condition must be boolean"))?;
                if truthy {
                    self.exec_block(then_body)
                } else {
                    self.exec_block(else_body)
                }
            }
            StmtKind::While { cond, body } => loop {
                let (cond_v, cond_deps) = self.eval(cond)?;
                self.note_uses(&cond_deps);
                let truthy = cond_v
                    .as_bool()
                    .ok_or_else(|| self.err("while condition must be boolean"))?;
                if !truthy {
                    return Ok(Flow::Normal);
                }
                match self.exec_block(body)? {
                    Flow::Normal | Flow::Continue => continue,
                    Flow::Break => return Ok(Flow::Normal),
                    ret @ Flow::Return(..) => return Ok(ret),
                }
            },
            StmtKind::Return(expr) => match expr {
                Some(e) => {
                    let (value, deps) = self.eval(e)?;
                    Ok(Flow::Return(value, deps))
                }
                None => Ok(Flow::Return(Value::Unit, Deps::new())),
            },
            StmtKind::Break => Ok(Flow::Break),
            StmtKind::Continue => Ok(Flow::Continue),
            StmtKind::Expr(e) => {
                let _ = self.eval(e)?;
                Ok(Flow::Normal)
            }
        }
    }

    /// `x = au_write_back("NAME")` annotates `x` as a prediction target —
    /// this is how the paper's users designate target variables.
    fn mark_target_if_write_back(&mut self, dst: &str, value: &Expr) {
        if !self.tracing {
            return;
        }
        if let ExprKind::Call { name, .. } = &value.kind {
            if name == "au_write_back" || name == "au_write_back_n" || name == "au_nn_rl" {
                self.analysis.mark_target(dst);
            }
        }
    }

    /// Validates an array index: must be a non-negative integral number.
    fn index_of(&self, value: &Value) -> Result<usize, LangError> {
        let n = value
            .as_num()
            .ok_or_else(|| self.err("array index must be a number"))?;
        if !n.is_finite() || n < 0.0 || n.fract() != 0.0 {
            return Err(self.err(format!(
                "array index must be a non-negative integer, got {n}"
            )));
        }
        Ok(n as usize)
    }

    fn note_uses(&mut self, deps: &Deps) {
        if !self.tracing {
            return;
        }
        let func = self.current_func();
        for var in deps {
            self.analysis.record_use(var, &func);
        }
    }

    fn eval(&mut self, expr: &Expr) -> Result<(Value, Deps), LangError> {
        match &expr.kind {
            ExprKind::Num(n) => Ok((Value::Num(*n), Deps::new())),
            ExprKind::Bool(b) => Ok((Value::Bool(*b), Deps::new())),
            ExprKind::Str(s) => Ok((Value::Str(s.clone()), Deps::new())),
            ExprKind::Var(name) => {
                let frame = self.frames.last().expect("frame");
                let value = frame
                    .lookup(name)
                    .cloned()
                    .ok_or_else(|| self.err(format!("undefined variable `{name}`")))?;
                let mut deps = Deps::new();
                deps.insert(name.clone());
                Ok((value, deps))
            }
            ExprKind::Array(items) => {
                let mut values = Vec::with_capacity(items.len());
                let mut deps = Deps::new();
                for item in items {
                    let (v, d) = self.eval(item)?;
                    values.push(v);
                    deps.extend(d);
                }
                Ok((Value::Array(values), deps))
            }
            ExprKind::Index(target, index) => {
                let (target_v, mut deps) = self.eval(target)?;
                let (index_v, index_deps) = self.eval(index)?;
                deps.extend(index_deps);
                let idx = self.index_of(&index_v)?;
                match target_v {
                    Value::Array(items) => items
                        .get(idx)
                        .cloned()
                        .map(|v| (v, deps))
                        .ok_or_else(|| self.err(format!("index {idx} out of bounds"))),
                    other => Err(self.err(format!("cannot index a {}", other.type_name()))),
                }
            }
            ExprKind::Unary { op, expr } => {
                let (v, deps) = self.eval(expr)?;
                let out = match op {
                    UnOp::Neg => Value::Num(
                        -v.as_num()
                            .ok_or_else(|| self.err("unary `-` needs a number"))?,
                    ),
                    UnOp::Not => Value::Bool(
                        !v.as_bool()
                            .ok_or_else(|| self.err("unary `!` needs a boolean"))?,
                    ),
                };
                Ok((out, deps))
            }
            ExprKind::Binary { op, lhs, rhs } => self.eval_binary(*op, lhs, rhs),
            ExprKind::Call { name, args } => self.eval_call(name, args),
        }
    }

    fn eval_binary(
        &mut self,
        op: BinOp,
        lhs: &Expr,
        rhs: &Expr,
    ) -> Result<(Value, Deps), LangError> {
        // Short-circuit forms first.
        if matches!(op, BinOp::And | BinOp::Or) {
            let (l, mut deps) = self.eval(lhs)?;
            let l = l
                .as_bool()
                .ok_or_else(|| self.err("logical operand must be boolean"))?;
            let short = match op {
                BinOp::And => !l,
                BinOp::Or => l,
                _ => unreachable!(),
            };
            if short {
                return Ok((Value::Bool(l), deps));
            }
            let (r, rdeps) = self.eval(rhs)?;
            deps.extend(rdeps);
            let r = r
                .as_bool()
                .ok_or_else(|| self.err("logical operand must be boolean"))?;
            return Ok((Value::Bool(r), deps));
        }
        let (l, mut deps) = self.eval(lhs)?;
        let (r, rdeps) = self.eval(rhs)?;
        deps.extend(rdeps);
        // Equality works on any same-typed values; ordering and arithmetic
        // need numbers.
        let out = match op {
            BinOp::Eq => Value::Bool(l == r),
            BinOp::Ne => Value::Bool(l != r),
            _ => {
                let a = l
                    .as_num()
                    .ok_or_else(|| self.err(format!("arithmetic on {}", l.type_name())))?;
                let b = r
                    .as_num()
                    .ok_or_else(|| self.err(format!("arithmetic on {}", r.type_name())))?;
                match op {
                    BinOp::Add => Value::Num(a + b),
                    BinOp::Sub => Value::Num(a - b),
                    BinOp::Mul => Value::Num(a * b),
                    BinOp::Div => Value::Num(a / b),
                    BinOp::Rem => Value::Num(a % b),
                    BinOp::Lt => Value::Bool(a < b),
                    BinOp::Le => Value::Bool(a <= b),
                    BinOp::Gt => Value::Bool(a > b),
                    BinOp::Ge => Value::Bool(a >= b),
                    BinOp::Eq | BinOp::Ne | BinOp::And | BinOp::Or => unreachable!(),
                }
            }
        };
        Ok((out, deps))
    }

    fn eval_call(&mut self, name: &str, args: &[Expr]) -> Result<(Value, Deps), LangError> {
        // User-defined functions shadow nothing: builtins win on collision
        // is avoided by checking user functions first only for non-au names.
        if !name.starts_with("au_") {
            if let Some(func) = self.program.function(name).cloned() {
                let mut evaluated = Vec::with_capacity(args.len());
                for arg in args {
                    evaluated.push(self.eval(arg)?);
                }
                return self.call_function(&func, evaluated);
            }
        }
        self.eval_builtin(name, args)
    }

    fn arity(&self, name: &str, args: &[Expr], n: usize) -> Result<(), LangError> {
        if args.len() == n {
            Ok(())
        } else {
            Err(self.err(format!(
                "`{name}` expects {n} arguments, got {}",
                args.len()
            )))
        }
    }

    fn eval_str_arg(&mut self, name: &str, arg: &Expr) -> Result<String, LangError> {
        let (v, _) = self.eval(arg)?;
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| self.err(format!("`{name}` expects a string literal argument")))
    }

    fn eval_builtin(&mut self, name: &str, args: &[Expr]) -> Result<(Value, Deps), LangError> {
        match name {
            // ---------------------------------------------------------
            // Autonomizer primitives
            // ---------------------------------------------------------
            "au_config" => {
                // au_config("M", "DNN", "AdamOpt"|"QLearn", layers, n1, …)
                if args.len() < 4 {
                    return Err(self.err("`au_config` needs model, type, algorithm, layer count"));
                }
                let model = self.eval_str_arg(name, &args[0])?;
                let kind = self.eval_str_arg(name, &args[1])?;
                let algo = self.eval_str_arg(name, &args[2])?;
                let (layer_count_v, _) = self.eval(&args[3])?;
                let layer_count = layer_count_v
                    .as_num()
                    .ok_or_else(|| self.err("layer count must be a number"))?
                    as usize;
                if args.len() != 4 + layer_count {
                    return Err(self.err(format!(
                        "`au_config` declared {layer_count} layers but listed {}",
                        args.len() - 4
                    )));
                }
                let mut hidden = Vec::with_capacity(layer_count);
                for arg in &args[4..] {
                    let (v, _) = self.eval(arg)?;
                    hidden.push(
                        v.as_num()
                            .ok_or_else(|| self.err("layer size must be a number"))?
                            as usize,
                    );
                }
                let config = match (kind.as_str(), algo.as_str()) {
                    ("DNN", "AdamOpt") => ModelConfig::dnn(&hidden),
                    ("DNN", "QLearn") => ModelConfig::q_dnn(&hidden),
                    other => {
                        return Err(self.err(format!(
                            "unsupported model configuration {other:?} (AuLang supports DNN with AdamOpt or QLearn)"
                        )))
                    }
                };
                self.engine.au_config(&model, config)?;
                Ok((Value::Unit, Deps::new()))
            }
            "au_extract" => {
                self.arity(name, args, 2)?;
                let ext = self.eval_str_arg(name, &args[0])?;
                let (v, deps) = self.eval(&args[1])?;
                let mut nums = Vec::new();
                v.flatten_nums(&mut nums);
                self.engine.au_extract(&ext, &nums);
                self.note_uses(&deps);
                Ok((Value::Unit, Deps::new()))
            }
            "au_serialize" => {
                let mut names = Vec::with_capacity(args.len());
                for arg in args {
                    names.push(self.eval_str_arg(name, arg)?);
                }
                let refs: Vec<&str> = names.iter().map(String::as_str).collect();
                let combined = self.engine.au_serialize(&refs);
                Ok((Value::Str(combined), Deps::new()))
            }
            "au_nn" => {
                if args.len() < 3 {
                    return Err(self.err("`au_nn` needs model, ext, and at least one wb name"));
                }
                let model = self.eval_str_arg(name, &args[0])?;
                let ext = self.eval_str_arg(name, &args[1])?;
                let mut wbs = Vec::new();
                for arg in &args[2..] {
                    wbs.push(self.eval_str_arg(name, arg)?);
                }
                let wb_refs: Vec<&str> = wbs.iter().map(String::as_str).collect();
                let out = self.engine.au_nn(&model, &ext, &wb_refs)?;
                Ok((
                    Value::Array(out.into_iter().map(Value::Num).collect()),
                    Deps::new(),
                ))
            }
            "au_nn_rl" => {
                // au_nn_rl("M", ext, reward, terminal, "wb", n_actions)
                self.arity(name, args, 6)?;
                let model = self.eval_str_arg(name, &args[0])?;
                let ext = self.eval_str_arg(name, &args[1])?;
                let (reward_v, reward_deps) = self.eval(&args[2])?;
                let (term_v, term_deps) = self.eval(&args[3])?;
                let wb = self.eval_str_arg(name, &args[4])?;
                let (n_v, _) = self.eval(&args[5])?;
                self.note_uses(&reward_deps);
                self.note_uses(&term_deps);
                let reward = reward_v
                    .as_num()
                    .ok_or_else(|| self.err("reward must be a number"))?;
                let terminal = match term_v {
                    Value::Bool(b) => b,
                    Value::Num(n) => n != 0.0,
                    other => {
                        return Err(self.err(format!(
                            "terminal flag must be boolean or number, got {}",
                            other.type_name()
                        )))
                    }
                };
                let n_actions = n_v
                    .as_num()
                    .ok_or_else(|| self.err("action count must be a number"))?
                    as usize;
                let action = self
                    .engine
                    .au_nn_rl(&model, &ext, reward, terminal, &wb, n_actions)?;
                Ok((Value::Num(action as f64), Deps::new()))
            }
            "au_write_back" => {
                self.arity(name, args, 1)?;
                let key = self.eval_str_arg(name, &args[0])?;
                let v = self.engine.au_write_back_scalar(&key)?;
                Ok((Value::Num(v), Deps::new()))
            }
            "au_write_back_n" => {
                self.arity(name, args, 2)?;
                let key = self.eval_str_arg(name, &args[0])?;
                let (n_v, _) = self.eval(&args[1])?;
                let n = n_v
                    .as_num()
                    .ok_or_else(|| self.err("size must be a number"))?
                    as usize;
                let mut buf = vec![0.0; n];
                self.engine.au_write_back(&key, &mut buf)?;
                Ok((
                    Value::Array(buf.into_iter().map(Value::Num).collect()),
                    Deps::new(),
                ))
            }
            "au_checkpoint" => {
                self.arity(name, args, 0)?;
                self.checkpoint = Some(self.engine.checkpoint_with(&self.frames));
                Ok((Value::Unit, Deps::new()))
            }
            "au_restore" => {
                self.arity(name, args, 0)?;
                let ckpt = self
                    .checkpoint
                    .clone()
                    .ok_or_else(|| self.err("au_restore without au_checkpoint"))?;
                // Restore π, then overwrite the *values* of every program
                // variable that existed at checkpoint time, keeping the
                // current scope structure intact (execution continues after
                // this statement, possibly deeper in the block structure
                // than where the checkpoint was taken). Variables created
                // since the checkpoint keep their current values — they
                // did not exist in the snapshot's memory.
                //
                // The snapshot is flattened by name (innermost binding
                // wins), so same-named variables in different frames share
                // one restored value — AuLang programs should use distinct
                // names for state they checkpoint, as the examples do.
                let snapshot_frames = self.engine.restore_with(&ckpt);
                let mut snapshot_values: HashMap<String, Value> = HashMap::new();
                for frame in &snapshot_frames {
                    for scope in &frame.scopes {
                        for (var, value) in scope {
                            snapshot_values.insert(var.clone(), value.clone());
                        }
                    }
                }
                for frame in &mut self.frames {
                    for scope in &mut frame.scopes {
                        for (var, value) in scope.iter_mut() {
                            if let Some(saved) = snapshot_values.get(var) {
                                *value = saved.clone();
                            }
                        }
                    }
                }
                Ok((Value::Unit, Deps::new()))
            }
            // ---------------------------------------------------------
            // Analysis annotations
            // ---------------------------------------------------------
            "mark_input" => {
                self.arity(name, args, 1)?;
                let var = self.eval_str_arg(name, &args[0])?;
                self.analysis.mark_input(&var);
                Ok((Value::Unit, Deps::new()))
            }
            "mark_target" => {
                self.arity(name, args, 1)?;
                let var = self.eval_str_arg(name, &args[0])?;
                self.analysis.mark_target(&var);
                Ok((Value::Unit, Deps::new()))
            }
            // ---------------------------------------------------------
            // General builtins
            // ---------------------------------------------------------
            "input" => {
                self.arity(name, args, 2)?;
                let key = self.eval_str_arg(name, &args[0])?;
                let (default, _) = self.eval(&args[1])?;
                let value = self.inputs.get(&key).cloned().unwrap_or(default);
                self.analysis.mark_input(&key);
                if let Some(n) = value.as_num() {
                    self.analysis.record_value(&key, n);
                }
                let mut deps = Deps::new();
                deps.insert(key);
                Ok((value, deps))
            }
            "print" => {
                let mut parts = Vec::with_capacity(args.len());
                for arg in args {
                    let (v, _) = self.eval(arg)?;
                    parts.push(v.to_string());
                }
                self.output.push(parts.join(" "));
                Ok((Value::Unit, Deps::new()))
            }
            "len" => {
                self.arity(name, args, 1)?;
                let (v, deps) = self.eval(&args[0])?;
                match v {
                    Value::Array(items) => Ok((Value::Num(items.len() as f64), deps)),
                    Value::Str(s) => Ok((Value::Num(s.len() as f64), deps)),
                    other => Err(self.err(format!("`len` of {}", other.type_name()))),
                }
            }
            "append" => {
                self.arity(name, args, 2)?;
                let (arr, mut deps) = self.eval(&args[0])?;
                let (item, item_deps) = self.eval(&args[1])?;
                deps.extend(item_deps);
                match arr {
                    Value::Array(mut items) => {
                        items.push(item);
                        Ok((Value::Array(items), deps))
                    }
                    other => Err(self.err(format!("`append` to {}", other.type_name()))),
                }
            }
            "floor" | "abs" | "sqrt" | "sin" | "cos" | "exp" => {
                self.arity(name, args, 1)?;
                let (v, deps) = self.eval(&args[0])?;
                let x = v
                    .as_num()
                    .ok_or_else(|| self.err(format!("`{name}` needs a number")))?;
                let out = match name {
                    "floor" => x.floor(),
                    "abs" => x.abs(),
                    "sqrt" => x.sqrt(),
                    "sin" => x.sin(),
                    "cos" => x.cos(),
                    "exp" => x.exp(),
                    _ => unreachable!(),
                };
                Ok((Value::Num(out), deps))
            }
            "min" | "max" => {
                self.arity(name, args, 2)?;
                let (a, mut deps) = self.eval(&args[0])?;
                let (b, bdeps) = self.eval(&args[1])?;
                deps.extend(bdeps);
                let (a, b) = (
                    a.as_num()
                        .ok_or_else(|| self.err(format!("`{name}` needs numbers")))?,
                    b.as_num()
                        .ok_or_else(|| self.err(format!("`{name}` needs numbers")))?,
                );
                let out = if name == "min" { a.min(b) } else { a.max(b) };
                Ok((Value::Num(out), deps))
            }
            "rand" => {
                // xorshift64* — deterministic under set_seed.
                self.arity(name, args, 0)?;
                let mut x = self.rng_state;
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                self.rng_state = x;
                let r = (x.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 11) as f64 / (1u64 << 53) as f64;
                Ok((Value::Num(r), Deps::new()))
            }
            other => Err(self.err(format!("unknown function `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Value {
        Interpreter::compile(src).unwrap().run().unwrap()
    }

    #[test]
    fn arithmetic_and_control_flow() {
        let v = run(
            "fn main() { let s = 0; let i = 0; while (i < 5) { i = i + 1; s = s + i; } return s; }",
        );
        assert_eq!(v.as_num(), Some(15.0));
    }

    #[test]
    fn for_loop_sugar_executes() {
        let v = run(
            "fn main() { let s = 0; for (let i = 0; i < 5; i = i + 1) { s = s + i; } return s; }",
        );
        assert_eq!(v.as_num(), Some(10.0));
    }

    #[test]
    fn for_loop_initializer_is_scoped() {
        // `i` from the for initializer must not leak into the outer scope.
        let err =
            Interpreter::compile("fn main() { for (let i = 0; i < 2; i = i + 1) { } return i; }")
                .unwrap()
                .run()
                .unwrap_err();
        assert!(matches!(err, LangError::Runtime(_)));
    }

    #[test]
    fn if_else_branches() {
        let v = run("fn main() { let x = 3; if (x > 2) { return 1; } else { return 0; } }");
        assert_eq!(v.as_num(), Some(1.0));
    }

    #[test]
    fn function_calls_and_returns() {
        let v = run("fn double(x) { return x * 2; } fn main() { return double(21); }");
        assert_eq!(v.as_num(), Some(42.0));
    }

    #[test]
    fn arrays_index_and_mutation() {
        let v = run("fn main() { let a = [1, 2, 3]; a[1] = 10; return a[0] + a[1] + a[2]; }");
        assert_eq!(v.as_num(), Some(14.0));
    }

    #[test]
    fn break_and_continue() {
        let v = run(
            "fn main() { let s = 0; let i = 0; while (true) { i = i + 1; if (i > 10) { break; } if (i % 2 == 0) { continue; } s = s + i; } return s; }",
        );
        assert_eq!(v.as_num(), Some(25.0)); // 1+3+5+7+9
    }

    #[test]
    fn short_circuit_does_not_evaluate_rhs() {
        // Indexing out of bounds on the rhs would error if evaluated.
        let v = run("fn main() { let a = [1]; if (false && a[9] == 1) { return 1; } return 0; }");
        assert_eq!(v.as_num(), Some(0.0));
    }

    #[test]
    fn undefined_variable_is_runtime_error() {
        let err = Interpreter::compile("fn main() { return ghost; }")
            .unwrap()
            .run()
            .unwrap_err();
        assert!(matches!(err, LangError::Runtime(_)));
    }

    #[test]
    fn step_limit_stops_infinite_loops() {
        let mut interp = Interpreter::compile("fn main() { while (true) { let x = 1; } }").unwrap();
        interp.set_step_limit(1000);
        assert!(matches!(interp.run(), Err(LangError::Runtime(_))));
    }

    #[test]
    fn inputs_reach_the_program_and_are_marked() {
        let mut interp =
            Interpreter::compile("fn main() { let x = input(\"img\", 0); return x + 1; }").unwrap();
        interp.set_input("img", Value::Num(9.0));
        assert_eq!(interp.run().unwrap().as_num(), Some(10.0));
        let db = interp.analysis();
        let img = db.id("img").unwrap();
        assert!(db.inputs().contains(&img));
    }

    #[test]
    fn tracing_records_dependence_edges() {
        let mut interp = Interpreter::compile(
            "fn main() { let a = input(\"a\", 1); let b = a * 2; let c = b + a; return c; }",
        )
        .unwrap();
        interp.run().unwrap();
        let db = interp.analysis();
        let a = db.id("a").unwrap();
        let c = db.id("c").unwrap();
        assert!(db.dependents(a).contains(&c));
        assert!(db.bfs_distance(a, c).unwrap() <= 2);
    }

    #[test]
    fn write_back_marks_targets() {
        let src = r#"
            fn main() {
                au_extract("P", 7);
                let t = 0;
                t = au_write_back("P");
                return t;
            }
        "#;
        let mut interp = Interpreter::compile(src).unwrap();
        assert_eq!(interp.run().unwrap().as_num(), Some(7.0));
        let db = interp.analysis();
        let t = db.id("t").unwrap();
        assert!(db.targets().contains(&t));
    }

    #[test]
    fn checkpoint_restore_rolls_back_variables() {
        let src = r#"
            fn main() {
                let lives = 3;
                au_checkpoint();
                lives = 0;
                au_restore();
                return lives;
            }
        "#;
        assert_eq!(run(src).as_num(), Some(3.0));
    }

    #[test]
    fn restore_without_checkpoint_errors() {
        let err = Interpreter::compile("fn main() { au_restore(); }")
            .unwrap()
            .run()
            .unwrap_err();
        assert!(matches!(err, LangError::Runtime(_)));
    }

    #[test]
    fn full_sl_primitive_cycle() {
        au_nn::set_init_seed(31);
        // Train y = 3x through the primitives alone.
        let src = r#"
            fn main() {
                au_config("M", "DNN", "AdamOpt", 1, 16);
                let i = 0;
                while (i < 1500) {
                    let x = (i % 10) / 10.0;
                    au_extract("F", x);
                    au_extract("Y", x * 3);
                    au_nn("M", "F", "Y");
                    i = i + 1;
                }
                au_extract("F", 0.5);
                au_nn("M", "F", "Y");
                let y = 0;
                y = au_write_back("Y");
                return y;
            }
        "#;
        let mut interp = Interpreter::compile(src).unwrap();
        interp.set_tracing(false);
        let v = interp.run().unwrap();
        let y = v.as_num().unwrap();
        assert!((y - 1.5).abs() < 0.5, "predicted {y}, want ≈1.5");
    }

    #[test]
    fn full_rl_primitive_cycle() {
        au_nn::set_init_seed(32);
        // One-state bandit: action 1 rewards +1, action 0 rewards -1.
        let src = r#"
            fn main() {
                au_config("Q", "DNN", "QLearn", 1, 8);
                let i = 0;
                let reward = 0;
                while (i < 300) {
                    au_extract("S", 1);
                    let a = au_nn_rl("Q", "S", reward, false, "out", 2);
                    if (a == 1) { reward = 1; } else { reward = 0 - 1; }
                    i = i + 1;
                }
                au_extract("S", 1);
                let final_a = au_nn_rl("Q", "S", reward, true, "out", 2);
                return final_a;
            }
        "#;
        let mut interp = Interpreter::compile(src).unwrap();
        interp.set_tracing(false);
        let v = interp.run().unwrap();
        // After 300 bandit pulls the greedy-ish policy should favor 1 (ε has
        // decayed close to its floor).
        assert_eq!(v.as_num(), Some(1.0));
    }

    #[test]
    fn print_collects_output() {
        let src = r#"fn main() { print("hello", 1 + 1); return 0; }"#;
        let mut interp = Interpreter::compile(src).unwrap();
        interp.run().unwrap();
        assert_eq!(interp.output(), ["hello 2"]);
    }

    #[test]
    fn rand_is_deterministic_under_seed() {
        let src = "fn main() { return rand(); }";
        let mut a = Interpreter::compile(src).unwrap();
        a.set_seed(7);
        let mut b = Interpreter::compile(src).unwrap();
        b.set_seed(7);
        assert_eq!(a.run().unwrap(), b.run().unwrap());
    }

    #[test]
    fn stats_count_steps_and_assignments() {
        let mut interp =
            Interpreter::compile("fn main() { let a = 1; let b = a + 1; return b; }").unwrap();
        interp.run().unwrap();
        let stats = interp.stats();
        assert!(stats.steps >= 3);
        assert_eq!(stats.assignments, 2);
    }

    #[test]
    fn builtin_math_functions() {
        assert_eq!(run("fn main() { return abs(0 - 5); }").as_num(), Some(5.0));
        assert_eq!(
            run("fn main() { return max(2, 3) + min(2, 3); }").as_num(),
            Some(5.0)
        );
        assert_eq!(run("fn main() { return floor(2.9); }").as_num(), Some(2.0));
        assert_eq!(
            run("fn main() { let a = append([1], 2); return len(a); }").as_num(),
            Some(2.0)
        );
    }
}
