//! The compact instruction set for the AuLang bytecode VM.
//!
//! [`compile`](crate::compile) lowers a parsed [`Program`](crate::Program)
//! into a [`CompiledProgram`]: one flat `Vec<Op>` covering every function
//! (absolute jump targets), plus interned pools for constants, variable
//! names, and error messages. The VM (`vm.rs`) executes it with a value
//! stack and a contiguous locals array — variable references are resolved
//! to frame-relative slots at compile time, so the hot path never touches
//! a hash map.
//!
//! Tracing is *instrumentation*, not interpretation state: the compiler
//! emits [`Op::TraceAssign`] / [`Op::NoteUses`] / [`Op::MarkTargetName`]
//! only in traced builds, and in [`TraceMode::Selective`] only at sites
//! the static dependence graph says can reach an extraction pair. An
//! untraced program contains no trace opcodes at all, so untraced
//! execution carries zero tracing overhead.

use crate::ast::BinOp;
use crate::value::Value;

/// How much dynamic dependence tracing the compiled program carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// No trace opcodes are emitted; execution is pure computation.
    Off,
    /// Every assignment/use is traced — the analysis database is
    /// bit-identical to the tree-walking interpreter's.
    Full,
    /// Trace opcodes are emitted only for variables the static dependence
    /// graph ([`au_trace::StaticFilter`]) cannot prove unrelated to every
    /// prediction target. Pruned extraction over the resulting database
    /// selects the same features as over the full one.
    Selective,
}

/// Math builtins dispatched through a single opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MathFn {
    Floor,
    Abs,
    Sqrt,
    Sin,
    Cos,
    Exp,
}

impl MathFn {
    pub(crate) fn name(self) -> &'static str {
        match self {
            MathFn::Floor => "floor",
            MathFn::Abs => "abs",
            MathFn::Sqrt => "sqrt",
            MathFn::Sin => "sin",
            MathFn::Cos => "cos",
            MathFn::Exp => "exp",
        }
    }

    pub(crate) fn apply(self, x: f64) -> f64 {
        match self {
            MathFn::Floor => x.floor(),
            MathFn::Abs => x.abs(),
            MathFn::Sqrt => x.sqrt(),
            MathFn::Sin => x.sin(),
            MathFn::Cos => x.cos(),
            MathFn::Exp => x.exp(),
        }
    }
}

/// How an index-assignment site is instrumented (decided at compile time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TraceKind {
    /// Untraced site.
    None,
    /// Record a full `record_assign` (destination participates in
    /// extraction).
    Assign,
    /// Destination is provably irrelevant but a source may be relevant:
    /// record only the uses so `UseFunc` sets stay exact.
    Uses,
}

/// One VM instruction. `u32` fields index the interned pools of the owning
/// [`CompiledProgram`]; `u16` slots are frame-relative locals indices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Op {
    /// Statement boundary: bump the step counter, enforce the step limit.
    Step,
    /// Push a clone of `consts[i]`.
    Const(u32),
    /// Push a clone of the local in `slot`.
    Load(u16),
    /// Pop into the local in `slot`.
    Store(u16),
    /// Pop and discard the top value.
    Pop,
    /// Pop `n` values, push them as one array (stack order preserved).
    MakeArray(u16),
    /// Pop index then target, push `target[index]`.
    IndexGet,
    /// Pop value then index, store into `names[name]` at `slot`
    /// (trace-then-bounds-check, mirroring the interpreter's order).
    StoreIndex {
        slot: u16,
        name: u32,
        trace: TraceKind,
    },
    /// As [`Op::StoreIndex`] but the name resolves to no local: validate
    /// the index, trace, then fail with "assignment to undefined
    /// variable".
    StoreIndexUndef { name: u32, trace: TraceKind },
    /// Pop rhs then lhs, push the non-short-circuit binary result.
    Bin(BinOp),
    /// Fused `Load(a); Load(b); Bin(op)` emitted by the optimizer's
    /// peephole pass. Pushes one result (and, when traced, one dep set
    /// holding both slot names) — identical observable behavior to the
    /// unfused sequence.
    LoadLoadBin {
        /// Left operand slot.
        a: u16,
        /// Right operand slot.
        b: u16,
        /// The binary operator (never `And`/`Or`).
        op: BinOp,
    },
    /// Fused `Load(slot); Const(cidx); Bin(op)`: local on the left,
    /// constant on the right.
    LoadConstBin {
        /// Left operand slot.
        slot: u16,
        /// Right operand constant-pool index.
        cidx: u32,
        /// The binary operator (never `And`/`Or`).
        op: BinOp,
    },
    /// Fused `Const(cidx); Bin(op)`: whatever is on the stack on the
    /// left, constant on the right. Net no-op on the traced dep stack
    /// (the constant contributes no deps).
    ConstBin {
        /// Right operand constant-pool index.
        cidx: u32,
        /// The binary operator (never `And`/`Or`).
        op: BinOp,
    },
    /// Pop a number, push its negation.
    Neg,
    /// Pop a boolean, push its complement.
    Not,
    /// Short-circuit probe: pop the lhs (must be boolean). If it decides
    /// the result (`false &&` / `true ||`), push it back and jump to
    /// `skip`; otherwise fall through to the rhs code (the lhs dep set
    /// stays pending for [`Op::LogicalRhs`]).
    ShortCircuit { is_and: bool, skip: u32 },
    /// Pop the rhs (must be boolean), push it, merge the pending lhs deps.
    LogicalRhs,
    /// Unconditional jump.
    Jump(u32),
    /// Pop a value; error with `msgs[msg]` if not boolean, jump to
    /// `target` if false.
    BranchFalse { target: u32, msg: u32 },
    /// Call `funcs[func]`: pop its arguments into fresh locals, push a
    /// frame. `live` names the variables visible at the call site (for
    /// checkpoint snapshots taken deeper in the callee).
    Call { func: u16, live: u32 },
    /// Return the top of stack to the caller (or finish `main`).
    Ret,
    /// Push `Unit`, then return (function fell off its end / bare
    /// `return;`).
    RetUnit,
    /// Abort with the statically formatted `msgs[msg]`.
    Fail(u32),
    /// Error with `msgs[msg]` unless the top of stack is a string.
    EnsureStr(u32),
    /// Error with `msgs[msg]` unless the top of stack is a number.
    EnsureNum(u32),
    /// Record uses of the top dep set (condition / extracted expression).
    NoteUses,
    /// Record a `record_assign` of the top value+deps into `names[name]`.
    TraceAssign { name: u32 },
    /// Mark `names[name]` as a prediction target (write-back assignment).
    MarkTargetName(u32),
    /// Builtin `mark_input`: pop a string, mark it as an input.
    MarkInput,
    /// Builtin `mark_target`: pop a string, mark it as a target.
    MarkTarget,
    /// Builtin `input`: pop default then key, push the supplied input (or
    /// the default), mark + record the key.
    Input,
    /// Pop `n` values, join their displays with spaces into the output
    /// log, push `Unit`.
    Print(u16),
    /// Builtin `len`.
    Len,
    /// Builtin `append`: pop item then array, push the extended array.
    Append,
    /// One-argument math builtin.
    Math1(MathFn),
    /// `min` / `max`.
    Math2 { is_min: bool },
    /// Deterministic xorshift64* `rand()`.
    Rand,
    /// `au_config` layer-count validation: peek the count (must be a
    /// number) and check it against the call's argument count.
    AuConfigCheck { argc: u16 },
    /// `au_config`: pop `layers` sizes, the count, and the three config
    /// strings; configure the engine model.
    AuConfig { layers: u16 },
    /// `au_extract`: pop value then name, feed flattened numbers to π.
    AuExtract,
    /// `au_serialize`: pop `argc` names, push the combined string.
    AuSerialize { argc: u16 },
    /// `au_nn`: pop `argc` strings (model, ext, write-backs), train/serve.
    AuNn { argc: u16 },
    /// `au_nn_rl`: pop the six arguments, push the chosen action.
    AuNnRl,
    /// `au_write_back`: pop a name, push the predicted scalar.
    AuWriteBack,
    /// `au_write_back_n`: pop size then name, push the predicted array.
    AuWriteBackN,
    /// `au_checkpoint`: snapshot π and the variables in `live_sets[live]`
    /// across all frames.
    AuCheckpoint { live: u32 },
    /// `au_restore`: restore π and overwrite snapshot variables by name.
    AuRestore { live: u32 },
}

/// Compile-time metadata for one function.
#[derive(Debug, Clone)]
pub(crate) struct FuncInfo {
    /// Function name (index into the names pool).
    pub name: u32,
    /// Parameter names in order (indices into the names pool).
    pub params: Vec<u32>,
    /// First opcode of the body.
    pub entry: u32,
    /// Locals-array length for a frame of this function (params included).
    pub nlocals: u16,
    /// Source-level variable name of each slot (indices into the names
    /// pool); used by traced `Load` to push the dependence name.
    pub slot_names: Vec<u32>,
}

/// What the abstract-interpretation optimizer did to a program.
///
/// All counters are zero for programs compiled without optimization
/// ([`crate::compile::compile_program`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Expressions replaced by their statically-computed constant value.
    pub folded: usize,
    /// `if`/`while` branches pruned because the condition is provably
    /// constant.
    pub pruned_branches: usize,
    /// Dead stores whose right-hand side was elided (untraced mode only).
    pub dead_stores: usize,
    /// Instruction sequences fused into superinstructions by the
    /// bytecode peephole pass.
    pub fused: usize,
    /// Selective-mode trace opcodes elided because the variable is
    /// provably constant (constant features are dead weight in θ).
    pub trace_elided: usize,
}

/// A lowered AuLang program, ready for the VM.
///
/// Produced by [`crate::compile::compile_program`]; executed by
/// [`crate::Vm`]. The struct is immutable once built — a single
/// `CompiledProgram` can back any number of VM runs.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    pub(crate) ops: Vec<Op>,
    pub(crate) consts: Vec<Value>,
    pub(crate) names: Vec<String>,
    pub(crate) msgs: Vec<String>,
    pub(crate) funcs: Vec<FuncInfo>,
    /// Scope snapshots for checkpoint/call sites: `(slot, name)` pairs in
    /// outer-to-inner declaration order. Id 0 is always the empty set.
    pub(crate) live_sets: Vec<Vec<(u16, u32)>>,
    pub(crate) main_func: u16,
    /// The mode the caller asked for.
    pub(crate) requested: TraceMode,
    /// The mode actually compiled (Selective falls back to Full when the
    /// program defeats static analysis — e.g. computed `input` names).
    pub(crate) effective: TraceMode,
    /// Per-name relevance under the static filter (all `true` outside
    /// Selective mode). Indexed by name id.
    pub(crate) relevant: Vec<bool>,
    /// What the optimizer did (all zeros when compiled unoptimized).
    pub(crate) opt_stats: OptStats,
}

impl CompiledProgram {
    /// Number of instructions in the program.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// The trace mode requested at compile time.
    pub fn requested_trace_mode(&self) -> TraceMode {
        self.requested
    }

    /// The trace mode actually compiled. Differs from
    /// [`requested_trace_mode`](Self::requested_trace_mode) only when a
    /// `Selective` request fell back to `Full` because the program uses
    /// computed names in `input` / `mark_input` / `mark_target`.
    pub fn effective_trace_mode(&self) -> TraceMode {
        self.effective
    }

    /// What the abstract-interpretation optimizer did to this program.
    /// All zeros when compiled via
    /// [`crate::compile::compile_program`].
    pub fn opt_stats(&self) -> OptStats {
        self.opt_stats
    }

    /// How many trace opcodes (`TraceAssign` / `NoteUses` /
    /// `MarkTargetName` / traced index stores) the program contains.
    pub fn trace_op_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| {
                matches!(
                    op,
                    Op::TraceAssign { .. }
                        | Op::NoteUses
                        | Op::MarkTargetName(_)
                        | Op::StoreIndex {
                            trace: TraceKind::Assign | TraceKind::Uses,
                            ..
                        }
                        | Op::StoreIndexUndef {
                            trace: TraceKind::Assign | TraceKind::Uses,
                            ..
                        }
                )
            })
            .count()
    }
}
