//! AuLang runtime values.

use std::fmt;

/// A runtime value. Arrays have value semantics (copied on assignment),
/// which keeps checkpoint/restore a deep copy by construction.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A number (AuLang's only numeric type).
    Num(f64),
    /// A boolean.
    Bool(bool),
    /// A string (used mainly for primitive arguments).
    Str(String),
    /// An array of values.
    Array(Vec<Value>),
    /// The unit value of statements and `return;`.
    Unit,
}

impl Value {
    /// The number inside, if numeric.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean inside, if boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string inside, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Flattens the value into numbers (arrays recurse; booleans become
    /// 0/1). Strings and unit contribute nothing.
    pub fn flatten_nums(&self, out: &mut Vec<f64>) {
        match self {
            Value::Num(n) => out.push(*n),
            Value::Bool(b) => out.push(if *b { 1.0 } else { 0.0 }),
            Value::Array(items) => {
                for item in items {
                    item.flatten_nums(out);
                }
            }
            Value::Str(_) | Value::Unit => {}
        }
    }

    /// Type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Num(_) => "number",
            Value::Bool(_) => "boolean",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Unit => "unit",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Num(n) => write!(f, "{n}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Array(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Value::Unit => write!(f, "()"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::Num(2.0).as_num(), Some(2.0));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Str("a".into()).as_str(), Some("a"));
        assert_eq!(Value::Unit.as_num(), None);
    }

    #[test]
    fn flatten_recurses() {
        let v = Value::Array(vec![
            Value::Num(1.0),
            Value::Array(vec![Value::Num(2.0), Value::Bool(true)]),
            Value::Str("skip".into()),
        ]);
        let mut out = Vec::new();
        v.flatten_nums(&mut out);
        assert_eq!(out, vec![1.0, 2.0, 1.0]);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Num(1.5).to_string(), "1.5");
        assert_eq!(
            Value::Array(vec![Value::Num(1.0), Value::Num(2.0)]).to_string(),
            "[1, 2]"
        );
        assert_eq!(Value::Unit.to_string(), "()");
    }
}
