//! AST pretty-printer: renders a [`Program`] back to AuLang source.
//!
//! The printer produces canonical source that re-parses to the same AST
//! (round-trip property), which the test suite uses to validate the parser
//! against itself.

use crate::ast::{BinOp, Expr, ExprKind, Function, Program, Stmt, StmtKind, UnOp};
use std::fmt::Write;

/// Renders a whole program as canonical AuLang source.
pub fn print_program(program: &Program) -> String {
    let mut out = String::new();
    for (i, func) in program.functions.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        print_function(func, &mut out);
    }
    out
}

fn print_function(func: &Function, out: &mut String) {
    let _ = writeln!(out, "fn {}({}) {{", func.name, func.params.join(", "));
    for stmt in &func.body {
        print_stmt(stmt, 1, out);
    }
    out.push_str("}\n");
}

fn indent(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn print_block(stmts: &[Stmt], level: usize, out: &mut String) {
    out.push_str("{\n");
    for stmt in stmts {
        print_stmt(stmt, level + 1, out);
    }
    indent(level, out);
    out.push('}');
}

fn print_stmt(stmt: &Stmt, level: usize, out: &mut String) {
    indent(level, out);
    match &stmt.kind {
        StmtKind::Let { name, init } => {
            let _ = writeln!(out, "let {name} = {};", print_expr(init));
        }
        StmtKind::Assign { name, value } => {
            let _ = writeln!(out, "{name} = {};", print_expr(value));
        }
        StmtKind::AssignIndex { name, index, value } => {
            let _ = writeln!(
                out,
                "{name}[{}] = {};",
                print_expr(index),
                print_expr(value)
            );
        }
        StmtKind::If {
            cond,
            then_body,
            else_body,
        } => {
            let _ = write!(out, "if ({}) ", print_expr(cond));
            print_block(then_body, level, out);
            if !else_body.is_empty() {
                out.push_str(" else ");
                // `else if` chains are parsed as a single-statement else
                // block; print them back flat.
                if else_body.len() == 1 {
                    if let StmtKind::If { .. } = &else_body[0].kind {
                        let mut nested = String::new();
                        print_stmt(&else_body[0], 0, &mut nested);
                        out.push_str(nested.trim_start());
                        return;
                    }
                }
                print_block(else_body, level, out);
            }
            out.push('\n');
        }
        StmtKind::While { cond, body } => {
            let _ = write!(out, "while ({}) ", print_expr(cond));
            print_block(body, level, out);
            out.push('\n');
        }
        StmtKind::Return(Some(e)) => {
            let _ = writeln!(out, "return {};", print_expr(e));
        }
        StmtKind::Return(None) => out.push_str("return;\n"),
        StmtKind::Break => out.push_str("break;\n"),
        StmtKind::Continue => out.push_str("continue;\n"),
        StmtKind::Expr(e) => {
            let _ = writeln!(out, "{};", print_expr(e));
        }
    }
}

fn bin_op_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::And => "&&",
        BinOp::Or => "||",
    }
}

/// Renders one expression with full parenthesization (canonical form: the
/// output re-parses to the identical AST without precedence reasoning).
pub fn print_expr(expr: &Expr) -> String {
    match &expr.kind {
        ExprKind::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 1e15 {
                format!("{}", *n as i64)
            } else {
                format!("{n}")
            }
        }
        ExprKind::Bool(b) => b.to_string(),
        ExprKind::Str(s) => {
            // Only the escapes the lexer understands: \n, \t, \", \\.
            // Other characters pass through verbatim.
            let mut out = String::with_capacity(s.len() + 2);
            out.push('"');
            for c in s.chars() {
                match c {
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    other => out.push(other),
                }
            }
            out.push('"');
            out
        }
        ExprKind::Var(name) => name.clone(),
        ExprKind::Array(items) => {
            let inner: Vec<String> = items.iter().map(print_expr).collect();
            format!("[{}]", inner.join(", "))
        }
        ExprKind::Index(target, index) => {
            format!("{}[{}]", print_expr(target), print_expr(index))
        }
        ExprKind::Call { name, args } => {
            let inner: Vec<String> = args.iter().map(print_expr).collect();
            format!("{name}({})", inner.join(", "))
        }
        ExprKind::Binary { op, lhs, rhs } => {
            format!(
                "({} {} {})",
                print_expr(lhs),
                bin_op_str(*op),
                print_expr(rhs)
            )
        }
        ExprKind::Unary { op, expr } => match op {
            UnOp::Neg => format!("(-{})", print_expr(expr)),
            UnOp::Not => format!("(!{})", print_expr(expr)),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn round_trip(src: &str) {
        let ast = parse(src).unwrap();
        let printed = print_program(&ast);
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("printed source must re-parse: {e}\n{printed}"));
        assert_eq!(ast, reparsed, "round-trip AST mismatch for:\n{printed}");
    }

    #[test]
    fn round_trips_basic_program() {
        round_trip("fn main() { let x = 1 + 2 * 3; return x; }");
    }

    #[test]
    fn round_trips_control_flow() {
        round_trip(
            "fn main() { let i = 0; while (i < 10) { if (i % 2 == 0) { i = i + 1; } else { break; } continue; } return i; }",
        );
    }

    #[test]
    fn round_trips_arrays_and_calls() {
        round_trip(
            r#"fn f(a, b) { return a[0] + b; } fn main() { let a = [1, 2, 3]; a[1] = f(a, 2); return len(a); }"#,
        );
    }

    #[test]
    fn round_trips_primitives() {
        round_trip(
            r#"fn main() { au_config("M", "DNN", "AdamOpt", 1, 8); au_extract("X", 1); au_nn("M", "X", "Y"); let y = au_write_back("Y"); return y; }"#,
        );
    }

    #[test]
    fn round_trips_strings_with_escapes() {
        round_trip(r#"fn main() { print("a\"b\\c\n"); return 0; }"#);
    }

    #[test]
    fn round_trips_unary_and_logic() {
        round_trip(
            "fn main() { let b = !(1 < 2) || true && false; if (b) { return -1; } return 0 - -2; }",
        );
    }

    #[test]
    fn round_trips_else_if_chain() {
        round_trip(
            "fn main() { let x = 3; if (x < 1) { return 1; } else if (x < 2) { return 2; } else { return 3; } }",
        );
    }

    #[test]
    fn canonical_form_is_stable() {
        // Printing the parse of a printed program yields the same text.
        let src = "fn main() { let x = (1 + 2) * 3; return x; }";
        let once = print_program(&parse(src).unwrap());
        let twice = print_program(&parse(&once).unwrap());
        assert_eq!(once, twice);
    }
}
