//! The nine paper benchmark programs, written in AuLang.
//!
//! The paper evaluates autonomization on nine programs — four supervised
//! (Canny, Rothwell, Phylip, Sphinx) and five reinforcement-style game
//! loops (Flappy, Mario, Arkanoid, TORCS, Breakout). This module carries
//! compact AuLang renditions of all nine, shaped like the paper's Fig. 2 /
//! Fig. 11 listings: compute-heavy scalar/array loops around sparse `au_*`
//! protocol calls with tiny models, so engine time stays negligible and
//! execution-tier comparisons (interpreter vs. bytecode VM, traced vs.
//! untraced) measure the language runtime itself.
//!
//! Every program passes `au-lint` with zero findings, terminates (or is
//! bounded by the entry's [`step_limit`](CorpusProgram::step_limit) — the
//! checkpoint/restore training loops are endless by design, like the
//! paper's), and is deterministic: `rand()` is seeded by the host, and
//! model behaviour is pinned by `au_nn::set_init_seed`.
//!
//! Used by the differential test suite (`tests/aulang_vm_differential.rs`)
//! and the `aulang_exec` Criterion bench.

/// One corpus entry.
#[derive(Debug, Clone, Copy)]
pub struct CorpusProgram {
    /// Benchmark name, matching the paper's Table 1.
    pub name: &'static str,
    /// AuLang source.
    pub src: &'static str,
    /// Step budget for the endless checkpoint/restore training loops
    /// (`None` = the program terminates on its own).
    pub step_limit: Option<u64>,
    /// Suggested `au_nn::set_init_seed` value for reproducible runs.
    pub nn_seed: u64,
}

/// Canny edge detection: smooth, differentiate, histogram; the model
/// predicts the hysteresis threshold from the magnitude histogram.
pub const CANNY: &str = r#"
    fn smooth(signal, n) {
        let out = [];
        for (let i = 0; i < n; i = i + 1) {
            let lo = max(i - 1, 0);
            let hi = min(i + 1, n - 1);
            out = append(out, (signal[lo] + signal[i] + signal[hi]) / 3.0);
        }
        return out;
    }

    fn gradient(s, n) {
        let out = [];
        for (let i = 0; i < n - 1; i = i + 1) {
            out = append(out, abs(s[i + 1] - s[i]));
        }
        return out;
    }

    fn histogram(mag, n) {
        let hist = [0, 0, 0, 0];
        for (let i = 0; i < n; i = i + 1) {
            let bin = floor(min(mag[i], 0.99) * 4);
            hist[bin] = hist[bin] + 1;
        }
        return hist;
    }

    fn main() {
        au_config("ThNN", "DNN", "AdamOpt", 1, 8);
        let round = 0;
        while (round < 40) {
            let height = 0.2 + 0.6 * ((round % 10) / 10.0);
            let signal = [];
            for (let i = 0; i < 16; i = i + 1) {
                let base = 0;
                if (i >= 8) { base = height; }
                signal = append(signal, base + 0.02 * sin(i * 3.0));
            }
            let s = smooth(signal, 16);
            let mag = gradient(s, 16);
            let hist = histogram(mag, 15);
            au_extract("HIST", hist);
            au_extract("TH", height / 2.0);
            au_nn("ThNN", "HIST", "TH");
            round = round + 1;
        }
        let height = 0.55;
        let signal = [];
        for (let i = 0; i < 16; i = i + 1) {
            let base = 0;
            if (i >= 8) { base = height; }
            signal = append(signal, base + 0.02 * sin(i * 3.0));
        }
        let s = smooth(signal, 16);
        let mag = gradient(s, 16);
        let hist = histogram(mag, 15);
        au_extract("HIST", hist);
        au_nn("ThNN", "HIST", "TH");
        let th = 0;
        th = au_write_back("TH");
        return th;
    }
"#;

/// Rothwell straight-line detection: fit residuals over a point set; the
/// model predicts the corner-acceptance threshold `alpha`.
pub const ROTHWELL: &str = r#"
    fn residuals(pts, n, slope) {
        let out = [];
        for (let i = 0; i < n; i = i + 1) {
            out = append(out, abs(pts[i] - slope * i));
        }
        return out;
    }

    fn spread(res, n) {
        let mean = 0;
        for (let i = 0; i < n; i = i + 1) { mean = mean + res[i]; }
        mean = mean / n;
        let dev = 0;
        for (let i = 0; i < n; i = i + 1) { dev = dev + abs(res[i] - mean); }
        return [mean, dev / n];
    }

    fn main() {
        au_config("AlphaNN", "DNN", "AdamOpt", 1, 8);
        let trial = 0;
        while (trial < 60) {
            let noise = 0.05 + 0.3 * ((trial % 12) / 12.0);
            let pts = [];
            for (let i = 0; i < 20; i = i + 1) {
                pts = append(pts, 0.7 * i + noise * sin(i * 5.0));
            }
            let res = residuals(pts, 20, 0.7);
            let stats = spread(res, 20);
            au_extract("RES", stats);
            au_extract("ALPHA", noise * 2.0);
            au_nn("AlphaNN", "RES", "ALPHA");
            trial = trial + 1;
        }
        let pts = [];
        for (let i = 0; i < 20; i = i + 1) {
            pts = append(pts, 0.7 * i + 0.2 * sin(i * 5.0));
        }
        let res = residuals(pts, 20, 0.7);
        let stats = spread(res, 20);
        au_extract("RES", stats);
        au_nn("AlphaNN", "RES", "ALPHA");
        let alpha = 0;
        alpha = au_write_back("ALPHA");
        return alpha;
    }
"#;

/// Phylip DNA penny: pairwise distance matrix over encoded sequences; the
/// model predicts a tree-score bound used to prune the branch search.
pub const PHYLIP: &str = r#"
    fn pair_distance(a, b, len) {
        let d = 0;
        for (let k = 0; k < len; k = k + 1) {
            if (a[k] == b[k]) { d = d + 0; } else { d = d + 1; }
        }
        return d / len;
    }

    fn main() {
        au_config("BoundNN", "DNN", "AdamOpt", 1, 8);
        let case = 0;
        while (case < 30) {
            let drift = (case % 6) / 6.0;
            let seqs = [];
            for (let s = 0; s < 4; s = s + 1) {
                let seq = [];
                for (let k = 0; k < 12; k = k + 1) {
                    let site = (s * 7 + k * 3) % 4;
                    if ((k % 6) / 6.0 < drift) { site = (site + s) % 4; }
                    seq = append(seq, site);
                }
                seqs = append(seqs, seq);
            }
            let total = 0;
            let pairs = 0;
            for (let i = 0; i < 4; i = i + 1) {
                for (let j = 0; j < 4; j = j + 1) {
                    if (i < j) {
                        total = total + pair_distance(seqs[i], seqs[j], 12);
                        pairs = pairs + 1;
                    }
                }
            }
            let meand = total / pairs;
            au_extract("DIST", [meand, drift]);
            au_extract("BOUND", meand * 1.5);
            au_nn("BoundNN", "DIST", "BOUND");
            case = case + 1;
        }
        au_extract("DIST", [0.4, 0.5]);
        au_nn("BoundNN", "DIST", "BOUND");
        let bound = 0;
        bound = au_write_back("BOUND");
        return bound;
    }
"#;

/// Sphinx speech decoding: frame-energy bands over a synthetic signal;
/// the model predicts the beam-pruning threshold.
pub const SPHINX: &str = r#"
    fn band_energies(frame, n) {
        let bands = [0, 0, 0, 0];
        for (let i = 0; i < n; i = i + 1) {
            let b = floor((i / n) * 4);
            bands[b] = bands[b] + frame[i] * frame[i];
        }
        return bands;
    }

    fn main() {
        au_config("BeamNN", "DNN", "AdamOpt", 1, 8);
        let utt = 0;
        while (utt < 50) {
            let pitch = 0.3 + 0.5 * ((utt % 8) / 8.0);
            let frame = [];
            for (let i = 0; i < 24; i = i + 1) {
                frame = append(frame, sin(i * pitch) + 0.3 * cos(i * 2.0 * pitch));
            }
            let bands = band_energies(frame, 24);
            au_extract("BANDS", bands);
            au_extract("BEAM", pitch * 0.8);
            au_nn("BeamNN", "BANDS", "BEAM");
            utt = utt + 1;
        }
        let frame = [];
        for (let i = 0; i < 24; i = i + 1) {
            frame = append(frame, sin(i * 0.55) + 0.3 * cos(i * 1.1));
        }
        let bands = band_energies(frame, 24);
        au_extract("BANDS", bands);
        au_nn("BeamNN", "BANDS", "BEAM");
        let beam = 0;
        beam = au_write_back("BEAM");
        return beam;
    }
"#;

/// Flappy Bird: the Fig. 2 shape — checkpoint at the top, Q-learning on
/// (height, gap) state, restore on death. Endless by design; run under a
/// step budget.
pub const FLAPPY: &str = r#"
    fn draw_scanlines(seed, w, h) {
        let acc = 0;
        for (let ry = 0; ry < h; ry = ry + 1) {
            for (let rx = 0; rx < w; rx = rx + 1) {
                let shade = (rx * 7 + ry * 13 + seed) % 9;
                if (shade > 4) { acc = acc + shade; } else { acc = acc + 1; }
            }
        }
        return acc;
    }

    fn main() {
        au_config("Bird", "DNN", "QLearn", 1, 8);
        let height = 5;
        let vel = 0;
        let gap = 5;
        let t = 0;
        let reward = 0;
        let hud = 0;
        au_checkpoint();
        while (t < 500) {
            // Per-frame rendering: heavy, and provably unrelated to the
            // extraction pair, so the selective tier compiles it untraced.
            hud = hud + draw_scanlines(t, 8, 8);
            au_extract("S", [height, vel, gap]);
            let a = au_nn_rl("Bird", "S", reward, false, "act", 2);
            if (a == 1) { vel = 2; } else { vel = vel - 1; }
            height = height + vel;
            if (vel < 0 - 3) { vel = 0 - 3; }
            gap = 3 + (t * 7) % 5;
            reward = 1;
            if (abs(height - gap) > 4) {
                au_extract("S", [height, vel, gap]);
                let b = au_nn_rl("Bird", "S", 0 - 10, true, "act", 2);
                au_restore();
            }
            t = t + 1;
        }
        return t + hud % 3;
    }
"#;

/// Super Mario: the paper's Fig. 2 listing, lightly fleshed out — position
/// advance vs. obstacles, checkpoint/restore on death.
pub const MARIO: &str = r#"
    fn scroll_tiles(cam, w, h) {
        let sum = 0;
        for (let ty = 0; ty < h; ty = ty + 1) {
            for (let tx = 0; tx < w; tx = tx + 1) {
                let tile = (tx * 5 + ty * 11 + cam) % 8;
                if (tile > 3) { sum = sum + tile; } else { sum = sum - 1; }
            }
        }
        return sum;
    }

    fn main() {
        au_config("Mario", "DNN", "QLearn", 1, 8);
        let px = 0;
        let py = 0;
        let t = 0;
        let reward = 0;
        let backdrop = 0;
        au_checkpoint();
        while (t < 400) {
            backdrop = backdrop + scroll_tiles(t, 8, 8);
            let obstacle = (t * 13) % 7;
            au_extract("S", [px, py, obstacle]);
            let a = au_nn_rl("Mario", "S", reward, false, "act", 3);
            if (a == 1) { py = 3; } else { if (py > 0) { py = py - 1; } }
            if (a == 2) { px = px + 2; reward = 2; } else { px = px + 1; reward = 1; }
            let dead = 0;
            if (obstacle == 3) { if (py == 0) { dead = 1; } }
            if (dead == 1) {
                au_extract("S", [px, py, obstacle]);
                let b = au_nn_rl("Mario", "S", 0 - 10, true, "act", 3);
                au_restore();
            }
            t = t + 1;
        }
        return px + backdrop % 3;
    }
"#;

/// Arkanoid: paddle tracking a deterministic ball; episodic Q-learning
/// with terminal frames, no restore — terminates on its own.
pub const ARKANOID: &str = r#"
    fn blit_field(tick, w, h) {
        let px = 0;
        for (let by = 0; by < h; by = by + 1) {
            for (let bx = 0; bx < w; bx = bx + 1) {
                let cell = (bx * 3 + by * 17 + tick) % 10;
                if (cell > 5) { px = px + cell; } else { px = px + 2; }
            }
        }
        return px;
    }

    fn main() {
        au_config("Pad", "DNN", "QLearn", 1, 8);
        let episode = 0;
        let score = 0;
        let vram = 0;
        while (episode < 15) {
            let ball = 0;
            let dir = 1;
            let paddle = 4;
            let frame = 0;
            let reward = 0;
            while (frame < 24) {
                vram = vram + blit_field(frame, 8, 8);
                au_extract("S", [ball, dir, paddle]);
                let last = 0;
                if (frame == 23) { last = 1; }
                let a = au_nn_rl("Pad", "S", reward, last, "act", 3);
                if (a == 1) { if (paddle > 0) { paddle = paddle - 1; } }
                if (a == 2) { if (paddle < 8) { paddle = paddle + 1; } }
                ball = ball + dir;
                if (ball >= 8) { dir = 0 - 1; }
                if (ball <= 0) { dir = 1; }
                if (abs(ball - paddle) < 2) { reward = 1; score = score + 1; } else { reward = 0 - 1; }
                frame = frame + 1;
            }
            episode = episode + 1;
        }
        return score + vram % 3;
    }
"#;

/// TORCS driving: steer from a curvature lookahead; episodic, terminates.
pub const TORCS: &str = r#"
    fn lookahead(track, pos, n) {
        let ahead = [];
        for (let k = 0; k < 3; k = k + 1) {
            ahead = append(ahead, track[(pos + k) % n]);
        }
        return ahead;
    }

    fn dash_gauges(rpm, w, h) {
        let glow = 0;
        for (let gy = 0; gy < h; gy = gy + 1) {
            for (let gx = 0; gx < w; gx = gx + 1) {
                let needle = (gx * 9 + gy * 7 + rpm) % 11;
                if (needle > 5) { glow = glow + needle; } else { glow = glow + 1; }
            }
        }
        return glow;
    }

    fn main() {
        au_config("Drv", "DNN", "QLearn", 1, 8);
        let track = [];
        for (let i = 0; i < 16; i = i + 1) {
            track = append(track, sin(i * 0.8));
        }
        let lap = 0;
        let offroad = 0;
        let dash = 0;
        while (lap < 14) {
            let pos = 0;
            let heading = 0;
            let reward = 0;
            while (pos < 16) {
                dash = dash + dash_gauges(pos, 8, 8);
                let ahead = lookahead(track, pos, 16);
                au_extract("S", [heading, ahead[0], ahead[1], ahead[2]]);
                let last = 0;
                if (pos == 15) { last = 1; }
                let a = au_nn_rl("Drv", "S", reward, last, "act", 3);
                if (a == 1) { heading = heading - 0.5; }
                if (a == 2) { heading = heading + 0.5; }
                let err = abs(heading - track[pos]);
                if (err < 0.6) { reward = 1; } else { reward = 0 - 1; offroad = offroad + 1; }
                pos = pos + 1;
            }
            lap = lap + 1;
        }
        return offroad + dash % 3;
    }
"#;

/// Breakout: brick rows cleared by a deterministic ball, paddle learned;
/// episodic, terminates.
pub const BREAKOUT: &str = r#"
    fn flash_border(pulse, w, h) {
        let lit = 0;
        for (let fy = 0; fy < h; fy = fy + 1) {
            for (let fx = 0; fx < w; fx = fx + 1) {
                let lum = (fx * 11 + fy * 3 + pulse) % 7;
                if (lum > 3) { lit = lit + lum; } else { lit = lit + 1; }
            }
        }
        return lit;
    }

    fn main() {
        au_config("Brk", "DNN", "QLearn", 1, 8);
        let game = 0;
        let cleared = 0;
        let fx2 = 0;
        while (game < 12) {
            let bricks = [1, 1, 1, 1, 1, 1];
            let left = 6;
            let bx = 0;
            let bdir = 1;
            let paddle = 3;
            let frame = 0;
            let reward = 0;
            while (frame < 30) {
                fx2 = fx2 + flash_border(frame, 8, 8);
                au_extract("S", [bx, bdir, paddle, left]);
                let last = 0;
                if (frame == 29) { last = 1; }
                if (left == 0) { last = 1; }
                let a = au_nn_rl("Brk", "S", reward, last, "act", 3);
                if (last == 1) { break; }
                if (a == 1) { if (paddle > 0) { paddle = paddle - 1; } }
                if (a == 2) { if (paddle < 5) { paddle = paddle + 1; } }
                bx = bx + bdir;
                if (bx >= 5) { bdir = 0 - 1; }
                if (bx <= 0) { bdir = 1; }
                reward = 0;
                if (abs(bx - paddle) < 2) {
                    if (bricks[bx] == 1) {
                        bricks[bx] = 0;
                        left = left - 1;
                        cleared = cleared + 1;
                        reward = 2;
                    }
                } else {
                    reward = 0 - 1;
                }
                frame = frame + 1;
            }
            game = game + 1;
        }
        return cleared + fx2 % 3;
    }
"#;

/// All nine paper programs, SL first, in the paper's Table 1 order.
pub fn all() -> [CorpusProgram; 9] {
    [
        CorpusProgram {
            name: "canny",
            src: CANNY,
            step_limit: None,
            nn_seed: 71,
        },
        CorpusProgram {
            name: "rothwell",
            src: ROTHWELL,
            step_limit: None,
            nn_seed: 72,
        },
        CorpusProgram {
            name: "phylip",
            src: PHYLIP,
            step_limit: None,
            nn_seed: 73,
        },
        CorpusProgram {
            name: "sphinx",
            src: SPHINX,
            step_limit: None,
            nn_seed: 74,
        },
        CorpusProgram {
            name: "flappy",
            src: FLAPPY,
            step_limit: Some(60_000),
            nn_seed: 75,
        },
        CorpusProgram {
            name: "mario",
            src: MARIO,
            step_limit: Some(60_000),
            nn_seed: 76,
        },
        CorpusProgram {
            name: "arkanoid",
            src: ARKANOID,
            step_limit: None,
            nn_seed: 77,
        },
        CorpusProgram {
            name: "torcs",
            src: TORCS,
            step_limit: None,
            nn_seed: 78,
        },
        CorpusProgram {
            name: "breakout",
            src: BREAKOUT,
            step_limit: None,
            nn_seed: 79,
        },
    ]
}
